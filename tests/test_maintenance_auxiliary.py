"""Tests for the auxiliary-relation maintenance method (paper §2.1.2)."""

from collections import Counter

import pytest

from repro import Op, Tag, recompute_view, two_way_view
from repro.cluster.partitioning import stable_hash
from tests.conftest import make_view


def view_equals_recompute(cluster):
    return Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_provisions_ars_for_both_sides(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    assert "AR_A_c" in ab_cluster.catalog.auxiliaries
    assert "AR_B_d" in ab_cluster.catalog.auxiliaries
    # ARs are clustered on the join attribute at every node.
    for node in ab_cluster.nodes:
        index = node.fragment("AR_B_d").index_on("d")
        assert index is not None and index.clustered


def test_insert_updates_view_and_ars(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)
    assert ab_cluster.scan_relation("AR_A_c") == [(1, 2, "x")]


def test_single_tuple_tw_is_three_ios(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="inl")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # INSERT(2) into AR_A + SEARCH(1) of AR_B; sends are free.
    assert snapshot.maintenance_workload() == 3.0


def test_work_done_at_single_node(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="inl")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    join_node = stable_hash(2) % 4
    # All maintenance I/O concentrates at the join key's home node.
    maintain = {
        node: ios
        for node, ios in snapshot.per_node_ios(
            tags=[Tag.MAINTAIN]
        ).items()
        if ios
    }
    assert set(maintain) == {join_node}


def test_exactly_one_probe_regardless_of_l(uniform_cluster_factory):
    cluster, workload = uniform_cluster_factory("auxiliary", num_nodes=16)
    snapshot = cluster.insert("A", [workload.a_row(0)])
    assert snapshot.op_count(Op.SEARCH) == 1


def test_delete_updates_view_and_ars(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.delete("A", [(1, 2, "x")])
    assert ab_cluster.view_rows("JV") == []
    assert ab_cluster.scan_relation("AR_A_c") == []


def test_b_side_insert_uses_ar_a(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.insert("B", [(50, 2, "new")])
    assert view_equals_recompute(ab_cluster)
    assert Counter(ab_cluster.scan_relation("AR_B_d")) == Counter(
        ab_cluster.scan_relation("B")
    )


def test_partitioned_base_needs_no_ar():
    """If A is partitioned on the join attribute, no AR_A is kept."""
    from repro import Cluster, HashPartitioning, Schema

    cluster = Cluster(4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="c")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="auxiliary",
    )
    assert "AR_A_c" not in cluster.catalog.auxiliaries
    assert "AR_B_d" in cluster.catalog.auxiliaries
    cluster.insert("A", [(1, 2, "x")])
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_trimmed_ar_still_maintains(ab_cluster):
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d", select=[("A", "e"), ("B", "f")]),
        method="auxiliary",
        trim_auxiliaries=True,
    )
    aux = ab_cluster.catalog.auxiliary("AR_B_d")
    assert set(aux.schema.column_names) == {"d", "f"}
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)


def test_shared_ar_across_views(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.create_join_view(
        two_way_view("JV2", "A", "c", "B", "d", select=[("A", "a")]),
        method="auxiliary",
    )
    aux = ab_cluster.catalog.auxiliary("AR_B_d")
    assert aux.serves_views == ["JV", "JV2"]
    # One insert maintains both views off the same AR.
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)
    assert len(ab_cluster.view_rows("JV2")) == 4


def test_undertrimmed_shared_ar_rejected(ab_cluster):
    from repro.core.auxiliary import AuxiliaryProvisioningError

    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d", select=[("A", "e"), ("B", "f")]),
        method="auxiliary",
        trim_auxiliaries=True,
    )
    with pytest.raises(AuxiliaryProvisioningError, match="lacks"):
        ab_cluster.create_join_view(
            two_way_view("JV2", "A", "c", "B", "d"),  # needs all of B
            method="auxiliary",
        )


def test_sort_merge_strategy_same_contents(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="sort_merge")
    ab_cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    assert view_equals_recompute(ab_cluster)


def test_ar_cost_includes_co_update_per_ar(ab_cluster):
    """Two ARs on the same base double the co-update inserts (the paper's
    'updating all the auxiliary relations ... will be costly')."""
    make_view(ab_cluster, "auxiliary", strategy="inl")
    ab_cluster.create_auxiliary_relation("A", "e")  # a second AR of A
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.op_count(Op.INSERT, tags=[Tag.MAINTAIN]) == 2
