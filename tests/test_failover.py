"""Fault-injected failover: kill a node mid-transaction, promote its
replica, replay, and prove convergence.

ISSUE 6's acceptance scenario: with K=2 replication, a node crash in the
middle of a maintained transaction must end — after ``fail_over`` — in a
cluster whose views, auxiliary relations, global indexes, placements, and
replica bags all audit clean, for every maintenance method and for eager
and deferred views alike.  A fixed-topology fault-free equivalence check
pins that none of this costs anything until it is used, at workers 1 and 2.
"""

import pytest

from repro import Cluster, Schema
from repro.cluster.parallel import fork_available
from repro.core.deferred import defer_view
from repro.costs import Tag
from repro.costs.ledger import format_cell_diff
from repro.faults import ConsistencyAuditor, FaultPlan, attach_faults
from tests.conftest import make_view

METHODS = ("naive", "auxiliary", "global_index")


def build(method, deferred=False, num_nodes=4, workers=None):
    cluster = Cluster(
        num_nodes=num_nodes,
        sanitize=True,
        workers=workers,
    )
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.insert("A", [(i, i % 5, f"e{i}") for i in range(10)])
    make_view(cluster, method, strategy="inl")
    if deferred:
        defer_view(cluster, "JV")
    return cluster


MID_ROWS = [(50 + i, i % 5, "mid") for i in range(8)]


def crash_mid_transaction(cluster, node=2, after_messages=2, seed=11):
    """Arm a crash gate and run a statement broad enough to trip it.

    The gate fires during the statement's base redistribution (a phase
    every method shares), so a *primary* write at the dead node faults the
    statement.  Under the protected recovery policy the statement does not
    raise: it is rolled back and parked on ``controller.pending`` — that
    queue is exactly what ``fail_over`` replays.
    """
    attach_faults(
        cluster,
        plan=FaultPlan().crash(node=node, after_messages=after_messages),
        seed=seed,
    )
    cluster.insert("A", MID_ROWS)
    controller = cluster.faults
    assert controller.injector.is_down(node)
    assert len(controller.pending) == 1  # rolled back and queued, not raised
    stored = {row[0] for row in cluster.scan_relation("A")}
    assert stored.isdisjoint({key for key, _c, _e in MID_ROWS})


def assert_consistent(cluster):
    report = ConsistencyAuditor(cluster).audit()
    assert report.ok, report.summary()


# -------------------------------------------------------------- the matrix


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("deferred", [False, True], ids=["eager", "deferred"])
def test_crash_mid_transaction_failover_converges(method, deferred):
    cluster = build(method, deferred=deferred)
    cluster.enable_replication(k=2)
    crash_mid_transaction(cluster)

    report = cluster.fail_over(2)
    assert report.kind == "failover"
    assert report.restored_rows > 0  # the lost fragments came from replicas
    assert report.promoted is not None
    assert cluster.num_nodes == 3
    # The aborted statement was queued and replayed during failover, so the
    # mid-transaction rows are all present.
    assert report.replayed_statements >= 1
    stored = {row[0] for row in cluster.scan_relation("A")}
    assert {50 + i for i in range(8)} <= stored
    assert_consistent(cluster)


@pytest.mark.parametrize("method", METHODS)
def test_failover_charges_migration_and_replica_traffic(method):
    cluster = build(method)
    cluster.enable_replication(k=2)
    crash_mid_transaction(cluster)
    cluster.fail_over(2)
    snap = cluster.ledger.snapshot()
    assert snap.total_workload(tags=[Tag.MIGRATE]) > 0
    assert snap.total_workload(tags=[Tag.REPLICA]) > 0


def test_failover_promotes_deterministic_successor():
    cluster = build("auxiliary")
    cluster.enable_replication(k=2)
    crash_mid_transaction(cluster)
    # Ring successor of node 2 is node 3 — which renumbers to id 2.
    assert cluster.replicator.elect_successor(2) == 3
    report = cluster.fail_over(2)
    assert report.promoted == 2
    assert [event.kind for event in cluster.membership.events] == ["failover"]
    assert cluster.membership.tokens == [0, 1, 3]


def test_failover_requires_replication():
    cluster = build("auxiliary")
    crash_mid_transaction(cluster)
    with pytest.raises(RuntimeError, match="repl"):
        cluster.fail_over(2)


def test_failover_requires_a_down_node():
    cluster = build("auxiliary")
    cluster.enable_replication(k=2)
    attach_faults(cluster, plan=FaultPlan())
    with pytest.raises(ValueError):
        cluster.fail_over(2)


def test_remove_node_refuses_a_down_node():
    cluster = build("auxiliary")
    cluster.enable_replication(k=2)
    crash_mid_transaction(cluster)
    with pytest.raises(ValueError, match="fail_over"):
        cluster.remove_node(2)


def test_cluster_survives_repeated_failovers():
    cluster = build("auxiliary", num_nodes=5)
    cluster.enable_replication(k=2)
    crash_mid_transaction(cluster, node=2)
    cluster.fail_over(2)
    assert_consistent(cluster)
    cluster.insert("A", [(90, 0, "again")])
    # Crash another node (post-renumber id space) and fail over again.
    cluster.faults.injector.crash(1)
    cluster.insert("A", [(91 + i, i % 5, "more") for i in range(6)])
    assert len(cluster.faults.pending) == 1
    cluster.fail_over(1)
    assert cluster.num_nodes == 3
    assert len(cluster.faults.pending) == 0
    stored = {row[0] for row in cluster.scan_relation("A")}
    assert {90, 91, 92, 93, 94, 95, 96} <= stored
    assert_consistent(cluster)


def test_degraded_replica_writes_never_abort_statements():
    """A dead replica target silently degrades redundancy (the primary
    write stands); failover's charged sync restores the copies."""
    cluster = build("auxiliary")
    # A view-free relation isolates the replica hook: no maintenance
    # traffic can touch the dead node on C's behalf.
    cluster.create_relation(Schema.of("C", "g", "h"), partitioned_on="g")
    cluster.enable_replication(k=2)
    attach_faults(cluster, plan=FaultPlan().crash(node=3, after_messages=0))
    assert cluster.faults.injector.is_down(3)
    # Key 50 homes at node 2, whose replica target — its ring successor —
    # is the dead node 3.  The primary write must stand; the replica copy
    # is silently skipped (degraded redundancy) rather than faulting.
    cluster.insert("C", [(50, "live"), (49, "live")])
    assert len(cluster.faults.pending) == 0
    stored = {row[0] for row in cluster.scan_relation("C")}
    assert stored == {49, 50}
    assert cluster.nodes[3].replica_rows(2, "C") == []  # nothing shipped
    cluster.fail_over(3)
    assert_consistent(cluster)


# ----------------------------------------- fixed-topology ledger identity


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
@pytest.mark.parametrize("workers", [1, 2])
def test_fault_free_fixed_topology_parallel_identity(workers):
    """With no membership change and no replication, a workers=W run's
    ledger, network stats, and fragments are bit-identical to the serial
    reference — the elastic layer never touches the fault-free path."""

    def run(w):
        cluster = build("auxiliary", workers=w)
        cluster.insert("A", [(30 + i, i % 5, "w") for i in range(12)])
        cluster.delete("B", [(4, 4, "f4")])
        cluster.close()
        return cluster

    parallel, serial = run(workers), run(None)
    diff = parallel.ledger.diff(serial.ledger)
    assert not diff, format_cell_diff(diff)
    assert parallel.network.stats.messages == serial.network.stats.messages
    for name in ("A", "B", "JV"):
        for node_p, node_s in zip(parallel.nodes, serial.nodes):
            if node_s.has_fragment(name):
                assert node_p.scan(name) == node_s.scan(name)
    assert parallel.membership.epoch == serial.membership.epoch == 0
