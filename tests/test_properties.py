"""Property-based tests (hypothesis) for the core invariants.

DESIGN.md §5: view/recompute equivalence under arbitrary update sequences
for every method, method agreement, partitioning placement, global-index
consistency, and exact TW model match for randomized scenarios.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Cluster,
    HashPartitioning,
    Schema,
    recompute_view,
    two_way_view,
)
from repro.cluster.partitioning import stable_hash
from repro.model import MethodVariant, ModelParameters, total_workload_ios
from repro.workloads.uniform import UniformJoinWorkload, build_cluster

METHODS = ("naive", "auxiliary", "global_index")

# An update script: each step inserts into A/B or deletes a previously
# inserted row (by index into the still-live list).
_step = st.one_of(
    st.tuples(st.just("insert_a"), st.integers(0, 6), st.integers(0, 4)),
    st.tuples(st.just("insert_b"), st.integers(0, 6), st.integers(0, 4)),
    st.tuples(st.just("delete_a"), st.integers(0, 30), st.integers(0, 4)),
    st.tuples(st.just("delete_b"), st.integers(0, 30), st.integers(0, 4)),
)


def _fresh_cluster(method, num_nodes=3):
    cluster = Cluster(num_nodes=num_nodes)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method=method,
    )
    return cluster


def _apply_script(cluster, script):
    """Run the update script; returns how many steps actually applied."""
    serial = 0
    live_a, live_b = [], []
    applied = 0
    for kind, index, key in script:
        if kind == "insert_a":
            row = (serial, key, serial)
            serial += 1
            live_a.append(row)
            cluster.insert("A", [row])
            applied += 1
        elif kind == "insert_b":
            row = (serial, key, serial)
            serial += 1
            live_b.append(row)
            cluster.insert("B", [row])
            applied += 1
        elif kind == "delete_a" and live_a:
            row = live_a.pop(index % len(live_a))
            cluster.delete("A", [row])
            applied += 1
        elif kind == "delete_b" and live_b:
            row = live_b.pop(index % len(live_b))
            cluster.delete("B", [row])
            applied += 1
    return applied


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(_step, max_size=25))
@pytest.mark.parametrize("method", METHODS)
def test_view_equals_recompute_under_any_script(method, script):
    """Invariant 1: incremental view == from-scratch join, always."""
    cluster = _fresh_cluster(method)
    _apply_script(cluster, script)
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(_step, max_size=20))
def test_all_methods_agree(script):
    """Invariant 2: all methods (incl. hybrid) produce identical contents."""
    contents = []
    for method in METHODS + ("hybrid",):
        cluster = _fresh_cluster(method)
        _apply_script(cluster, script)
        contents.append(Counter(cluster.view_rows("JV")))
    assert all(c == contents[0] for c in contents[1:])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(_step, max_size=25),
       num_nodes=st.integers(min_value=1, max_value=6))
def test_placement_invariants(script, num_nodes):
    """Invariant 3: every stored tuple is on the node its key hashes to,
    for base relations, ARs, and the hash-partitioned view."""
    cluster = _fresh_cluster("auxiliary", num_nodes=num_nodes)
    _apply_script(cluster, script)
    for name in ("A", "B", "AR_A_c", "AR_B_d", "JV"):
        if name in cluster.catalog.relations:
            schema = cluster.catalog.relation(name).schema
            column = cluster.catalog.relation(name).partition_column
        elif name in cluster.catalog.auxiliaries:
            info = cluster.catalog.auxiliary(name)
            schema, column = info.schema, info.column
        else:
            info = cluster.catalog.view(name)
            schema, column = info.schema, "e"
        position = schema.index_of(column)
        for node in cluster.nodes:
            for row in node.scan(name):
                assert stable_hash(row[position]) % num_nodes == node.node_id


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(_step, max_size=25))
def test_global_index_consistency(script):
    """Invariant 4: GI entries exactly mirror the base fragments."""
    cluster = _fresh_cluster("global_index")
    _apply_script(cluster, script)
    for gi_name, base in (("GI_A_c", "A"), ("GI_B_d", "B")):
        gi = cluster.catalog.global_index(gi_name)
        position = gi.key_position
        # Every GI entry points at a live base row with the right key.
        entries = set()
        for node in cluster.nodes:
            for key, grids in node.gi_partition(gi_name).items():
                assert gi.home_node(key) == node.node_id
                for grid in grids:
                    row = cluster.nodes[grid.node].fragment(base).table.fetch(
                        grid.rowid
                    )
                    assert row[position] == key
                    entries.add((grid.node, grid.rowid))
        # And every live base row has exactly one GI entry.
        base_rows = set()
        for node in cluster.nodes:
            for rowid, _ in node.fragment(base).table.scan():
                base_rows.add((node.node_id, rowid))
        assert entries == base_rows


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    num_nodes=st.integers(min_value=1, max_value=24),
    fanout=st.integers(min_value=1, max_value=12),
    variant=st.sampled_from(list(MethodVariant)),
)
def test_single_tuple_tw_matches_model_exactly(num_nodes, fanout, variant):
    """Invariant 5: measured TW == closed-form TW for any (L, N, variant)."""
    method, clustered = {
        MethodVariant.NAIVE_NONCLUSTERED: ("naive", False),
        MethodVariant.NAIVE_CLUSTERED: ("naive", True),
        MethodVariant.AUXILIARY: ("auxiliary", False),
        MethodVariant.GI_NONCLUSTERED: ("global_index", False),
        MethodVariant.GI_CLUSTERED: ("global_index", True),
    }[variant]
    workload = UniformJoinWorkload(num_keys=30, fanout=fanout, clustered=clustered)
    cluster = build_cluster(
        workload, num_nodes=num_nodes, method=method, strategy="inl"
    )
    snapshot = cluster.insert("A", [workload.a_row(0)])
    params = ModelParameters(num_nodes=num_nodes, fanout=float(fanout))
    assert snapshot.maintenance_workload() == pytest.approx(
        total_workload_ios(variant, params)
    )


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(_step, max_size=15))
def test_strategies_agree(script):
    """INL and sort-merge produce identical view contents."""
    reference = None
    for strategy in ("inl", "sort_merge"):
        cluster = Cluster(num_nodes=3)
        cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
        cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
        cluster.create_join_view(
            two_way_view("JV", "A", "c", "B", "d",
                         partitioning=HashPartitioning("e")),
            method="auxiliary",
            strategy=strategy,
        )
        _apply_script(cluster, script)
        contents = Counter(cluster.view_rows("JV"))
        if reference is None:
            reference = contents
        else:
            assert contents == reference
