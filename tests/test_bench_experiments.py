"""Tests for the experiment harness: each paper experiment runs and its
headline claims hold; model and measured series agree where both exist."""

import pytest

from repro.bench import agreement_ratio, experiments
from repro.bench.harness import ExperimentResult, render_results
from repro.model import MethodVariant

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value
NAIVE_NCL = MethodVariant.NAIVE_NONCLUSTERED.value


def test_agreement_ratio():
    assert agreement_ratio([1.0, 2.0], [1.0, 2.0]) == 1.0
    assert agreement_ratio([1.0], [2.0]) == 2.0
    assert agreement_ratio([2.0], [1.0]) == 2.0
    assert agreement_ratio([0.0], [0.0]) == 1.0
    assert agreement_ratio([0.0], [1.0]) == float("inf")
    with pytest.raises(ValueError):
        agreement_ratio([1.0], [1.0, 2.0])


def test_experiment_result_helpers():
    result = ExperimentResult(
        "Figure X", "t", ["a", "b"], [[1, 2.0]], notes=["n"]
    )
    assert result.column("b") == [2.0]
    assert result.as_dicts() == [{"a": 1, "b": 2.0}]
    rendered = result.render()
    assert "Figure X" in rendered and "note: n" in rendered
    assert "Figure X" in render_results([result])


def test_figure7_model_equals_measured():
    result = experiments.figure7(node_counts=(1, 2, 4, 8))
    for variant in MethodVariant:
        model = result.column(f"{variant.value} [model]")
        measured = result.column(f"{variant.value} [measured]")
        assert agreement_ratio(model, measured) == pytest.approx(1.0)


def test_figure8_model_equals_measured():
    result = experiments.figure8(fanouts=(1, 5, 20), num_nodes=8)
    for variant in MethodVariant:
        model = result.column(f"{variant.value} [model]")
        measured = result.column(f"{variant.value} [measured]")
        assert agreement_ratio(model, measured) == pytest.approx(1.0)


def test_figure9_agreement_and_shape():
    result = experiments.figure9(node_counts=(2, 8, 32), num_inserted=128)
    ar_measured = result.column(f"{AR} [measured]")
    ar_model = result.column(f"{AR} [model]")
    assert agreement_ratio(ar_model, ar_measured) == pytest.approx(1.0)
    # naive clustered flat at A, AR decreasing.
    assert result.column(f"{NAIVE_CL} [measured]") == [128.0, 128.0, 128.0]
    assert ar_measured == sorted(ar_measured, reverse=True)


def test_figure10_naive_clustered_wins():
    result = experiments.figure10(node_counts=(4, 16), num_inserted=6_500)
    for row in result.as_dicts():
        assert row[f"{NAIVE_CL} [measured]"] < row[f"{AR} [measured]"]
        assert row[f"{NAIVE_CL} [measured]"] == pytest.approx(
            row[f"{NAIVE_CL} [model]"]
        )


def test_figure11_curves_flatten():
    result = experiments.figure11(
        insert_counts=(10, 200, 1_000), num_nodes=64, measured_limit=1_000
    )
    naive = result.column(f"{NAIVE_CL} [measured]")
    assert naive[-1] == naive[-2]  # sort-merge plateau reached
    ar = result.column(f"{AR} [measured]")
    assert ar[-1] > ar[0]


def test_figure12_ar_steps():
    result = experiments.figure12(insert_counts=(1, 64, 65, 128), num_nodes=64)
    ar = result.column(f"{AR} [measured]")
    assert ar == [3.0, 3.0, 6.0, 6.0]


def test_figure13_model_equals_measured():
    result = experiments.figure13(node_counts=(2, 4), delta=64, scale=0.002)
    for line in (
        "AR method for JV1", "naive method for JV1",
        "AR method for JV2", "naive method for JV2",
    ):
        model = result.column(f"{line} [model]")
        measured = result.column(f"{line} [measured]")
        assert agreement_ratio(model, measured) == pytest.approx(1.0)


def test_figure14_ar_beats_naive():
    result = experiments.figure14(
        node_counts=(2, 4), delta=512, scale=0.02, repeats=5
    )
    rows = result.as_dicts()
    # Sub-millisecond medians jitter per point; the aggregate ordering is
    # the stable claim (per-point ordering is asserted by the full-size
    # benchmark in benchmarks/bench_fig14_sqlite_measured.py).
    for view in ("JV1", "JV2"):
        ar = sum(row[f"AR method for {view} [ms]"] for row in rows)
        naive = sum(row[f"naive method for {view} [ms]"] for row in rows)
        assert ar < naive


def test_table1_ratios():
    result = experiments.table1(scale=0.001)
    rows = {row[0]: row for row in result.rows}
    assert rows["orders"][3] == 10 * rows["customer"][3]
    assert rows["lineitem"][3] == 4 * rows["orders"][3]


def test_ext_method_chooser_transitions():
    result = experiments.ext_method_chooser(update_sizes=(1, 100, 100_000))
    recommended = result.column("recommended")
    assert "auxiliary" in recommended
    assert recommended[-1] == "naive"


def test_ext_storage_overhead_trimming_saves_fields():
    result = experiments.ext_storage_overhead(num_nodes=4)
    by_method = {row[0]: row for row in result.rows}
    assert by_method["naive"][2] == 0
    assert (
        by_method["auxiliary (trimmed)"][3] < by_method["auxiliary"][3]
    )


def test_ext_large_update_runs():
    result = experiments.ext_large_update(deltas=(64, 256), scale=0.005)
    assert len(result.rows) == 2
    assert all(row[1] > 0 and row[2] > 0 for row in result.rows)
