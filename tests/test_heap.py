"""Unit tests for repro.storage.heap."""

import pytest

from repro.storage.heap import HeapTable, RowNotFound
from repro.storage.pages import PageLayout
from repro.storage.schema import Schema, SchemaError


@pytest.fixture
def table():
    return HeapTable(Schema.of("T", "k", "v"))


def test_insert_assigns_monotonic_rowids(table):
    assert table.insert((1, "a")) == 0
    assert table.insert((2, "b")) == 1
    assert len(table) == 2


def test_rowids_never_reused(table):
    rid = table.insert((1, "a"))
    table.delete(rid)
    assert table.insert((2, "b")) == rid + 1


def test_fetch(table):
    rid = table.insert((1, "a"))
    assert table.fetch(rid) == (1, "a")


def test_fetch_missing(table):
    with pytest.raises(RowNotFound):
        table.fetch(99)


def test_delete_returns_row(table):
    rid = table.insert((1, "a"))
    assert table.delete(rid) == (1, "a")
    assert len(table) == 0
    with pytest.raises(RowNotFound):
        table.delete(rid)


def test_delete_where(table):
    table.insert_many([(1, "a"), (2, "b"), (3, "a")])
    victims = table.delete_where(lambda row: row[1] == "a")
    assert [row for _, row in victims] == [(1, "a"), (3, "a")]
    assert table.rows() == [(2, "b")]


def test_update(table):
    rid = table.insert((1, "a"))
    old = table.update(rid, (1, "b"))
    assert old == (1, "a")
    assert table.fetch(rid) == (1, "b")


def test_arity_checked(table):
    with pytest.raises(SchemaError):
        table.insert((1, 2, 3))


def test_scan_is_insertion_ordered(table):
    table.insert_many([(3, "x"), (1, "y")])
    assert [row for _, row in table.scan()] == [(3, "x"), (1, "y")]


def test_num_pages():
    table = HeapTable(Schema.of("T", "k"), PageLayout(tuples_per_page=10))
    assert table.num_pages == 0
    table.insert_many([(i,) for i in range(11)])
    assert table.num_pages == 2


def test_page_of():
    table = HeapTable(Schema.of("T", "k"), PageLayout(tuples_per_page=2))
    rids = table.insert_many([(i,) for i in range(4)])
    assert table.page_of(rids[0]) == 0
    assert table.page_of(rids[3]) == 1


def test_iter_yields_rows(table):
    table.insert_many([(1, "a"), (2, "b")])
    assert list(table) == [(1, "a"), (2, "b")]
