"""Unit tests for repro.storage.schema."""

import pytest

from repro.storage.schema import Column, Schema, SchemaError, concat_schemas


def test_schema_of_builds_columns():
    schema = Schema.of("A", "x", "y", "z")
    assert schema.name == "A"
    assert schema.column_names == ("x", "y", "z")
    assert schema.arity == 3


def test_schema_of_with_kinds():
    schema = Schema.of("A", "x", "y", kinds=(int, str))
    assert schema.columns[0].kind is int
    assert schema.columns[1].kind is str


def test_schema_of_kinds_length_mismatch():
    with pytest.raises(SchemaError):
        Schema.of("A", "x", "y", kinds=(int,))


def test_duplicate_columns_rejected():
    with pytest.raises(SchemaError, match="duplicate column"):
        Schema("A", (Column("x"), Column("x")))


def test_empty_name_rejected():
    with pytest.raises(SchemaError):
        Schema("", (Column("x"),))


def test_invalid_column_name_rejected():
    with pytest.raises(SchemaError):
        Column("not an identifier")


def test_index_of_and_value():
    schema = Schema.of("A", "x", "y")
    assert schema.index_of("y") == 1
    assert schema.value((10, 20), "y") == 20


def test_index_of_unknown_column():
    schema = Schema.of("A", "x")
    with pytest.raises(SchemaError, match="no column 'q'"):
        schema.index_of("q")


def test_contains():
    schema = Schema.of("A", "x")
    assert "x" in schema
    assert "y" not in schema


def test_check_row_arity():
    schema = Schema.of("A", "x", "y")
    schema.check_row((1, 2))
    with pytest.raises(SchemaError, match="arity"):
        schema.check_row((1, 2, 3))


def test_project_preserves_order_given():
    schema = Schema.of("A", "x", "y", "z")
    projected = schema.project(["z", "x"])
    assert projected.column_names == ("z", "x")
    assert projected.name == "A"


def test_project_with_rename():
    schema = Schema.of("A", "x", "y")
    assert schema.project(["x"], name="AR_A").name == "AR_A"


def test_projector():
    schema = Schema.of("A", "x", "y", "z")
    project = schema.projector(["z", "x"])
    assert project((1, 2, 3)) == (3, 1)


def test_rename():
    schema = Schema.of("A", "x")
    assert schema.rename("B").name == "B"
    assert schema.rename("B").column_names == ("x",)


def test_prefixed():
    schema = Schema.of("A", "x", "y")
    prefixed = schema.prefixed("A")
    assert prefixed.column_names == ("A_x", "A_y")


def test_concat_schemas_no_collision():
    left = Schema.of("A", "x", "y")
    right = Schema.of("B", "z")
    joined = concat_schemas("J", left, right)
    assert joined.column_names == ("x", "y", "z")


def test_concat_schemas_with_collision():
    left = Schema.of("A", "k", "x")
    right = Schema.of("B", "k", "y")
    joined = concat_schemas("J", left, right)
    assert joined.column_names == ("A_k", "x", "B_k", "y")
