"""Unit tests for repro.storage.index."""

import pytest

from repro.storage.heap import HeapTable
from repro.storage.index import IndexedHeap, IndexError_, LocalIndex
from repro.storage.pages import PageLayout
from repro.storage.schema import Schema


@pytest.fixture
def heap():
    return IndexedHeap(HeapTable(Schema.of("T", "k", "v")))


def test_index_built_over_existing_rows():
    table = HeapTable(Schema.of("T", "k", "v"))
    table.insert_many([(1, "a"), (1, "b"), (2, "c")])
    index = LocalIndex(table, "k")
    assert sorted(index.search(1)) == [0, 1]
    assert index.search(2) == [2]
    assert index.search(9) == []


def test_insert_maintains_index(heap):
    heap.create_index("k")
    rid = heap.insert((5, "x"))
    assert heap.index_on("k").search(5) == [rid]


def test_delete_maintains_index(heap):
    index = heap.create_index("k")
    rid = heap.insert((5, "x"))
    heap.delete(rid)
    assert index.search(5) == []


def test_delete_unknown_entry_raises():
    table = HeapTable(Schema.of("T", "k"))
    index = LocalIndex(table, "k")
    with pytest.raises(IndexError_):
        index.on_delete(0, (5,))


def test_lookup_rows(heap):
    heap.create_index("k")
    heap.insert((5, "x"))
    heap.insert((5, "y"))
    assert heap.index_on("k").lookup_rows(5) == [(5, "x"), (5, "y")]


def test_one_clustered_index_per_fragment(heap):
    heap.create_index("k", clustered=True)
    with pytest.raises(IndexError_, match="already clustered"):
        heap.create_index("v", clustered=True)


def test_second_nonclustered_index_allowed(heap):
    heap.create_index("k", clustered=True)
    heap.create_index("v", clustered=False)
    assert heap.index_on("v") is not None


def test_len_counts_entries(heap):
    index = heap.create_index("k")
    heap.insert((1, "a"))
    heap.insert((1, "b"))
    assert len(index) == 2


def test_distinct_keys_and_keys(heap):
    index = heap.create_index("k")
    heap.insert((1, "a"))
    heap.insert((1, "b"))
    heap.insert((2, "c"))
    assert index.distinct_keys() == 2
    assert sorted(index.keys()) == [1, 2]


def test_sorted_items(heap):
    index = heap.create_index("k")
    heap.insert((3, "c"))
    heap.insert((1, "a"))
    heap.insert((2, "b"))
    assert [key for key, _ in index.sorted_items()] == [1, 2, 3]


def test_matches_fit_one_page_clustered():
    table = HeapTable(Schema.of("T", "k"), PageLayout(tuples_per_page=2))
    heap = IndexedHeap(table)
    index = heap.create_index("k", clustered=True)
    heap.insert((1,))
    heap.insert((1,))
    assert index.matches_per_key_fit_one_page(1)
    heap.insert((1,))
    assert not index.matches_per_key_fit_one_page(1)


def test_matches_fit_one_page_nonclustered_is_false(heap):
    index = heap.create_index("k", clustered=False)
    heap.insert((1, "a"))
    assert not index.matches_per_key_fit_one_page(1)


def test_delete_matching(heap):
    heap.create_index("k")
    heap.insert((1, "a"))
    rid = heap.insert((1, "b"))
    assert heap.delete_matching((1, "b")) == rid
    with pytest.raises(IndexError_):
        heap.delete_matching((9, "q"))
