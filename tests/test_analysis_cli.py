"""CLI, reporter, and baseline tests for ``python -m repro.analysis``."""

import json
import textwrap

from repro.analysis import Finding, load_baseline
from repro.analysis.__main__ import main

VIOLATION = textwrap.dedent(
    """
    def go(pipe, payload):
        pipe.send(payload)
    """
)


def seed(tmp_path, source=VIOLATION):
    path = tmp_path / "cluster" / "engine.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


# ----------------------------------------------------------------- reports


def test_json_report_round_trips(tmp_path, capsys):
    seed(tmp_path)
    code = main(["--format=json", str(tmp_path)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["files_analyzed"] == 1
    (entry,) = payload["findings"]
    finding = Finding.from_dict(entry)
    assert finding.rule == "REP001"
    assert finding.path == "cluster/engine.py"
    assert finding.line == 3
    assert finding.snippet == "pipe.send(payload)"
    assert finding.fingerprint
    assert finding.to_dict() == entry


def test_text_report_and_exit_codes(tmp_path, capsys):
    seed(tmp_path)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "cluster/engine.py:3:" in out
    assert "REP001" in out

    clean = tmp_path / "cluster" / "engine.py"
    clean.write_text("def go():\n    return 1\n")
    assert main([str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_rules_filter_and_unknown_rule(tmp_path, capsys):
    seed(tmp_path)
    assert main(["--rules=REP002", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["--rules=REP999", str(tmp_path)]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert rule_id in out
    assert "uncharged-mirror" in out


# ---------------------------------------------------------------- baseline


def test_baseline_add_then_expire(tmp_path, capsys):
    seed(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    # Grandfather the current finding.
    assert main([
        "--write-baseline", "--baseline", str(baseline_path), str(tmp_path)
    ]) == 0
    baseline = load_baseline(str(baseline_path))
    assert len(baseline.fingerprints) == 1
    capsys.readouterr()

    # The baselined finding no longer fails the run.
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Fixing the violation makes the baseline entry stale -> exit 1.
    (tmp_path / "cluster" / "engine.py").write_text(
        "def go(self, src, dst, tag):\n    self.network.send(src, dst, tag)\n"
    )
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_baseline_fingerprint_survives_unrelated_edits(tmp_path, capsys):
    seed(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert main([
        "--write-baseline", "--baseline", str(baseline_path), str(tmp_path)
    ]) == 0
    capsys.readouterr()

    # Prepend code above the violation: the line number moves, the
    # fingerprint (and hence the baseline match) must not.
    original = (tmp_path / "cluster" / "engine.py").read_text()
    (tmp_path / "cluster" / "engine.py").write_text(
        "import os\n\n\ndef unrelated():\n    return os.sep\n\n" + original
    )
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_baseline_missing_file_is_usage_error(tmp_path, capsys):
    seed(tmp_path)
    assert main(["--baseline", str(tmp_path / "nope.json"), str(tmp_path)]) == 2
    assert "not found" in capsys.readouterr().err


def test_identical_lines_get_distinct_fingerprints(tmp_path, capsys):
    seed(
        tmp_path,
        "def go(pipe, a, b):\n    pipe.send(a)\n    pipe.send(a)\n",
    )
    assert main(["--format=json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    fingerprints = [entry["fingerprint"] for entry in payload["findings"]]
    assert len(fingerprints) == 2
    assert len(set(fingerprints)) == 2


# ------------------------------------------------------- repo-level config


def test_shipped_baseline_is_empty():
    """The repo's own baseline grandfathers nothing: every violation was
    fixed or annotated instead."""
    import os

    import repro

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
    baseline = load_baseline(os.path.join(repo_root, "analysis-baseline.json"))
    assert baseline.fingerprints == set()
