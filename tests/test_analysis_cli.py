"""CLI, reporter, and baseline tests for ``python -m repro.analysis``."""

import json
import textwrap

from repro.analysis import Finding, load_baseline
from repro.analysis.__main__ import main

VIOLATION = textwrap.dedent(
    """
    def go(pipe, payload):
        pipe.send(payload)
    """
)


def seed(tmp_path, source=VIOLATION):
    path = tmp_path / "cluster" / "engine.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


# ----------------------------------------------------------------- reports


def test_json_report_round_trips(tmp_path, capsys):
    seed(tmp_path)
    code = main(["--format=json", str(tmp_path)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["files_analyzed"] == 1
    (entry,) = payload["findings"]
    finding = Finding.from_dict(entry)
    assert finding.rule == "REP001"
    assert finding.path == "cluster/engine.py"
    assert finding.line == 3
    assert finding.snippet == "pipe.send(payload)"
    assert finding.fingerprint
    assert finding.to_dict() == entry


def test_text_report_and_exit_codes(tmp_path, capsys):
    seed(tmp_path)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "cluster/engine.py:3:" in out
    assert "REP001" in out

    clean = tmp_path / "cluster" / "engine.py"
    clean.write_text("def go():\n    return 1\n")
    assert main([str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_rules_filter_and_unknown_rule(tmp_path, capsys):
    seed(tmp_path)
    assert main(["--rules=REP002", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["--rules=REP999", str(tmp_path)]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert rule_id in out
    assert "uncharged-mirror" in out


# ---------------------------------------------------------------- baseline


def test_baseline_add_then_expire(tmp_path, capsys):
    seed(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    # Grandfather the current finding.
    assert main([
        "--write-baseline", "--baseline", str(baseline_path), str(tmp_path)
    ]) == 0
    baseline = load_baseline(str(baseline_path))
    assert len(baseline.fingerprints) == 1
    capsys.readouterr()

    # The baselined finding no longer fails the run.
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Fixing the violation makes the baseline entry stale -> exit 1.
    (tmp_path / "cluster" / "engine.py").write_text(
        "def go(self, src, dst, tag):\n    self.network.send(src, dst, tag)\n"
    )
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_baseline_fingerprint_survives_unrelated_edits(tmp_path, capsys):
    seed(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert main([
        "--write-baseline", "--baseline", str(baseline_path), str(tmp_path)
    ]) == 0
    capsys.readouterr()

    # Prepend code above the violation: the line number moves, the
    # fingerprint (and hence the baseline match) must not.
    original = (tmp_path / "cluster" / "engine.py").read_text()
    (tmp_path / "cluster" / "engine.py").write_text(
        "import os\n\n\ndef unrelated():\n    return os.sep\n\n" + original
    )
    assert main(["--baseline", str(baseline_path), str(tmp_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_baseline_missing_file_is_usage_error(tmp_path, capsys):
    seed(tmp_path)
    assert main(["--baseline", str(tmp_path / "nope.json"), str(tmp_path)]) == 2
    assert "not found" in capsys.readouterr().err


def test_identical_lines_get_distinct_fingerprints(tmp_path, capsys):
    seed(
        tmp_path,
        "def go(pipe, a, b):\n    pipe.send(a)\n    pipe.send(a)\n",
    )
    assert main(["--format=json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    fingerprints = [entry["fingerprint"] for entry in payload["findings"]]
    assert len(fingerprints) == 2
    assert len(set(fingerprints)) == 2


# ------------------------------------------------------- repo-level config


def test_shipped_baseline_is_empty():
    """The repo's own baseline grandfathers nothing: every violation was
    fixed or annotated instead."""
    import os

    import repro

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
    baseline = load_baseline(os.path.join(repo_root, "analysis-baseline.json"))
    assert baseline.fingerprints == set()


# ------------------------------------------------------------- flow layer


FLOW_TREE = {
    "cluster/cluster.py": textwrap.dedent(
        """
        from .ship import ship_delta

        class Cluster:
            def insert(self, rows):
                ship_delta(self.pipe, rows)
        """
    ),
    "cluster/ship.py": textwrap.dedent(
        """
        def ship_delta(pipe, rows):
            pipe.send(rows)
        """
    ),
}


def seed_tree(tmp_path, files):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


def test_flow_flag_adds_interprocedural_findings(tmp_path, capsys):
    seed_tree(tmp_path, FLOW_TREE)
    assert main(["--format=json", str(tmp_path)]) == 1
    without = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in without["findings"]] == ["REP001"]

    assert main(["--flow", "--format=json", str(tmp_path)]) == 1
    with_flow = json.loads(capsys.readouterr().out)
    rules = [f["rule"] for f in with_flow["findings"]]
    assert "REP001" in rules and "REP007" in rules
    witness = next(f for f in with_flow["findings"] if f["rule"] == "REP007")
    assert "Cluster.insert" in witness["message"]


def test_flow_rules_filter_and_unknown_rule(tmp_path, capsys):
    seed_tree(tmp_path, FLOW_TREE)
    assert main(["--flow", "--rules=REP007", "--format=json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["REP007"]
    # Flow ids are rejected without --flow (they are not per-file rules).
    assert main(["--rules=REP007", str(tmp_path)]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_dot_export_requires_and_uses_flow(tmp_path, capsys):
    seed_tree(tmp_path, FLOW_TREE)
    dot_path = tmp_path / "graph.dot"
    assert main(["--dot", str(dot_path), str(tmp_path)]) == 2
    assert "requires --flow" in capsys.readouterr().err
    assert main(["--flow", "--dot", str(dot_path), str(tmp_path)]) == 1
    dot = dot_path.read_text()
    assert dot.startswith("digraph repro_callgraph {")
    assert '"cluster.ship.ship_delta"' in dot


def test_list_rules_includes_flow_layer(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP007", "REP008", "REP009"):
        assert rule_id in out
    assert "(flow)" in out


# ------------------------------------------------------------------- audit


def test_audit_reports_stale_and_live_suppressions(tmp_path, capsys):
    seed_tree(tmp_path, {
        "cluster/engine.py": (
            "def go(pipe, payload):\n"
            "    pipe.send(payload)  # repro: noqa=REP001\n"
            "    value = 1  # repro: noqa=REP004\n"
            "    return value\n"
        ),
    })
    assert main(["--audit-suppressions", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["total"] == 2
    assert payload["stale"] == 1
    by_rule = {entry["rule"]: entry for entry in payload["suppressions"]}
    assert by_rule["REP001"]["used"] is True
    assert by_rule["REP004"]["used"] is False
    assert by_rule["REP004"]["kind"] == "noqa"
    assert "stale suppression" in captured.err


def test_audit_clean_tree_exits_zero(tmp_path, capsys):
    seed_tree(tmp_path, {
        "cluster/cluster.py": FLOW_TREE["cluster/cluster.py"],
        "cluster/ship.py": (
            "def ship_delta(pipe, rows):\n"
            "    pipe.send(rows)  # repro: noqa=REP001,REP007\n"
        ),
    })
    assert main(["--audit-suppressions", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stale"] == 0
    assert payload["total"] == 2


def test_audit_counts_flow_annotation_use(tmp_path, capsys):
    seed_tree(tmp_path, {
        "cluster/cluster.py": FLOW_TREE["cluster/cluster.py"].replace(
            "def insert(self, rows):",
            "def insert(self, rows):  # repro: uncharged-mirror=IPC only",
        ),
        "cluster/ship.py": (
            "def ship_delta(pipe, rows):\n"
            "    pipe.send(rows)  # repro: noqa=REP001\n"
        ),
    })
    assert main(["--audit-suppressions", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    annotation = next(
        e for e in payload["suppressions"] if e["kind"] == "annotation"
    )
    assert annotation["key"] == "uncharged-mirror"
    assert annotation["used"] is True


# -------------------------------------------------------------- interleave


def test_interleave_subcommand_smoke(capsys):
    from repro.cluster.parallel import fork_available

    if not fork_available():
        import pytest

        pytest.skip("fork start method unavailable")
    code = main([
        "interleave", "--workers=2", "--seeds=1", "--steps=6",
        "--methods=naive", "--modes=eager",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "all bit-identical" in captured.out
    assert "1 schedules" in captured.out
