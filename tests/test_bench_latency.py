"""Latency bench harness (repro.bench.latency) + Prometheus round-trips.

Tiny configs only: these prove the harness executes end to end, its
section validates, and the new metric families survive a text-exposition
round trip in agreement with the live registry — no assertions about
actual latencies, which belong to BENCH_PERF.json.
"""

import json

import pytest

from repro.bench import latency
from repro.bench.harness import config_seed
from repro.bench.latency import (
    LatencyConfig,
    render_latency,
    run_config,
    run_latency,
    validate_latency_section,
)
from repro.obs.metrics import parse_prometheus, validate_prometheus

TINY = LatencyConfig(
    num_nodes=2,
    num_keys=8,
    fanout=2,
    ops=12,
    statement_size=4,
    worker_counts=(0,),
)


@pytest.fixture(scope="module")
def tiny_section():
    return run_latency(TINY)


def test_section_validates_and_covers_grid(tiny_section):
    assert validate_latency_section(tiny_section) == []
    names = {entry["name"] for entry in tiny_section["configs"]}
    assert names == {
        f"{method}-{mode}-w0"
        for method in latency.METHODS
        for mode in latency.MODES
    }


def test_entries_carry_percentiles_attribution_and_knee(tiny_section):
    for entry in tiny_section["configs"]:
        service = entry["service"]
        assert 0 < service["p50"] <= service["p95"] <= service["p99"]
        assert service["p99"] <= service["max"]
        assert len(entry["rates"]) >= 3
        rates = [row["rate"] for row in entry["rates"]]
        assert rates == sorted(rates)
        assert entry["knee_rate"] in rates
        assert entry["attribution"]
        assert entry["seed"] == config_seed(f"latency-{entry['name']}")
        shares = entry["attribution_share"]
        assert sum(shares.values()) == pytest.approx(1.0)
        # Deferred configs must show deferred_refresh time; eager never.
        if entry["mode"] == "deferred":
            assert "deferred_refresh" in entry["attribution"]
        else:
            assert "deferred_refresh" not in entry["attribution"]


def test_prometheus_round_trip_agrees_with_registry():
    """Satellite: the new series (latency histogram, arrival-rate gauges,
    load-op counters) export, validate, and parse back to the snapshot."""
    entry, registry = run_config(TINY, "auxiliary", "eager", workers=0)
    text = registry.to_prometheus()
    assert validate_prometheus(text) == []
    parsed = parse_prometheus(text)

    histogram = registry.get("repro_stmt_latency_seconds")
    assert histogram is not None
    counts = parsed["repro_stmt_latency_seconds_count"]
    # Driver observations carry the method/mode/workers labels; the engine
    # hook points (kind="statement"/"query") share the family without them.
    driver_total = sum(
        value for key, value in counts.items() if 'method="auxiliary"' in key
    )
    assert driver_total == entry["ops"]
    assert sum(counts.values()) > driver_total  # engine hooks observed too
    label_string = (
        '{kind="update",method="auxiliary",mode="eager",workers="0"}'
    )
    assert counts[label_string] == histogram.count(
        kind="update", method="auxiliary", mode="eager", workers=0
    )
    sums = parsed["repro_stmt_latency_seconds_sum"]
    assert sums[label_string] == pytest.approx(
        histogram.sum(kind="update", method="auxiliary", mode="eager", workers=0)
    )
    buckets = parsed["repro_stmt_latency_seconds_bucket"]
    inf_key = label_string[:-1] + ',le="+Inf"}'
    assert buckets[inf_key] == counts[label_string]

    gauges = parsed["repro_arrival_rate"]
    swept = {row["rate"] for row in entry["rates"]}
    assert set(gauges.values()) == swept

    ops = parsed["repro_load_ops_total"]
    assert sum(ops.values()) == entry["ops"]


def test_render_mentions_every_config(tiny_section):
    text = render_latency(tiny_section)
    for entry in tiny_section["configs"]:
        assert entry["name"] in text
    assert "p99" in text


def test_validator_catches_problems(tiny_section):
    broken = json.loads(json.dumps(tiny_section))  # deep copy
    entry = broken["configs"][0]
    entry["service"]["p50"] = entry["service"]["max"] * 10
    entry["rates"] = entry["rates"][:2]
    entry["attribution"] = {}
    del broken["configs"][1]["knee_rate"]
    problems = validate_latency_section(broken)
    assert any("not monotone" in p for p in problems)
    assert any("< 3" in p for p in problems)
    assert any("empty span attribution" in p for p in problems)
    assert any("missing fields" in p for p in problems)
    assert validate_latency_section({}) != []


def test_cli_writes_standalone_report(tmp_path, capsys, monkeypatch):
    out = tmp_path / "latency.json"
    monkeypatch.setattr(
        LatencyConfig, "smoke", classmethod(lambda cls: TINY)
    )
    assert latency.main(["--smoke", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    from repro.bench.perf import SCHEMA_VERSION

    assert report["schema_version"] == SCHEMA_VERSION
    assert report["smoke"] is True
    assert validate_latency_section(report["latency"]) == []
    assert "wrote" in capsys.readouterr().out
