"""Tests for the hybrid maintenance method (paper §4's suggestion)."""

from collections import Counter

import pytest

from repro import Cluster, HashPartitioning, Op, Schema, recompute_view, two_way_view
from repro.core import PlanningError
from repro.core.multiway import AuxiliaryAccess, GlobalIndexAccess
from repro.core.view import JoinCondition, JoinViewDefinition


def three_way_cluster():
    """B is small (candidate for an AR), C is large (candidate for a GI)."""
    cluster = Cluster(4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.create_relation(Schema.of("C", "g", "h", "p"), partitioned_on="p")
    cluster.insert("B", [(i, i % 3, i % 5) for i in range(10)])
    cluster.insert("C", [(i % 5, f"h{i}", i) for i in range(60)])
    return cluster


CHAIN = JoinViewDefinition(
    name="HV",
    relations=("A", "B", "C"),
    conditions=(
        JoinCondition("A", "c", "B", "d"),
        JoinCondition("B", "f", "C", "g"),
    ),
    select=(("A", "a"), ("B", "b"), ("C", "h")),
    partitioning=HashPartitioning("a"),
)


def test_size_heuristic_mixes_structures():
    cluster = three_way_cluster()
    cluster.create_join_view(
        CHAIN, method="hybrid", hybrid_options={"ar_row_budget": 20}
    )
    # B (10 rows) got ARs; C (60 rows) got a GI; A (empty) got ARs too.
    assert cluster.catalog.find_auxiliary("B", "d") is not None
    assert cluster.catalog.find_auxiliary("B", "f") is not None
    assert cluster.catalog.find_global_index("C", "g") is not None
    assert cluster.catalog.find_auxiliary("C", "g") is None


def test_hybrid_plan_mixes_access_paths():
    cluster = three_way_cluster()
    view = cluster.create_join_view(
        CHAIN, method="hybrid", hybrid_options={"ar_row_budget": 20}
    )
    plan = view.maintainer.planner.plan_for("A")
    accesses = [hop.access for hop in plan.hops]
    assert isinstance(accesses[0], AuxiliaryAccess)     # small B via AR
    assert isinstance(accesses[1], GlobalIndexAccess)   # large C via GI


def test_hybrid_maintains_correctly_all_relations():
    cluster = three_way_cluster()
    cluster.create_join_view(
        CHAIN, method="hybrid", hybrid_options={"ar_row_budget": 20}
    )
    cluster.insert("A", [(1, 0, "x"), (2, 1, "y")])
    assert Counter(cluster.view_rows("HV")) == recompute_view(cluster, "HV")
    cluster.insert("B", [(100, 0, 2)])
    assert Counter(cluster.view_rows("HV")) == recompute_view(cluster, "HV")
    cluster.insert("C", [(2, "hx", 999)])
    assert Counter(cluster.view_rows("HV")) == recompute_view(cluster, "HV")
    cluster.delete("A", [(1, 0, "x")])
    assert Counter(cluster.view_rows("HV")) == recompute_view(cluster, "HV")


def test_explicit_choices_override_heuristic():
    cluster = three_way_cluster()
    cluster.create_join_view(
        CHAIN,
        method="hybrid",
        hybrid_options={"choices": {"B": "global_index", "C": "auxiliary"}},
    )
    assert cluster.catalog.find_global_index("B", "d") is not None
    assert cluster.catalog.find_auxiliary("C", "g") is not None


def test_invalid_choice_rejected():
    cluster = three_way_cluster()
    with pytest.raises(ValueError, match="hybrid choice"):
        cluster.create_join_view(
            CHAIN, method="hybrid", hybrid_options={"choices": {"B": "zzz"}}
        )


def test_hybrid_cost_between_pure_methods(ab_cluster):
    """On a two-way view with one AR side, hybrid TW sits at the AR value
    when probing the AR'd side."""
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="hybrid",
        strategy="inl",
        hybrid_options={"ar_row_budget": 100},
    )
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.maintenance_workload() == 3.0  # AR constant


def test_hybrid_gi_side_cost(ab_cluster):
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="hybrid",
        strategy="inl",
        hybrid_options={"choices": {"A": "auxiliary", "B": "global_index"}},
    )
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # AR_A co-update insert (2) + GI_B probe (1) + N=4 fetches = 7.
    assert snapshot.maintenance_workload() == 7.0


def test_hybrid_falls_back_to_broadcast_with_index(ab_cluster):
    """If no structure was provisioned (budget excludes the relation and
    no GI either), hybrid needs a plain index to broadcast-probe."""
    from repro.core import BoundView, MaintenanceMethod
    from repro.core.optimizer import MaintenancePlanner

    bound = BoundView(
        two_way_view("JV", "A", "c", "B", "d"),
        {
            "A": ab_cluster.catalog.relation("A").schema,
            "B": ab_cluster.catalog.relation("B").schema,
        },
    )
    planner = MaintenancePlanner(ab_cluster, bound, MaintenanceMethod.HYBRID)
    with pytest.raises(PlanningError, match="no structure"):
        planner.resolve_access("B", "d")
    ab_cluster.create_index("B", "d")
    access = planner.resolve_access("B", "d")
    assert access.broadcast
