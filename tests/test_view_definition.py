"""Unit tests for repro.core.view (definitions, binding, evaluation)."""

from collections import Counter

import pytest

from repro.cluster.partitioning import HashPartitioning, RoundRobinPartitioning
from repro.core.view import (
    BoundView,
    JoinCondition,
    JoinViewDefinition,
    ViewDefinitionError,
    two_way_view,
)
from repro.storage.schema import Schema

A = Schema.of("A", "a", "c", "e")
B = Schema.of("B", "b", "d", "f")
C = Schema.of("C", "g", "h")


def bind(definition, schemas=None):
    return BoundView(definition, schemas or {"A": A, "B": B, "C": C})


def test_two_way_view_shape():
    definition = two_way_view("JV", "A", "c", "B", "d")
    assert definition.relations == ("A", "B")
    assert definition.conditions[0].column_of("A") == "c"
    assert definition.conditions[0].other("A") == ("B", "d")


def test_self_join_rejected():
    with pytest.raises(ViewDefinitionError, match="self-join"):
        JoinCondition("A", "c", "A", "d")


def test_needs_two_relations():
    with pytest.raises(ViewDefinitionError):
        JoinViewDefinition("JV", ("A",), (JoinCondition("A", "c", "B", "d"),))


def test_duplicate_relations_rejected():
    with pytest.raises(ViewDefinitionError, match="distinct"):
        JoinViewDefinition(
            "JV", ("A", "A"), (JoinCondition("A", "c", "B", "d"),)
        )


def test_needs_conditions():
    with pytest.raises(ViewDefinitionError, match="condition"):
        JoinViewDefinition("JV", ("A", "B"), ())


def test_condition_on_foreign_relation_rejected():
    with pytest.raises(ViewDefinitionError, match="outside"):
        JoinViewDefinition(
            "JV", ("A", "B"), (JoinCondition("A", "c", "C", "g"),)
        )


def test_disconnected_graph_rejected():
    with pytest.raises(ViewDefinitionError, match="not connected"):
        JoinViewDefinition(
            "JV",
            ("A", "B", "C"),
            (JoinCondition("A", "c", "B", "d"),),
        )


def test_join_columns_of_deduplicates():
    definition = JoinViewDefinition(
        "JV",
        ("A", "B", "C"),
        (
            JoinCondition("A", "c", "B", "d"),
            JoinCondition("A", "c", "C", "g"),
        ),
    )
    assert definition.join_columns_of("A") == ["c"]


def test_bound_view_rejects_unknown_join_column():
    definition = two_way_view("JV", "A", "zzz", "B", "d")
    with pytest.raises(ViewDefinitionError, match="no column 'zzz'"):
        bind(definition)


def test_bound_view_rejects_unknown_select():
    definition = JoinViewDefinition(
        "JV", ("A", "B"), (JoinCondition("A", "c", "B", "d"),),
        select=(("A", "nope"),),
    )
    with pytest.raises(ViewDefinitionError):
        bind(definition)


def test_select_star_by_default():
    bound = bind(two_way_view("JV", "A", "c", "B", "d"))
    assert bound.schema.column_names == ("a", "c", "e", "b", "d", "f")


def test_collision_qualification():
    left = Schema.of("A", "k", "x")
    right = Schema.of("B", "k", "y")
    definition = two_way_view("JV", "A", "k", "B", "k")
    bound = BoundView(definition, {"A": left, "B": right})
    assert bound.schema.column_names == ("A_k", "x", "B_k", "y")
    assert bound.output_name("A", "k") == "A_k"
    assert bound.output_name("A", "x") == "x"
    assert bound.source_of_output("A_k") == ("A", "k")


def test_source_of_unknown_output():
    bound = bind(two_way_view("JV", "A", "c", "B", "d"))
    with pytest.raises(ViewDefinitionError):
        bound.source_of_output("nope")


def test_partitioning_column_must_be_in_select():
    definition = two_way_view(
        "JV", "A", "c", "B", "d",
        select=[("A", "e")],
        partitioning=HashPartitioning("d"),
    )
    with pytest.raises(ViewDefinitionError, match="partitioned on"):
        bind(definition)


def test_columns_needed_from_is_select_plus_join():
    definition = two_way_view(
        "JV", "A", "c", "B", "d", select=[("A", "e"), ("B", "f")]
    )
    bound = bind(definition)
    assert bound.columns_needed_from("A") == ["e", "c"]
    assert bound.columns_needed_from("B") == ["f", "d"]


def test_evaluate_two_way():
    bound = bind(
        two_way_view("JV", "A", "c", "B", "d", select=[("A", "a"), ("B", "b")])
    )
    contents = {
        "A": [(1, 10, "x"), (2, 20, "y")],
        "B": [(5, 10, "p"), (6, 10, "q"), (7, 30, "r")],
    }
    assert bound.evaluate(contents) == Counter({(1, 5): 1, (1, 6): 1})


def test_evaluate_respects_duplicates():
    bound = bind(two_way_view("JV", "A", "c", "B", "d", select=[("A", "a")]))
    contents = {"A": [(1, 10, "x"), (1, 10, "x")], "B": [(5, 10, "p")]}
    assert bound.evaluate(contents) == Counter({(1,): 2})


def test_evaluate_three_way_chain():
    definition = JoinViewDefinition(
        "JV",
        ("A", "B", "C"),
        (
            JoinCondition("A", "c", "B", "d"),
            JoinCondition("B", "f", "C", "g"),
        ),
        select=(("A", "a"), ("C", "h")),
    )
    bound = bind(definition)
    contents = {
        "A": [(1, 10, "x")],
        "B": [(5, 10, 100)],
        "C": [(100, "match"), (200, "no")],
    }
    assert bound.evaluate(contents) == Counter({(1, "match"): 1})


def test_evaluate_cyclic_triangle():
    """The paper's A-B-C triangle: the closing edge acts as a filter."""
    a = Schema.of("A", "x", "y")
    b = Schema.of("B", "y2", "z")
    c = Schema.of("C", "z2", "x2")
    definition = JoinViewDefinition(
        "T",
        ("A", "B", "C"),
        (
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
        select=(("A", "x"), ("B", "z")),
    )
    bound = BoundView(definition, {"A": a, "B": b, "C": c})
    contents = {
        "A": [(1, 10), (2, 10)],
        "B": [(10, 99)],
        "C": [(99, 1)],  # closes the cycle only for A.x == 1
    }
    assert bound.evaluate(contents) == Counter({(1, 99): 1})


def test_round_robin_partitioning_is_default():
    definition = two_way_view("JV", "A", "c", "B", "d")
    assert isinstance(definition.partitioning, RoundRobinPartitioning)
