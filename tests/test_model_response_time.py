"""Tests for the closed-form response-time model (§3.1.2, Figures 9-12)."""

import pytest

from repro.model import (
    JoinRegime,
    MethodVariant,
    ModelParameters,
    index_response_ios,
    paper_scenario,
    predict_response,
    response_time_ios,
    sort_merge_crossover,
    sort_merge_response_ios,
)


def test_figure9_shapes():
    """400-tuple transaction, index regime."""
    for num_nodes, expected_ar in ((2, 600.0), (8, 150.0), (128, 12.0)):
        params = paper_scenario(num_nodes)
        assert index_response_ios(
            MethodVariant.AUXILIARY, 400, params
        ) == expected_ar
        # Naive with clustered index is flat at A.
        assert index_response_ios(
            MethodVariant.NAIVE_CLUSTERED, 400, params
        ) == 400.0


def test_naive_nonclustered_approaches_a_from_above():
    values = [
        index_response_ios(
            MethodVariant.NAIVE_NONCLUSTERED, 400, paper_scenario(num_nodes)
        )
        for num_nodes in (2, 8, 32, 128)
    ]
    assert values == sorted(values, reverse=True)
    assert all(value > 400.0 for value in values)


def test_stepwise_ceiling_behaviour():
    """Figure 12: AR response steps at multiples of L."""
    params = paper_scenario(128)
    ar = MethodVariant.AUXILIARY
    assert index_response_ios(ar, 1, params) == 3.0
    assert index_response_ios(ar, 128, params) == 3.0
    assert index_response_ios(ar, 129, params) == 6.0
    assert index_response_ios(ar, 256, params) == 6.0
    assert index_response_ios(ar, 257, params) == 9.0


def test_figure10_naive_clustered_wins_sort_merge_regime():
    """The paper's inversion: at A ~ |B| pages, naive-clustered beats all."""
    for num_nodes in (2, 8, 32, 128):
        params = paper_scenario(num_nodes)
        naive = sort_merge_response_ios(
            MethodVariant.NAIVE_CLUSTERED, 6_500, params
        )
        for other in (
            MethodVariant.AUXILIARY,
            MethodVariant.GI_NONCLUSTERED,
            MethodVariant.GI_CLUSTERED,
        ):
            assert naive < sort_merge_response_ios(other, 6_500, params)


def test_sort_merge_costs_fragment_dominated():
    params = paper_scenario(8)  # B_i = 800 pages
    assert sort_merge_response_ios(
        MethodVariant.NAIVE_CLUSTERED, 1_000, params
    ) == 800.0
    # Non-clustered pays the external sort.
    assert sort_merge_response_ios(
        MethodVariant.NAIVE_NONCLUSTERED, 1_000, params
    ) > 800.0
    # AR adds its structure updates on top of the scan.
    assert sort_merge_response_ios(
        MethodVariant.AUXILIARY, 1_000, params
    ) == 800.0 + 2 * 125


def test_auto_regime_picks_minimum():
    params = paper_scenario(128)
    for variant in MethodVariant:
        for inserted in (1, 500, 70_000):
            prediction = predict_response(variant, inserted, params)
            assert prediction.ios == min(
                prediction.index_ios, prediction.sort_merge_ios
            )
            assert response_time_ios(
                variant, inserted, params, JoinRegime.AUTO
            ) == prediction.ios


def test_forced_regimes():
    params = paper_scenario(8)
    assert response_time_ios(
        MethodVariant.AUXILIARY, 100, params, JoinRegime.INDEX_NESTED_LOOPS
    ) == index_response_ios(MethodVariant.AUXILIARY, 100, params)
    assert response_time_ios(
        MethodVariant.AUXILIARY, 100, params, JoinRegime.SORT_MERGE
    ) == sort_merge_response_ios(MethodVariant.AUXILIARY, 100, params)


def test_crossover_ordering_matches_figure11():
    """Naive flattens first, GI later, AR last (§3.2's discussion)."""
    params = paper_scenario(128)
    naive = sort_merge_crossover(MethodVariant.NAIVE_CLUSTERED, params)
    gi = sort_merge_crossover(MethodVariant.GI_CLUSTERED, params)
    ar = sort_merge_crossover(MethodVariant.AUXILIARY, params)
    assert naive < gi < ar


def test_crossover_is_exact_boundary():
    params = paper_scenario(128)
    variant = MethodVariant.NAIVE_CLUSTERED
    crossover = sort_merge_crossover(variant, params)
    assert sort_merge_response_ios(variant, crossover, params) < index_response_ios(
        variant, crossover, params
    )
    assert sort_merge_response_ios(
        variant, crossover - 1, params
    ) >= index_response_ios(variant, crossover - 1, params)


def test_ar_crossover_near_b_pages():
    """'As the number of inserted tuples approaches the number of pages of
    B, the auxiliary relation method is indeed worse than the naive.'"""
    params = paper_scenario(128)
    crossover = sort_merge_crossover(MethodVariant.AUXILIARY, params)
    assert 0.5 * params.partner_pages < crossover < 3 * params.partner_pages


def test_negative_inserts_rejected():
    params = paper_scenario(4)
    with pytest.raises(ValueError):
        index_response_ios(MethodVariant.AUXILIARY, -1, params)
    with pytest.raises(ValueError):
        sort_merge_response_ios(MethodVariant.AUXILIARY, -1, params)


def test_response_monotone_in_inserted_tuples():
    params = paper_scenario(16)
    for variant in MethodVariant:
        previous = 0.0
        for inserted in (1, 10, 100, 1_000, 10_000):
            current = response_time_ios(variant, inserted, params)
            assert current >= previous
            previous = current
