"""Unit tests for repro.cluster.node."""

import pytest

from repro.cluster.node import Node
from repro.costs import CostLedger, Op, Tag
from repro.storage import GlobalRowId, PageLayout, Schema


@pytest.fixture
def node():
    return Node(0, CostLedger(), PageLayout(tuples_per_page=10))


def test_create_and_fetch_fragment(node):
    node.create_fragment(Schema.of("T", "k", "v"))
    assert node.has_fragment("T")
    assert not node.has_fragment("X")
    with pytest.raises(KeyError):
        node.fragment("X")


def test_duplicate_fragment_rejected(node):
    node.create_fragment(Schema.of("T", "k"))
    with pytest.raises(ValueError):
        node.create_fragment(Schema.of("T", "k"))


def test_drop_fragment(node):
    node.create_fragment(Schema.of("T", "k"))
    node.drop_fragment("T")
    assert not node.has_fragment("T")


def test_insert_charges_one_insert(node):
    node.create_fragment(Schema.of("T", "k"))
    node.insert("T", (1,), Tag.BASE)
    snapshot = node.ledger.snapshot()
    assert snapshot.op_count(Op.INSERT, tags=[Tag.BASE]) == 1
    assert snapshot.total_workload() == 2.0


def test_index_probe_nonclustered_charges_fetches(node):
    node.create_fragment(Schema.of("T", "k", "v"))
    node.create_local_index("T", "k", clustered=False)
    node.insert("T", (7, "a"), Tag.BASE)
    node.insert("T", (7, "b"), Tag.BASE)
    before = node.ledger.snapshot()
    rows = node.index_probe("T", "k", 7, Tag.MAINTAIN)
    assert sorted(rows) == [(7, "a"), (7, "b")]
    diff = node.ledger.diff_since(before)
    assert diff.op_count(Op.SEARCH) == 1
    assert diff.op_count(Op.FETCH) == 2


def test_index_probe_clustered_fetches_free(node):
    node.create_fragment(Schema.of("T", "k", "v"))
    node.create_local_index("T", "k", clustered=True)
    node.insert("T", (7, "a"), Tag.BASE)
    node.insert("T", (7, "b"), Tag.BASE)
    before = node.ledger.snapshot()
    rows = node.index_probe("T", "k", 7, Tag.MAINTAIN)
    assert len(rows) == 2
    diff = node.ledger.diff_since(before)
    assert diff.op_count(Op.SEARCH) == 1
    assert diff.op_count(Op.FETCH) == 0


def test_index_probe_miss_charges_search_only(node):
    node.create_fragment(Schema.of("T", "k"))
    node.create_local_index("T", "k")
    before = node.ledger.snapshot()
    assert node.index_probe("T", "k", 42, Tag.MAINTAIN) == []
    diff = node.ledger.diff_since(before)
    assert diff.op_count(Op.SEARCH) == 1
    assert diff.op_count(Op.FETCH) == 0


def test_index_probe_requires_index(node):
    node.create_fragment(Schema.of("T", "k"))
    with pytest.raises(KeyError, match="no index"):
        node.index_probe("T", "k", 1, Tag.MAINTAIN)


def test_fetch_by_rowids_clustered_batch_is_one_fetch(node):
    node.create_fragment(Schema.of("T", "k"))
    rid1 = node.insert("T", (1,), Tag.BASE)
    rid2 = node.insert("T", (2,), Tag.BASE)
    before = node.ledger.snapshot()
    rows = node.fetch_by_rowids("T", [rid1, rid2], Tag.MAINTAIN, clustered_on_page=True)
    assert rows == [(1,), (2,)]
    assert node.ledger.diff_since(before).op_count(Op.FETCH) == 1


def test_fetch_by_rowids_nonclustered_per_row(node):
    node.create_fragment(Schema.of("T", "k"))
    rids = [node.insert("T", (i,), Tag.BASE) for i in range(3)]
    before = node.ledger.snapshot()
    node.fetch_by_rowids("T", rids, Tag.MAINTAIN, clustered_on_page=False)
    assert node.ledger.diff_since(before).op_count(Op.FETCH) == 3


def test_fetch_by_rowids_empty_is_free(node):
    node.create_fragment(Schema.of("T", "k"))
    before = node.ledger.snapshot()
    assert node.fetch_by_rowids("T", [], Tag.MAINTAIN) == []
    assert node.ledger.diff_since(before).total_workload() == 0.0


def test_delete_matching_uses_index_and_charges(node):
    node.create_fragment(Schema.of("T", "k", "v"))
    node.create_local_index("T", "k")
    node.insert("T", (1, "a"), Tag.BASE)
    before = node.ledger.snapshot()
    node.delete_matching("T", (1, "a"), Tag.BASE)
    diff = node.ledger.diff_since(before)
    assert diff.op_count(Op.SEARCH) == 1
    assert diff.op_count(Op.INSERT) == 1  # write billed at INSERT weight
    assert len(node.fragment("T").table) == 0


def test_delete_matching_without_index_scans(node):
    node.create_fragment(Schema.of("T", "k"))
    node.insert("T", (1,), Tag.BASE)
    node.delete_matching("T", (1,), Tag.BASE)
    assert len(node.fragment("T").table) == 0


def test_delete_matching_missing_raises(node):
    node.create_fragment(Schema.of("T", "k"))
    node.create_local_index("T", "k")
    with pytest.raises(KeyError):
        node.delete_matching("T", (9,), Tag.BASE)


def test_gi_partition_roundtrip(node):
    node.create_gi_partition("GI_B_d", "B", "d")
    node.gi_insert("GI_B_d", 7, GlobalRowId(2, 5), Tag.MAINTAIN)
    grouped = node.gi_probe("GI_B_d", 7, Tag.MAINTAIN)
    assert grouped == {2: [GlobalRowId(2, 5)]}
    node.gi_delete("GI_B_d", 7, GlobalRowId(2, 5), Tag.MAINTAIN)
    assert node.gi_probe("GI_B_d", 7, Tag.MAINTAIN) == {}


def test_gi_duplicate_partition_rejected(node):
    node.create_gi_partition("GI", "B", "d")
    with pytest.raises(ValueError):
        node.create_gi_partition("GI", "B", "d")
    with pytest.raises(KeyError):
        node.gi_partition("OTHER")


def test_scan_charges_pages_when_tagged(node):
    node.create_fragment(Schema.of("T", "k"))
    for i in range(25):
        node.insert("T", (i,), Tag.BASE)
    before = node.ledger.snapshot()
    rows = node.scan("T", Tag.QUERY)
    assert len(rows) == 25
    assert node.ledger.diff_since(before).op_count(Op.SCAN_PAGE) == 3  # ceil(25/10)


def test_scan_untagged_is_free(node):
    node.create_fragment(Schema.of("T", "k"))
    node.insert("T", (1,), Tag.BASE)
    before = node.ledger.snapshot()
    node.scan("T")
    assert node.ledger.diff_since(before).total_workload() == 0.0
