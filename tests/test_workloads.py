"""Tests for repro.workloads (TPC-R generator, uniform scenario, streams)."""

from collections import Counter

import pytest

from repro import Cluster
from repro.cluster.partitioning import stable_hash
from repro.workloads import (
    LINEITEMS_PER_ORDER,
    TpcrGenerator,
    UniformJoinWorkload,
    UpdateStream,
    batch_sizes_sweep,
    build_cluster,
    jv1_definition,
    jv2_definition,
    load_into,
)
from repro.workloads.updates import OpKind


# ----------------------------------------------------------------- TPC-R


def test_tpcr_cardinalities_follow_table1_ratios():
    dataset = TpcrGenerator(scale=0.001).generate()
    assert len(dataset.customers) == 150
    assert len(dataset.orders) == 1_500
    assert len(dataset.lineitems) == 6_000


def test_tpcr_each_customer_matches_one_order():
    dataset = TpcrGenerator(scale=0.001).generate()
    orders_by_custkey = Counter(order[1] for order in dataset.orders)
    for customer in dataset.customers:
        assert orders_by_custkey[customer[0]] == 1


def test_tpcr_each_order_matches_four_lineitems():
    dataset = TpcrGenerator(scale=0.001).generate()
    lineitems_by_order = Counter(item[1] for item in dataset.lineitems)
    for order in dataset.orders:
        assert lineitems_by_order[order[0]] == LINEITEMS_PER_ORDER


def test_tpcr_deterministic():
    a = TpcrGenerator(scale=0.001, seed=1).generate()
    b = TpcrGenerator(scale=0.001, seed=1).generate()
    assert a.customers == b.customers
    assert a.orders == b.orders


def test_tpcr_new_customers_match_dangling_orders():
    generator = TpcrGenerator(scale=0.001)
    dataset = generator.generate()
    delta = generator.new_customers(10, starting_at=len(dataset.customers))
    order_custkeys = {order[1] for order in dataset.orders}
    for row in delta:
        assert row[0] in order_custkeys


def test_tpcr_invalid_scale():
    with pytest.raises(ValueError):
        TpcrGenerator(scale=0)


def test_tpcr_summary_rows():
    dataset = TpcrGenerator(scale=0.01).generate()
    summary = {name: (tuples, mb) for name, tuples, mb in dataset.summary_rows()}
    assert summary["customer"][0] == 1_500
    assert summary["orders"][1] == pytest.approx(1.78, rel=0.01)


def test_load_into_cluster_partitions_correctly():
    cluster = Cluster(4)
    dataset = TpcrGenerator(scale=0.001).generate()
    load_into(cluster, dataset)
    assert cluster.catalog.relation("orders").row_count == 1_500
    position = cluster.catalog.relation("customer").schema.index_of("custkey")
    for node in cluster.nodes:
        for row in node.scan("customer"):
            assert stable_hash(row[position]) % 4 == node.node_id


def test_jv_definitions_bind_and_maintain():
    cluster = Cluster(2)
    generator = TpcrGenerator(scale=0.001)
    load_into(cluster, generator.generate())
    cluster.create_join_view(jv1_definition(), method="auxiliary")
    cluster.create_join_view(jv2_definition(partitioned=False), method="naive")
    assert len(cluster.view_rows("JV1")) == 150
    assert len(cluster.view_rows("JV2")) == 150 * LINEITEMS_PER_ORDER
    delta = generator.new_customers(4, starting_at=150)
    cluster.insert("customer", delta)
    assert len(cluster.view_rows("JV1")) == 154
    assert len(cluster.view_rows("JV2")) == 154 * LINEITEMS_PER_ORDER


# --------------------------------------------------------------- uniform


def test_uniform_b_rows_fanout():
    workload = UniformJoinWorkload(num_keys=8, fanout=3)
    by_key = Counter(row[1] for row in workload.b_rows())
    assert all(count == 3 for count in by_key.values())
    assert len(by_key) == 8


def test_uniform_matches_spread_over_min_n_l_nodes():
    workload = UniformJoinWorkload(num_keys=8, fanout=3)
    for num_nodes in (2, 4, 8):
        for key in range(8):
            nodes = {
                stable_hash(row[0]) % num_nodes
                for row in workload.b_rows()
                if row[1] == key
            }
            assert len(nodes) == min(3, num_nodes)


def test_uniform_a_rows_cycle_keys():
    workload = UniformJoinWorkload(num_keys=4, fanout=1)
    keys = [row[1] for row in workload.a_rows(8)]
    assert keys == [0, 1, 2, 3, 0, 1, 2, 3]


def test_uniform_a_stream_matches_a_rows():
    workload = UniformJoinWorkload(num_keys=4, fanout=1)
    stream = workload.a_stream()
    assert [next(stream) for _ in range(3)] == workload.a_rows(3)


def test_build_cluster_ready_to_measure():
    workload = UniformJoinWorkload(num_keys=8, fanout=2)
    cluster = build_cluster(workload, num_nodes=4, method="auxiliary")
    assert cluster.catalog.relation("B").row_count == 16
    snapshot = cluster.insert("A", [workload.a_row(0)])
    assert len(cluster.view_rows("JV")) == 2
    assert snapshot.maintenance_workload() > 0


# ---------------------------------------------------------------- streams


def test_update_stream_insert_only():
    stream = UpdateStream("A", lambda i: (i, i % 3, "x"), batch_size=2)
    ops = list(stream.ops(3))
    assert all(op.kind is OpKind.INSERT for op in ops)
    assert all(len(op.rows) == 2 for op in ops)
    serials = [row[0] for op in ops for row in op.rows]
    assert serials == list(range(6))


def test_update_stream_mixed_is_consistent(ab_cluster):
    from tests.conftest import make_view
    from repro import recompute_view

    make_view(ab_cluster, "auxiliary")
    stream = UpdateStream(
        "A",
        lambda i: (i, i % 5, f"e{i}"),
        mix=(0.5, 0.25, 0.25),
        update_row=lambda row, serial: (row[0], serial % 5, row[2]),
        seed=11,
    )
    for op in stream.ops(30):
        op.apply_to(ab_cluster)
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")


def test_update_stream_deterministic():
    make = lambda: UpdateStream("A", lambda i: (i,), mix=(0.6, 0.2, 0.2), seed=3)
    a = [(op.kind, op.rows, op.changes) for op in make().ops(20)]
    b = [(op.kind, op.rows, op.changes) for op in make().ops(20)]
    assert a == b


def test_update_stream_validation():
    with pytest.raises(ValueError):
        UpdateStream("A", lambda i: (i,), batch_size=0)
    with pytest.raises(ValueError):
        UpdateStream("A", lambda i: (i,), mix=(0.5, 0.5, 0.5))


def test_batch_sizes_sweep_log_spaced():
    sizes = batch_sizes_sweep(1, 1000, steps_per_decade=1)
    assert sizes[0] == 1
    assert sizes[-1] == 1000
    assert sizes == sorted(set(sizes))
