"""Unit tests for repro.storage.pages."""

import math

import pytest

from repro.storage.pages import DEFAULT_LAYOUT, PageLayout


def test_pages_for_tuples_ceiling():
    layout = PageLayout(tuples_per_page=100)
    assert layout.pages_for_tuples(0) == 0
    assert layout.pages_for_tuples(1) == 1
    assert layout.pages_for_tuples(100) == 1
    assert layout.pages_for_tuples(101) == 2


def test_pages_for_tuples_negative_rejected():
    with pytest.raises(ValueError):
        PageLayout().pages_for_tuples(-1)


def test_page_of():
    layout = PageLayout(tuples_per_page=10)
    assert layout.page_of(0) == 0
    assert layout.page_of(9) == 0
    assert layout.page_of(10) == 1


def test_page_of_negative_rejected():
    with pytest.raises(ValueError):
        PageLayout().page_of(-1)


def test_invalid_layout_rejected():
    with pytest.raises(ValueError):
        PageLayout(tuples_per_page=0)
    with pytest.raises(ValueError):
        PageLayout(memory_pages=1)


def test_sort_cost_in_memory_is_scan():
    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    assert layout.sort_cost_pages(100) == 100.0
    assert layout.sort_cost_pages(0) == 0.0


def test_sort_cost_external_matches_paper_formula():
    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    pages = 6_400
    assert layout.sort_cost_pages(pages) == pytest.approx(
        pages * math.log(pages, 100)
    )


def test_sort_cost_monotone_in_pages():
    layout = PageLayout(tuples_per_page=1, memory_pages=10)
    costs = [layout.sort_cost_pages(p) for p in (5, 10, 20, 100, 1000)]
    assert costs == sorted(costs)


def test_scan_cost():
    assert DEFAULT_LAYOUT.scan_cost_pages(7) == 7.0
    assert DEFAULT_LAYOUT.scan_cost_pages(-3) == 0.0
