"""Shared multi-view DAG ↔ independent per-view loop equivalence.

ISSUE 8's acceptance bar: a cluster maintaining V overlapping views through
the shared delta-propagation DAG (``shared_maintenance=True``, the default)
must produce **identical view contents** (per node, in storage order) and
row counts compared to the historical independent loop — across all three
methods, eager and deferred maintainers, and serial vs worker-pool
execution — while billing shared probes only once.  Mid-stream DDL
(``create_view`` / ``drop_view``) must invalidate the shared grouping.
"""

import random
from collections import Counter

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.cluster.parallel import fork_available
from repro.core.aggregates import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    aggregate_rows,
    define_aggregate_join_view,
    recompute_aggregate,
)
from repro.core.deferred import defer_view
from repro.core.registry import recompute_view
from repro.core.view import JoinViewDefinition
from repro.costs import Op, Tag

METHODS = ("naive", "auxiliary", "global_index")

A_SCHEMA = Schema.of("A", "a", "c", "e", kinds=(int, int, int))
B_SCHEMA = Schema.of("B", "b", "d", "f", kinds=(int, int, int))

#: Overlapping projections — same join clause A.c = B.d throughout; every
#: select keeps "e" (the views' partitioning column).
SELECTS = (
    [("A", "e"), ("A", "c"), ("B", "f")],
    [("A", "e"), ("A", "a"), ("B", "b")],
    [("A", "e"), ("A", "c"), ("A", "a"), ("B", "b"), ("B", "d"), ("B", "f")],
)


def _build(
    method,
    shared,
    num_views=3,
    workers=None,
    strategy="inl",
    deferred_last=False,
):
    cluster = Cluster(
        num_nodes=4, workers=workers, shared_maintenance=shared
    )
    cluster.create_relation(A_SCHEMA, partitioned_on="a")
    cluster.create_relation(
        B_SCHEMA, partitioned_on="b", indexes=[("d", True)]
    )
    cluster.insert("B", [(i, i % 5, 100 + i) for i in range(20)])
    for i in range(num_views):
        cluster.create_join_view(
            two_way_view(
                f"JV{i}", "A", "c", "B", "d",
                select=SELECTS[i % len(SELECTS)],
                partitioning=HashPartitioning("e"),
            ),
            method=method,
            strategy=strategy,
        )
    if deferred_last:
        defer_view(cluster, f"JV{num_views - 1}", flush_threshold=6)
    return cluster


def _script(cluster, seed=11, steps=24):
    """A deterministic mixed run: A inserts/deletes and B writes (which
    maintain the views in the other direction and co-update the ARs/GIs)."""
    rng = random.Random(seed)
    live_a = []
    serial = 0
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.55 or not live_a:
            rows = [
                (5000 + serial + j, (serial + j) % 5, serial + j)
                for j in range(rng.randint(1, 3))
            ]
            serial += len(rows)
            live_a.extend(rows)
            cluster.insert("A", rows)
        elif roll < 0.75:
            victim = live_a.pop(rng.randrange(len(live_a)))
            cluster.delete("A", [victim])
        else:
            cluster.insert("B", [(100 + serial, rng.randrange(5), serial)])
            serial += 1


def _view_contents(cluster, name):
    """Per-node view rows in storage order — catches ordering divergence,
    not just multiset divergence."""
    return {
        node.node_id: node.scan(name)
        for node in cluster.nodes
        if node.has_fragment(name)
    }


def _assert_views_identical(shared, independent, names):
    for name in names:
        assert _view_contents(shared, name) == _view_contents(
            independent, name
        ), f"view contents diverge for {name!r}"
        assert (
            shared.catalog.view(name).row_count
            == independent.catalog.view(name).row_count
        )
        assert Counter(shared.view_rows(name)) == recompute_view(shared, name)


# ------------------------------------------------- shared vs independent


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("mode", ("eager", "deferred"))
def test_shared_matches_independent_serial(method, mode):
    deferred = mode == "deferred"
    shared = _build(method, shared=True, deferred_last=deferred)
    independent = _build(method, shared=False, deferred_last=deferred)
    _script(shared)
    _script(independent)
    if deferred:
        shared.catalog.view("JV2").maintainer.refresh()
        independent.catalog.view("JV2").maintainer.refresh()
    _assert_views_identical(shared, independent, ["JV0", "JV1", "JV2"])
    assert shared.multi_view_stats.statements > 0
    assert independent.multi_view_stats.statements == 0


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("strategy", ("auto", "sort_merge"))
def test_shared_matches_independent_other_strategies(method, strategy):
    shared = _build(method, shared=True, strategy=strategy)
    independent = _build(method, shared=False, strategy=strategy)
    _script(shared, seed=7)
    _script(independent, seed=7)
    _assert_views_identical(shared, independent, ["JV0", "JV1", "JV2"])


@pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("workers", (1, 2))
def test_shared_matches_independent_parallel(method, workers):
    shared = _build(method, shared=True, workers=workers)
    independent = _build(method, shared=False, workers=workers)
    try:
        _script(shared, seed=3)
        _script(independent, seed=3)
        _assert_views_identical(shared, independent, ["JV0", "JV1", "JV2"])
        assert shared.multi_view_stats.statements > 0
    finally:
        shared.close()
        independent.close()


# ----------------------------------------------------- charge attribution


@pytest.mark.parametrize("method", METHODS)
def test_shared_probes_billed_once(method):
    """Same-clause views: the group's join work is billed once — MAINTAIN
    charges match a SINGLE view's, while VIEW-tagged writes stay per view."""

    def run(shared, num_views):
        cluster = _build(method, shared=shared, num_views=num_views)
        return cluster, cluster.insert("A", [(9000, 2, 7), (9001, 4, 8)])

    _, single = run(shared=False, num_views=1)
    cluster, grouped = run(shared=True, num_views=3)

    for op in (Op.SEND, Op.SEARCH, Op.FETCH):
        assert grouped.op_count(op, tags=[Tag.MAINTAIN]) == single.op_count(
            op, tags=[Tag.MAINTAIN]
        ), f"shared group's MAINTAIN {op} differs from one view's"
    # View writes are per member: three views' worth of INSERTs.
    assert grouped.op_count(Op.INSERT, tags=[Tag.VIEW]) == 3 * single.op_count(
        Op.INSERT, tags=[Tag.VIEW]
    )
    stats = cluster.multi_view_stats
    assert stats.last_partition_passes == 1
    assert stats.partition_passes_per_statement == 1.0
    assert stats.probes_deduped > 0


def test_counters_prove_one_pass_per_statement():
    cluster = _build("auxiliary", shared=True, num_views=5)
    for i in range(6):
        cluster.insert("A", [(7000 + i, i % 5, i)])
    stats = cluster.multi_view_stats
    assert stats.statements == 6
    assert stats.partition_passes == 6
    assert stats.partition_passes_per_statement == 1.0
    # Each executed probe served 4 extra views.
    assert stats.probes_deduped == 4 * stats.probes_executed


def test_single_view_cluster_never_takes_shared_path():
    cluster = _build("auxiliary", shared=True, num_views=1)
    cluster.insert("A", [(9100, 1, 1)])
    assert cluster.multi_view_stats.statements == 0
    assert cluster.multi_view_stats.partition_passes == 0


# ------------------------------------------------------- mid-stream DDL


def test_create_and_drop_view_invalidate_shared_plan():
    shared = _build("auxiliary", shared=True, num_views=2)
    independent = _build("auxiliary", shared=False, num_views=2)
    for cluster in (shared, independent):
        cluster.insert("A", [(8000 + i, i % 5, i) for i in range(4)])
        # Mid-stream CREATE: the new view joins the group on the next
        # statement (its contents are backfilled at definition time).
        cluster.create_join_view(
            two_way_view(
                "JV_late", "A", "c", "B", "d",
                select=[("A", "e"), ("B", "f")],
                partitioning=HashPartitioning("e"),
            ),
            method="auxiliary",
            strategy="inl",
        )
        cluster.insert("A", [(8100 + i, i % 5, i) for i in range(4)])
        # Mid-stream DROP: the group shrinks; maintenance must not touch
        # the dropped view again.
        cluster.drop_view("JV1")
        cluster.insert("A", [(8200 + i, i % 5, i) for i in range(4)])
    _assert_views_identical(shared, independent, ["JV0", "JV_late"])
    assert "JV1" not in shared.catalog.views
    # Three views shared after the create, two after the drop.
    assert shared.multi_view_stats.last_partition_passes == 1


def test_views_differing_only_in_select_share_compiled_join():
    """Satellite: the optimizer keys compiled join fragments on the join
    clause, so projection-only variants share one CompiledJoin instance
    (and one layout/filter table) even in independent mode."""
    cluster = _build("auxiliary", shared=False, num_views=3)
    compiled = [
        cluster.catalog.view(f"JV{i}").maintainer.planner.compiled_for("A")
        for i in range(3)
    ]
    assert compiled[0].join is compiled[1].join is compiled[2].join
    assert compiled[0].mapper is not compiled[1].mapper
    # Mappers project differently even though the join is one object.
    assert compiled[0].mapper.to_view_row != compiled[1].mapper.to_view_row
    # DDL invalidates: a new catalog version gets a fresh compiled join.
    cluster.create_relation(Schema.of("C", "x"), partitioned_on="x")
    fresh = cluster.catalog.view("JV0").maintainer.planner.compiled_for("A")
    assert fresh.join is not compiled[0].join


# ------------------------------------------------------ aggregate views


def test_aggregate_view_shares_group_with_plain_sibling():
    shared = _build("auxiliary", shared=True, num_views=2)
    independent = _build("auxiliary", shared=False, num_views=2)
    spec = AggregateSpec(
        group_by=(("B", "d"),),
        aggregates=(
            Aggregate(AggregateFunction.COUNT, "n"),
            Aggregate(AggregateFunction.SUM, "total", source=("A", "e")),
        ),
    )
    for cluster in (shared, independent):
        define_aggregate_join_view(
            cluster,
            JoinViewDefinition(
                name="AGG",
                relations=("A", "B"),
                conditions=shared.catalog.view("JV0").definition.conditions,
                select=(("A", "e"), ("B", "d")),
            ),
            spec,
            method="auxiliary",
            strategy="inl",
        )
        _script(cluster, seed=5, steps=16)
    _assert_views_identical(shared, independent, ["JV0", "JV1"])
    assert sorted(aggregate_rows(shared, "AGG")) == sorted(
        aggregate_rows(independent, "AGG")
    )
    assert sorted(aggregate_rows(shared, "AGG")) == sorted(
        recompute_aggregate(shared, "AGG")
    )
    assert shared.multi_view_stats.statements > 0


# ------------------------- worker probe cache, cross-view invalidation


@pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)
def test_worker_probe_cache_partner_write_invalidates_for_all_views():
    """Satellite: the worker heavy-hitter cache keys slots on the physical
    structure (fragment, column, key) — never the view — so a B write-set
    touching a key promoted while maintaining view A's group must also be
    seen by view B's probes.  Both views share AR_B_d here; a stale entry
    would corrupt whichever view probes second."""
    cluster = _build(
        "auxiliary", shared=True, num_views=2, workers=1
    )
    try:
        # Promote key 3 past the worker cache threshold on AR_B_d.
        for i in range(8):
            cluster.insert("A", [(6000 + i, 3, i)])
        # Write the probed partner: new match + drop an old one for key 3.
        cluster.insert("B", [(97, 3, 999)])
        cluster.delete("B", [(3, 3, 103)])
        # Statements after the partner writes must see the new truth in
        # BOTH views, not just the one that populated the cache.
        cluster.insert("A", [(6100, 3, 100), (6101, 3, 101)])
        for name in ("JV0", "JV1"):
            assert Counter(cluster.view_rows(name)) == recompute_view(
                cluster, name
            )
        flat = [
            row for rows in _view_contents(cluster, "JV0").values()
            for row in rows
        ]
        assert any(999 in row for row in flat)
    finally:
        cluster.close()
