"""End-to-end integration tests across the whole stack."""

from collections import Counter

import pytest

from repro import (
    Cluster,
    HashPartitioning,
    MethodAdvisor,
    Schema,
    recompute_view,
    two_way_view,
)
from repro.core import BoundView
from repro.workloads import (
    TpcrGenerator,
    UpdateStream,
    jv1_definition,
    jv2_definition,
    load_into,
)


def test_tpcr_warehouse_with_three_views_mixed_methods():
    """The paper's full setting: one warehouse, JV1 and JV2 under different
    methods, plus a trimmed-AR view, all maintained through a stream of
    customer and orders updates."""
    cluster = Cluster(4)
    generator = TpcrGenerator(scale=0.002)
    load_into(cluster, generator.generate())
    cluster.create_join_view(jv1_definition(), method="auxiliary")
    cluster.create_join_view(jv2_definition(partitioned=False), method="naive")
    co_lite = two_way_view(
        "co_lite", "customer", "custkey", "orders", "custkey",
        select=[("customer", "acctbal"), ("orders", "totalprice")],
    )
    cluster.create_join_view(co_lite, method="global_index")

    delta = generator.new_customers(16, starting_at=300)
    cluster.insert("customer", delta)
    cluster.delete("customer", delta[:4])
    new_orders = [(10_000 + i, 301, 1.5 * i, "O") for i in range(5)]
    cluster.insert("orders", new_orders)
    cluster.update("orders", [(new_orders[0], (10_000, 302, 9.9, "F"))])

    for view in ("JV1", "JV2", "co_lite"):
        assert Counter(cluster.view_rows(view)) == recompute_view(cluster, view), view


def test_throughput_story_from_the_introduction():
    """The paper's motivating claim, measured: with a naive-maintained view
    the total workload of a localized single-tuple update explodes with
    cluster size; with ARs it stays flat."""
    def tw_for(method, num_nodes):
        cluster = Cluster(num_nodes)
        cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
        cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
        cluster.insert("B", [(i, i % 8, "f") for i in range(32)])
        cluster.create_join_view(
            two_way_view("JV", "A", "c", "B", "d",
                         partitioning=HashPartitioning("e")),
            method=method, strategy="inl",
        )
        return cluster.insert("A", [(1, 3, "x")]).maintenance_workload()

    naive_growth = tw_for("naive", 16) - tw_for("naive", 2)
    ar_growth = tw_for("auxiliary", 16) - tw_for("auxiliary", 2)
    assert naive_growth == 14.0  # one extra SEARCH per extra node
    assert ar_growth == 0.0


def test_advisor_recommendation_is_actually_best():
    """Close the loop: run all three methods on the advisor's scenario and
    check the advisor's pick has the lowest measured response time."""
    from repro.workloads.uniform import UniformJoinWorkload, build_cluster
    from repro.storage.pages import PageLayout

    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    workload = UniformJoinWorkload(num_keys=160, fanout=4, clustered=False)
    update_size = 64

    measured = {}
    for method in ("naive", "auxiliary", "global_index"):
        cluster = build_cluster(
            workload, num_nodes=8, method=method, strategy="auto", layout=layout
        )
        snapshot = cluster.insert("A", workload.a_rows(update_size))
        measured[method] = snapshot.maintenance_response_time()

    advisor_cluster = build_cluster(
        workload, num_nodes=8, method="naive", strategy="auto", layout=layout
    )
    bound = BoundView(
        workload.definition("advised"),
        {
            "A": advisor_cluster.catalog.relation("A").schema,
            "B": advisor_cluster.catalog.relation("B").schema,
        },
    )
    verdict = MethodAdvisor(advisor_cluster, bound).recommend(update_size)
    assert measured[verdict.method.value] == min(measured.values())


def test_mixed_stream_over_two_views():
    """A sustained random stream against AR and GI views stays consistent."""
    cluster = Cluster(3)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 4, "f") for i in range(16)])
    cluster.create_join_view(
        two_way_view("V1", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="auxiliary",
    )
    cluster.create_join_view(
        two_way_view("V2", "A", "c", "B", "d", select=[("A", "a"), ("B", "f")]),
        method="global_index",
    )
    stream = UpdateStream(
        "A",
        lambda i: (i, i % 4, f"e{i}"),
        mix=(0.6, 0.2, 0.2),
        update_row=lambda row, serial: (row[0], (row[1] + 1) % 4, row[2]),
        seed=5,
        batch_size=2,
    )
    for op in stream.ops(25):
        op.apply_to(cluster)
    assert Counter(cluster.view_rows("V1")) == recompute_view(cluster, "V1")
    assert Counter(cluster.view_rows("V2")) == recompute_view(cluster, "V2")


def test_storage_accounting_snapshot():
    cluster = Cluster(2)
    cluster.create_relation(Schema.of("A", "a", "c"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d"), partitioned_on="b")
    cluster.insert("B", [(i, i) for i in range(10)])
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"), method="auxiliary"
    )
    cluster.insert("A", [(1, 5)])
    usage = cluster.storage_tuples()
    assert usage == {
        "A": 1, "B": 10, "AR_A_c": 1, "AR_B_d": 10, "JV": 1,
    }
