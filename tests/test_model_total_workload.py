"""Tests for the closed-form TW model (paper §3.1.1, Figures 7-8)."""

import pytest

from repro.costs import CostParameters, Op
from repro.model import (
    ALL_VARIANTS,
    MethodVariant,
    ModelParameters,
    paper_scenario,
    savings_vs_naive,
    total_workload_ios,
    total_workload_ops,
)


def test_auxiliary_is_the_constant_three():
    for num_nodes in (1, 4, 32, 128):
        params = paper_scenario(num_nodes)
        assert total_workload_ios(MethodVariant.AUXILIARY, params) == 3.0


def test_gi_plateau_at_three_plus_n():
    """Figure 7's quoted constant 13 once L > N (N = 10)."""
    params = paper_scenario(128)
    assert total_workload_ios(MethodVariant.GI_NONCLUSTERED, params) == 13.0
    assert total_workload_ios(MethodVariant.GI_CLUSTERED, params) == 13.0


def test_gi_clustered_below_plateau_while_l_small():
    params = paper_scenario(4)  # K = min(10, 4) = 4
    assert total_workload_ios(MethodVariant.GI_CLUSTERED, params) == 7.0


def test_naive_grows_linearly_with_l():
    p32, p64 = paper_scenario(32), paper_scenario(64)
    assert (
        total_workload_ios(MethodVariant.NAIVE_CLUSTERED, p64)
        - total_workload_ios(MethodVariant.NAIVE_CLUSTERED, p32)
        == 32.0
    )
    assert total_workload_ios(MethodVariant.NAIVE_NONCLUSTERED, p32) == 42.0


def test_op_counts_match_paper_formulas():
    params = ModelParameters(num_nodes=8, fanout=5)
    ops = total_workload_ops(MethodVariant.NAIVE_NONCLUSTERED, params)
    assert ops == {Op.SEND: 8 + 5, Op.SEARCH: 8, Op.FETCH: 5}
    ops = total_workload_ops(MethodVariant.AUXILIARY, params)
    assert ops == {Op.INSERT: 1, Op.SEND: 2, Op.SEARCH: 1}
    ops = total_workload_ops(MethodVariant.GI_CLUSTERED, params)
    assert ops == {Op.INSERT: 1, Op.SEND: 1 + 2 * 5, Op.SEARCH: 1, Op.FETCH: 5}


def test_send_weight_sensitivity():
    """With billed sends, the naive method gets even worse relative to AR."""
    costs = CostParameters(send_ios=0.5)
    params = ModelParameters(num_nodes=16, fanout=10, costs=costs)
    naive = total_workload_ios(MethodVariant.NAIVE_CLUSTERED, params)
    ar = total_workload_ios(MethodVariant.AUXILIARY, params)
    assert naive == 16 + 0.5 * (16 + 10)
    assert ar == 3 + 0.5 * 2


def test_savings_grow_with_l():
    small = savings_vs_naive(MethodVariant.AUXILIARY, paper_scenario(4))
    large = savings_vs_naive(MethodVariant.AUXILIARY, paper_scenario(64))
    assert large > small > 0


def test_gi_between_naive_and_ar_in_fanout():
    """Figure 8: GI ~ AR for N = 1, GI ~ naive for N = 100 (L = 32)."""
    low = paper_scenario(32).with_fanout(1.0)
    high = paper_scenario(32).with_fanout(100.0)
    gi_low = total_workload_ios(MethodVariant.GI_NONCLUSTERED, low)
    ar_low = total_workload_ios(MethodVariant.AUXILIARY, low)
    naive_low = total_workload_ios(MethodVariant.NAIVE_NONCLUSTERED, low)
    assert abs(gi_low - ar_low) < abs(gi_low - naive_low)
    gi_high = total_workload_ios(MethodVariant.GI_NONCLUSTERED, high)
    ar_high = total_workload_ios(MethodVariant.AUXILIARY, high)
    naive_high = total_workload_ios(MethodVariant.NAIVE_NONCLUSTERED, high)
    assert abs(gi_high - naive_high) < abs(gi_high - ar_high)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ModelParameters(num_nodes=0)
    with pytest.raises(ValueError):
        ModelParameters(num_nodes=1, fanout=-1)
    with pytest.raises(ValueError):
        ModelParameters(num_nodes=1, partner_pages=-1)
    with pytest.raises(ValueError):
        ModelParameters(num_nodes=1, memory_pages=1)


def test_spread_is_min_n_l():
    assert ModelParameters(num_nodes=4, fanout=10).spread == 4.0
    assert ModelParameters(num_nodes=64, fanout=10).spread == 10.0


def test_with_nodes_and_with_fanout_copy():
    params = paper_scenario(4)
    assert params.with_nodes(8).num_nodes == 8
    assert params.with_nodes(8).fanout == params.fanout
    assert params.with_fanout(3.0).fanout == 3.0
    assert params.with_fanout(3.0).num_nodes == 4


def test_all_variants_cover_enum():
    assert set(ALL_VARIANTS) == set(MethodVariant)
