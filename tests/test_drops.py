"""Tests for DROP VIEW / DROP auxiliary structure support."""

from collections import Counter

import pytest

from repro import recompute_view, two_way_view
from tests.conftest import make_view


def test_drop_view_removes_storage_and_registration(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.drop_view("JV")
    assert "JV" not in ab_cluster.catalog.views
    assert not any(node.has_fragment("JV") for node in ab_cluster.nodes)
    # Updates no longer pay any view maintenance.
    snapshot = ab_cluster.insert("A", [(2, 3, "y")])
    # AR co-updates remain (structures still exist) but no probes happen.
    from repro import Op, Tag

    assert snapshot.op_count(Op.SEARCH, tags=[Tag.MAINTAIN]) == 0


def test_drop_view_releases_structures(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    aux = ab_cluster.catalog.auxiliary("AR_B_d")
    assert aux.serves_views == ["JV"]
    ab_cluster.drop_view("JV")
    assert aux.serves_views == []
    ab_cluster.drop_auxiliary_relation("AR_B_d")
    assert "AR_B_d" not in ab_cluster.catalog.auxiliaries
    assert not any(node.has_fragment("AR_B_d") for node in ab_cluster.nodes)


def test_drop_auxiliary_in_use_refused(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    with pytest.raises(ValueError, match="still serves"):
        ab_cluster.drop_auxiliary_relation("AR_B_d")
    ab_cluster.drop_auxiliary_relation("AR_B_d", force=True)
    assert "AR_B_d" not in ab_cluster.catalog.auxiliaries


def test_drop_global_index(ab_cluster):
    make_view(ab_cluster, "global_index")
    with pytest.raises(ValueError, match="still serves"):
        ab_cluster.drop_global_index("GI_B_d")
    ab_cluster.drop_view("JV")
    ab_cluster.drop_global_index("GI_B_d")
    ab_cluster.drop_global_index("GI_A_c")
    assert ab_cluster.catalog.global_indexes == {}


def test_shared_structure_survives_one_view_drop(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.create_join_view(
        two_way_view("JV2", "A", "c", "B", "d", select=[("A", "a")]),
        method="auxiliary",
    )
    ab_cluster.drop_view("JV")
    aux = ab_cluster.catalog.auxiliary("AR_B_d")
    assert aux.serves_views == ["JV2"]
    # The surviving view still maintains correctly.
    ab_cluster.insert("A", [(1, 2, "x")])
    assert Counter(ab_cluster.view_rows("JV2")) == recompute_view(ab_cluster, "JV2")


def test_recreate_after_drop(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.drop_view("JV")
    make_view(ab_cluster, "auxiliary")
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")
    assert len(ab_cluster.view_rows("JV")) == 4


def test_drop_unknown_view_raises(ab_cluster):
    with pytest.raises(KeyError):
        ab_cluster.drop_view("nope")
