"""Statement atomicity: a failing statement must leave no partial state."""

from collections import Counter

import pytest

from repro import recompute_view
from tests.conftest import make_view


def snapshot_state(cluster):
    state = {
        name: Counter(cluster.scan_relation(name))
        for name in list(cluster.catalog.relations)
        + list(cluster.catalog.auxiliaries)
        + list(cluster.catalog.views)
    }
    for gi_name in cluster.catalog.global_indexes:
        entries = []
        for node in cluster.nodes:
            for key, grids in node.gi_partition(gi_name).items():
                entries.extend((key, grid) for grid in grids)
        state[gi_name] = Counter(entries)
    return state


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_failed_delete_batch_rolls_back(ab_cluster, method):
    make_view(ab_cluster, method)
    ab_cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    before = snapshot_state(ab_cluster)
    with pytest.raises(KeyError, match="rolled back"):
        # First victim exists, second does not: nothing may change.
        ab_cluster.delete("A", [(1, 2, "x"), (99, 99, "nope")])
    assert snapshot_state(ab_cluster) == before
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")


def test_duplicate_deletes_validated_by_multiplicity(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    before = snapshot_state(ab_cluster)
    with pytest.raises(KeyError, match="holds 1"):
        ab_cluster.delete("A", [(1, 2, "x"), (1, 2, "x")])
    assert snapshot_state(ab_cluster) == before
    # Two copies present -> the same statement succeeds.
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.delete("A", [(1, 2, "x"), (1, 2, "x")])
    assert ab_cluster.scan_relation("A") == []


def test_failed_update_rolls_back(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    before = snapshot_state(ab_cluster)
    with pytest.raises(KeyError):
        ab_cluster.update("A", [((9, 9, "missing"), (9, 9, "new"))])
    assert snapshot_state(ab_cluster) == before


def test_malformed_insert_rejected_before_mutation(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    before = snapshot_state(ab_cluster)
    with pytest.raises(Exception):
        ab_cluster.insert("A", [(1, 2, "ok"), (1, 2)])  # wrong arity second
    assert snapshot_state(ab_cluster) == before


def test_validation_is_uncharged(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    ledger_before = ab_cluster.ledger.snapshot()
    with pytest.raises(KeyError):
        ab_cluster.delete("A", [(5, 5, "none")])
    assert ab_cluster.ledger.diff_since(ledger_before).total_workload() == 0.0
