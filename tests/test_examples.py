"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
