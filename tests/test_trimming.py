"""Tests for repro.core.trimming (§2.1.2 storage minimization)."""

import pytest

from repro.core.trimming import (
    AuxiliaryRequirement,
    merge_requirements,
    requirement_for,
    trimming_savings,
)
from repro.core.view import BoundView, JoinCondition, JoinViewDefinition, two_way_view
from repro.storage.schema import Schema

A = Schema.of("A", "c", "e", "f", "g")
B = Schema.of("B", "d", "h")
C = Schema.of("C", "q", "p")


def test_requirement_follows_paper_jv1_example():
    """Paper: JV1 selects A.e, A.f, B.h on A.c=B.d -> AR_A1 keeps c, e, f."""
    definition = two_way_view(
        "JV1", "A", "c", "B", "d",
        select=[("A", "e"), ("A", "f"), ("B", "h")],
    )
    bound = BoundView(definition, {"A": A, "B": B})
    requirement = requirement_for(bound, "A", "c")
    assert set(requirement.needed_columns) == {"c", "e", "f"}
    assert requirement.view == "JV1"


def test_requirement_follows_paper_jv2_example():
    """Paper: JV2 selects A.e, A.g, C.p on A.c=C.q -> AR_A2 keeps c, e, g."""
    definition = JoinViewDefinition(
        "JV2", ("A", "C"), (JoinCondition("A", "c", "C", "q"),),
        select=(("A", "e"), ("A", "g"), ("C", "p")),
    )
    bound = BoundView(definition, {"A": A, "C": C})
    requirement = requirement_for(bound, "A", "c")
    assert set(requirement.needed_columns) == {"c", "e", "g"}


def test_merge_requirements_unions_columns():
    """The shared AR_A of the paper's two views keeps c, e, f, g."""
    r1 = AuxiliaryRequirement("A", "c", ("c", "e", "f"), "JV1")
    r2 = AuxiliaryRequirement("A", "c", ("c", "e", "g"), "JV2")
    assert merge_requirements([r1, r2]) == ("c", "e", "f", "g")


def test_merge_requirements_rejects_mixed_targets():
    r1 = AuxiliaryRequirement("A", "c", ("c",), "JV1")
    r2 = AuxiliaryRequirement("B", "d", ("d",), "JV2")
    with pytest.raises(ValueError, match="different auxiliary"):
        merge_requirements([r1, r2])


def test_merge_requirements_empty():
    with pytest.raises(ValueError, match="no requirements"):
        merge_requirements([])


def test_trimming_savings():
    assert trimming_savings(4, 100, ("c", "e")) == pytest.approx(0.5)
    assert trimming_savings(4, 100, ("c", "e", "f", "g")) == 0.0


def test_trimming_savings_validation():
    with pytest.raises(ValueError):
        trimming_savings(0, 10, ())
    with pytest.raises(ValueError):
        trimming_savings(2, 10, ("a", "b", "c"))


def test_join_column_always_kept():
    definition = two_way_view("JV", "A", "c", "B", "d", select=[("B", "h")])
    bound = BoundView(definition, {"A": A, "B": B})
    requirement = requirement_for(bound, "A", "c")
    assert requirement.needed_columns == ("c",)
