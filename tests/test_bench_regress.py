"""Latency regression gate (repro.bench.regress)."""

import json

import pytest

from repro.bench import regress
from repro.bench.regress import (
    compare,
    extract_configs,
    freeze_baseline,
    inject_regression,
)


def _report():
    """A fabricated two-config latency report in BENCH_PERF.json shape."""
    def entry(name, scale):
        return {
            "name": name,
            "service": {
                "p50": 0.010 * scale,
                "p95": 0.040 * scale,
                "p99": 0.080 * scale,
                "max": 0.200 * scale,
                "mean": 0.015 * scale,
            },
            "knee_rate": 1000.0 / scale,
        }

    return {
        "schema_version": 6,
        "latency": {
            "knee_factor": 8.0,
            "config": {},
            "configs": [entry("naive-eager-w0", 1.0),
                        entry("auxiliary-eager-w0", 0.5)],
        },
    }


# -------------------------------------------------------------- extraction


def test_extract_accepts_all_three_shapes():
    report = _report()
    from_full = extract_configs(report)
    from_section = extract_configs(report["latency"])
    assert from_full == from_section
    assert set(from_full) == {"naive-eager-w0", "auxiliary-eager-w0"}
    assert from_full["naive-eager-w0"]["p99"] == 0.080
    baseline = freeze_baseline(report)
    assert extract_configs(baseline) == from_full


def test_extract_rejects_shapeless_documents():
    with pytest.raises(ValueError):
        extract_configs({"nothing": "here"})


def test_freeze_embeds_thresholds():
    baseline = freeze_baseline(_report(), rel_threshold=0.3, noise_floor=0.001)
    assert baseline["kind"] == "latency-baseline"
    assert baseline["schema_version"] == 6
    assert baseline["rel_threshold"] == 0.3
    assert baseline["noise_floor_seconds"] == 0.001


# -------------------------------------------------------------- comparison


def test_identical_documents_are_clean():
    configs = extract_configs(_report())
    assert compare(configs, configs) == []


def test_jitter_below_both_slacks_is_clean():
    baseline = extract_configs(_report())
    candidate = {
        name: {
            key: value * 1.4 if key in regress.GATED_QUANTILES else value
            for key, value in stats.items()
        }
        for name, stats in baseline.items()
    }
    assert compare(baseline, candidate, rel_threshold=0.5) == []
    # Tiny absolute drift on a microsecond-scale config: the noise floor
    # forgives what the relative slack alone would flag.
    small = {"tiny": {"p50": 0.0001, "p95": 0.0002, "p99": 0.0003,
                      "max": 0.0004, "mean": 0.0001, "knee_rate": None}}
    shifted = {"tiny": dict(small["tiny"], p99=0.0003 * 3)}
    assert compare(small, shifted, rel_threshold=0.5, noise_floor=0.002) == []
    assert compare(small, shifted, rel_threshold=0.5, noise_floor=0.0) != []


def test_quantile_regression_is_flagged():
    baseline = extract_configs(_report())
    candidate = {name: dict(stats) for name, stats in baseline.items()}
    candidate["naive-eager-w0"]["p99"] *= 4.0
    problems = compare(baseline, candidate)
    assert len(problems) == 1
    assert "naive-eager-w0" in problems[0] and "p99" in problems[0]


def test_missing_config_is_flagged():
    baseline = extract_configs(_report())
    candidate = dict(baseline)
    del candidate["auxiliary-eager-w0"]
    problems = compare(baseline, candidate)
    assert any("missing from candidate" in p for p in problems)
    # The reverse — a new config in the candidate — is not a regression.
    extra = dict(baseline)
    extra["brand-new-w0"] = baseline["naive-eager-w0"]
    assert compare(baseline, extra) == []


def test_knee_regression_is_flagged():
    baseline = extract_configs(_report())
    candidate = {name: dict(stats) for name, stats in baseline.items()}
    candidate["naive-eager-w0"]["knee_rate"] = 100.0  # was 1000
    problems = compare(baseline, candidate)
    assert any("knee" in p for p in problems)
    # Within the relative slack: 700 >= 1000 / 1.5.
    candidate["naive-eager-w0"]["knee_rate"] = 700.0
    assert compare(baseline, candidate) == []


def test_inject_regression_is_seeded_and_detectable():
    configs = extract_configs(_report())
    first = inject_regression(configs)
    second = inject_regression(configs)
    assert first == second  # seeded: same victim, same damage
    assert first != configs
    assert compare(configs, first) != []
    with pytest.raises(ValueError):
        inject_regression({})


# --------------------------------------------------------------------- CLI


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def test_cli_freeze_then_clean_gate(tmp_path, capsys):
    candidate = _write(tmp_path, "perf.json", _report())
    baseline = tmp_path / "baseline.json"
    assert regress.main(
        ["--freeze", str(baseline), "--candidate", str(candidate)]
    ) == 0
    assert regress.main(
        ["--baseline", str(baseline), "--candidate", str(candidate)]
    ) == 0
    out = capsys.readouterr().out
    assert "froze 2 config(s)" in out
    assert "clean" in out


def test_cli_detects_regression(tmp_path, capsys):
    good = _report()
    candidate = _write(tmp_path, "perf.json", good)
    baseline = tmp_path / "baseline.json"
    regress.main(["--freeze", str(baseline), "--candidate", str(candidate)])
    bad = _report()
    bad["latency"]["configs"][0]["service"]["p99"] *= 10
    regressed = _write(tmp_path, "bad.json", bad)
    assert regress.main(
        ["--baseline", str(baseline), "--candidate", str(regressed)]
    ) == 1
    assert "latency regression" in capsys.readouterr().err


def test_cli_self_test_proves_gate_has_teeth(tmp_path, capsys):
    candidate = _write(tmp_path, "perf.json", _report())
    baseline = tmp_path / "baseline.json"
    regress.main(["--freeze", str(baseline), "--candidate", str(candidate)])
    assert regress.main(
        ["--baseline", str(baseline), "--candidate", str(candidate),
         "--self-test"]
    ) == 0
    assert "self-test ok" in capsys.readouterr().out


def test_cli_missing_files_exit_2(tmp_path):
    assert regress.main(
        ["--candidate", str(tmp_path / "absent.json")]
    ) == 2
    candidate = _write(tmp_path, "perf.json", _report())
    assert regress.main(
        ["--baseline", str(tmp_path / "absent.json"),
         "--candidate", str(candidate)]
    ) == 2


def test_cli_threshold_overrides_baseline(tmp_path, capsys):
    candidate = _write(tmp_path, "perf.json", _report())
    baseline = tmp_path / "baseline.json"
    regress.main(["--freeze", str(baseline), "--candidate", str(candidate)])
    drifted = _report()
    drifted["latency"]["configs"][0]["service"]["p99"] *= 1.4
    drifted_path = _write(tmp_path, "drift.json", drifted)
    # Clean under the frozen 50% slack, flagged when tightened to 5%.
    assert regress.main(
        ["--baseline", str(baseline), "--candidate", str(drifted_path)]
    ) == 0
    assert regress.main(
        ["--baseline", str(baseline), "--candidate", str(drifted_path),
         "--rel-threshold", "0.05", "--noise-floor", "0"]
    ) == 1
    capsys.readouterr()


def test_committed_baseline_gates_committed_report():
    """The CI invocation: repo-root BENCH_BASELINE.json vs BENCH_PERF.json
    must be clean (they are frozen from the same run)."""
    baseline_path = regress.default_baseline_path()
    candidate_path = regress.default_candidate_path()
    assert baseline_path.exists(), "BENCH_BASELINE.json must be committed"
    assert candidate_path.exists()
    assert regress.main([]) == 0
