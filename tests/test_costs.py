"""Unit tests for repro.costs (model, ledger, report)."""

import pytest

from repro.costs import (
    CostLedger,
    CostParameters,
    NETWORK_AWARE_COSTS,
    Op,
    PAPER_COSTS,
    Tag,
    ascii_table,
    format_snapshot,
    tags_legend,
)


def test_paper_weights():
    assert PAPER_COSTS.weight(Op.SEND) == 0.0
    assert PAPER_COSTS.weight(Op.SEARCH) == 1.0
    assert PAPER_COSTS.weight(Op.FETCH) == 1.0
    assert PAPER_COSTS.weight(Op.INSERT) == 2.0


def test_network_aware_weights_bill_sends():
    assert NETWORK_AWARE_COSTS.weight(Op.SEND) > 0


def test_charge_and_total_workload():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    ledger.charge(1, Op.INSERT, Tag.MAINTAIN)
    snapshot = ledger.snapshot()
    assert snapshot.total_workload() == 3.0  # 1 search + 1 insert(2)


def test_response_time_is_busiest_node():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN, count=5)
    ledger.charge(1, Op.SEARCH, Tag.MAINTAIN, count=2)
    assert ledger.snapshot().response_time() == 5.0


def test_response_time_empty():
    assert CostLedger().snapshot().response_time() == 0.0


def test_tag_filtering():
    ledger = CostLedger()
    ledger.charge(0, Op.INSERT, Tag.BASE)
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    ledger.charge(0, Op.INSERT, Tag.VIEW)
    snapshot = ledger.snapshot()
    assert snapshot.maintenance_workload() == 1.0
    assert snapshot.total_workload([Tag.BASE, Tag.VIEW]) == 4.0
    assert snapshot.total_workload() == 5.0


def test_op_count_and_breakdown():
    ledger = CostLedger()
    ledger.charge(0, Op.FETCH, Tag.MAINTAIN, count=3)
    ledger.charge(1, Op.FETCH, Tag.VIEW, count=2)
    snapshot = ledger.snapshot()
    assert snapshot.op_count(Op.FETCH) == 5
    assert snapshot.op_count(Op.FETCH, tags=[Tag.MAINTAIN]) == 3
    assert snapshot.op_breakdown()[Op.FETCH] == 5


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        CostLedger().charge(0, Op.SEND, Tag.MAINTAIN, count=-1)


def test_zero_charge_is_noop():
    ledger = CostLedger()
    ledger.charge(0, Op.SEND, Tag.MAINTAIN, count=0)
    assert ledger.snapshot().cells == {}


def test_diff_since():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    before = ledger.snapshot()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN, count=4)
    diff = ledger.diff_since(before)
    assert diff.total_workload() == 4.0


def test_measure_context_manager():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    with ledger.measure() as measured:
        ledger.charge(1, Op.INSERT, Tag.MAINTAIN)
    assert measured.snapshot.total_workload() == 2.0
    assert measured.snapshot.per_node_ios() == {1: 2.0}


def test_reset():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    ledger.reset()
    assert ledger.snapshot().total_workload() == 0.0


def test_custom_weights_change_workload():
    ledger = CostLedger(CostParameters(search_ios=10.0))
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    assert ledger.snapshot().total_workload() == 10.0


def test_format_snapshot_mentions_tw():
    ledger = CostLedger()
    ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
    text = format_snapshot(ledger.snapshot(), title="t")
    assert "TW (maintenance)" in text
    assert "search" in text


def test_ascii_table_alignment():
    table = ascii_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "2.50" in table
    assert lines[1].startswith("-")


def test_tags_legend_lists_all_tags():
    legend = tags_legend()
    for tag in Tag:
        assert tag.value in legend


def test_diff_insertion_order_is_sorted():
    """Regression: CostSnapshot.diff iterated a raw set union, so the
    returned dict's insertion order depended on the per-process hash seed
    (found by REP002).  The order must be sorted (node, op, tag)."""
    left = CostLedger()
    right = CostLedger()
    left.charge(3, Op.INSERT, Tag.VIEW, 2)
    left.charge(0, Op.SEND, Tag.MAINTAIN, 5)
    left.charge(1, Op.SEARCH, Tag.BASE, 1)
    right.charge(2, Op.FETCH, Tag.QUERY, 4)
    right.charge(0, Op.SEND, Tag.MAINTAIN, 1)
    diff = left.diff(right)
    keys = list(diff)
    assert keys == sorted(keys, key=lambda c: (c[0], c[1].name, c[2].name))
    assert diff[(0, Op.SEND, Tag.MAINTAIN)] == 4.0
    assert diff[(2, Op.FETCH, Tag.QUERY)] == -4.0
