"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster.network import Network
from repro.costs import CostLedger, CostParameters, Op, Tag


@pytest.fixture
def network():
    return Network(4, CostLedger(CostParameters(send_ios=1.0)))


def test_send_charges_sender(network):
    network.send(0, 2)
    snapshot = network.ledger.snapshot()
    assert snapshot.per_node_ios() == {0: 1.0}
    assert network.stats.messages == 1
    assert network.stats.by_link[(0, 2)] == 1


def test_self_send_is_free(network):
    network.send(1, 1)
    assert network.ledger.snapshot().total_workload() == 0.0
    assert network.stats.messages == 0
    assert network.stats.local_deliveries == 1


def test_broadcast_charges_all_destinations(network):
    destinations = list(network.broadcast(0))
    assert destinations == [0, 1, 2, 3]
    # Paper: a broadcast costs L sends, self-delivery included.
    assert network.ledger.snapshot().op_count(Op.SEND) == 4


def test_send_validates_nodes(network):
    with pytest.raises(ValueError):
        network.send(0, 9)
    with pytest.raises(ValueError):
        network.send(-1, 0)


def test_tag_passthrough(network):
    network.send(0, 1, Tag.VIEW)
    assert network.ledger.snapshot().total_workload([Tag.VIEW]) == 1.0
    assert network.ledger.snapshot().maintenance_workload() == 0.0


def test_reset_stats(network):
    network.send(0, 1)
    network.reset_stats()
    assert network.stats.messages == 0
    assert network.stats.by_link == {}
