"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster.network import Network
from repro.costs import CostLedger, CostParameters, Op, Tag


@pytest.fixture
def network():
    return Network(4, CostLedger(CostParameters(send_ios=1.0)))


def test_send_charges_sender(network):
    network.send(0, 2)
    snapshot = network.ledger.snapshot()
    assert snapshot.per_node_ios() == {0: 1.0}
    assert network.stats.messages == 1
    assert network.stats.by_link[(0, 2)] == 1


def test_self_send_is_free(network):
    network.send(1, 1)
    assert network.ledger.snapshot().total_workload() == 0.0
    assert network.stats.messages == 0
    assert network.stats.local_deliveries == 1


def test_broadcast_charges_all_destinations(network):
    destinations = list(network.broadcast(0))
    assert destinations == [0, 1, 2, 3]
    # Paper: a broadcast costs L sends, self-delivery included.
    assert network.ledger.snapshot().op_count(Op.SEND) == 4


def test_send_validates_nodes(network):
    with pytest.raises(ValueError):
        network.send(0, 9)
    with pytest.raises(ValueError):
        network.send(-1, 0)


def test_tag_passthrough(network):
    network.send(0, 1, Tag.VIEW)
    assert network.ledger.snapshot().total_workload([Tag.VIEW]) == 1.0
    assert network.ledger.snapshot().maintenance_workload() == 0.0


def test_reset_stats(network):
    network.send(0, 1)
    network.reset_stats()
    assert network.stats.messages == 0
    assert network.stats.by_link == {}


def test_by_link_counts_each_directed_link(network):
    network.send(0, 1)
    network.send(0, 1)
    network.send(1, 0)
    network.send(2, 3, Tag.VIEW)
    network.send(3, 3)  # local: never in by_link
    assert network.stats.by_link == {(0, 1): 2, (1, 0): 1, (2, 3): 1}
    assert network.stats.messages == 4
    assert network.stats.local_deliveries == 1


def test_reset_stats_clears_fault_counters(network):
    from repro.faults import FaultInjector, FaultPlan

    network.injector = FaultInjector(FaultPlan().drop(times=1).duplicate(times=1))
    network.max_retries = 3
    network.send(0, 1)  # dropped once, then retried
    network.send(0, 2)  # duplicated
    stats = network.stats
    assert (stats.drops, stats.retries, stats.duplicates) == (1, 1, 1)
    assert stats.backoff_slots > 0
    network.reset_stats()
    assert network.stats.drops == 0
    assert network.stats.retries == 0
    assert network.stats.duplicates == 0
    assert network.stats.backoff_slots == 0.0
    assert network.stats.by_link == {}


def test_dropped_message_retries_and_charges_every_attempt(network):
    from repro.faults import FaultInjector, FaultPlan

    network.injector = FaultInjector(FaultPlan().drop(times=2))
    network.max_retries = 3
    deliveries = network.send(0, 1)
    assert deliveries == 1
    # Two lost attempts + the successful third: three SENDs on the wire.
    assert network.ledger.snapshot().op_count(Op.SEND) == 3
    assert network.stats.retries == 2
    # Seeded jittered backoff: raw slots are 1 then 2, each drawn down into
    # [raw * (1 - jitter), raw] by the same deterministic stream.
    from repro.faults import BackoffState

    reference = BackoffState()
    expected = reference.slots(1) + reference.slots(2)
    assert network.stats.backoff_slots == pytest.approx(expected)
    assert 3.0 * (1 - network.backoff.policy.jitter) <= expected <= 3.0
    # The wait is charged to the ledger as BACKOFF slots at the sender.
    assert network.ledger.snapshot().op_count(Op.BACKOFF) == pytest.approx(expected)


def test_backoff_deterministic_capped_and_seeded():
    from repro.faults import BackoffPolicy, BackoffState

    policy = BackoffPolicy(base=2.0, cap=4.0, jitter=0.5)
    first = BackoffState(policy, seed=7)
    second = BackoffState(policy, seed=7)
    slots_a = [first.slots(n) for n in range(1, 8)]
    slots_b = [second.slots(n) for n in range(1, 8)]
    assert slots_a == slots_b  # same seed, same stream
    for attempt, slot in enumerate(slots_a, start=1):
        raw = min(policy.cap, policy.base ** (attempt - 1))
        assert raw * (1 - policy.jitter) <= slot <= raw
    # Deep retries saturate at the cap instead of exploding.
    assert all(slot <= policy.cap for slot in slots_a)
    other_seed = BackoffState(policy, seed=8)
    assert [other_seed.slots(n) for n in range(1, 8)] != slots_a


def test_drops_beyond_budget_raise_message_lost(network):
    from repro.faults import FaultInjector, FaultPlan, MessageLost

    network.injector = FaultInjector(FaultPlan().drop(times=5))
    network.max_retries = 1
    with pytest.raises(MessageLost):
        network.send(0, 1)
    # Both attempts (original + one retry) were charged.
    assert network.ledger.snapshot().op_count(Op.SEND) == 2


def test_duplicate_charges_two_sends_and_dedups(network):
    from repro.faults import FaultInjector, FaultPlan

    network.injector = FaultInjector(FaultPlan().duplicate(times=1))
    assert network.send(0, 1) == 1  # dedup on: one delivery reported
    assert network.ledger.snapshot().op_count(Op.SEND) == 2
    assert network.stats.messages == 2  # both copies crossed the wire


def test_duplicate_without_dedup_reports_two_deliveries(network):
    from repro.faults import FaultInjector, FaultPlan

    network.injector = FaultInjector(FaultPlan().duplicate(times=1))
    network.dedup = False
    assert network.send(0, 1) == 2


def test_send_to_crashed_node_fails_fast(network):
    from repro.faults import FaultInjector, FaultPlan, NodeDown

    injector = FaultInjector(FaultPlan())
    injector.crash(2)
    network.injector = injector
    with pytest.raises(NodeDown):
        network.send(0, 2)
    # The attempt went on the wire before bouncing: charged.
    assert network.ledger.snapshot().op_count(Op.SEND) == 1
    with pytest.raises(NodeDown):
        network.send(2, 0)  # a dead sender sends nothing
    assert network.ledger.snapshot().op_count(Op.SEND) == 1
