"""Parallel worker-pool engine ↔ serial engines equivalence.

ISSUE 3's acceptance bar: a cluster running with ``workers=W`` (fork-based
node-worker pool, BSP supersteps, deterministic ledger merge, heavy-hitter
probe cache) must produce **byte-identical** ledger cells, network
statistics, and fragment contents (per node, in storage order) compared to
the serial batched engine — which PR 2's suite already pins to the
tuple-at-a-time reference engine.  A direct reference-engine comparison is
included as well, so the chain does not depend on transitivity alone.

Worker counts come from ``REPRO_PARALLEL_WORKERS`` (comma-separated,
default ``1,3``) so CI can pin the matrix to its core budget.
"""

import os
import random

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.cluster.parallel import fork_available, shard_ranges
from repro.cluster.partitioning import RoundRobinPartitioning
from repro.core.deferred import defer_view
from repro.core.view import JoinCondition, JoinViewDefinition
from repro.costs.ledger import format_cell_diff

WORKER_COUNTS = tuple(
    int(token)
    for token in os.environ.get("REPRO_PARALLEL_WORKERS", "1,3").split(",")
    if token.strip()
)
METHODS = ("naive", "auxiliary", "global_index", "hybrid")
STRATEGIES = ("inl", "sort_merge", "auto")

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)


def _network_state(cluster):
    stats = cluster.network.stats
    return (
        stats.messages,
        stats.local_deliveries,
        dict(stats.by_link),
        stats.drops,
        stats.duplicates,
        stats.retries,
        stats.backoff_slots,
    )


def _fragment_contents(cluster, name):
    """Per-node fragment rows *in storage order* — catches replay
    reordering, not just multiset divergence."""
    return {
        node.node_id: node.scan(name)
        for node in cluster.nodes
        if node.has_fragment(name)
    }


def assert_equivalent(parallel, serial, names):
    cell_diff = parallel.ledger.diff(serial.ledger)
    assert not cell_diff, (
        "parallel vs serial ledger cells diverge "
        f"(parallel - serial):\n{format_cell_diff(cell_diff)}"
    )
    assert _network_state(parallel) == _network_state(serial)
    for name in names:
        assert _fragment_contents(parallel, name) == _fragment_contents(
            serial, name
        ), f"fragment contents diverge for {name!r}"
    for view_name, info in parallel.catalog.views.items():
        assert info.row_count == serial.catalog.view(view_name).row_count


def _build(
    method,
    strategy,
    workers,
    batch=True,
    partitioning=None,
    num_nodes=4,
    probe_cache_threshold=3,
):
    cluster = Cluster(
        num_nodes=num_nodes,
        batch_execution=batch,
        workers=workers,
        probe_cache_threshold=probe_cache_threshold,
    )
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view(
            "JV", "A", "c", "B", "d",
            partitioning=partitioning or HashPartitioning("e"),
        ),
        method=method,
        strategy=strategy,
    )
    return cluster


def _script(seed, steps=40, keys=7):
    rng = random.Random(seed)
    ops = []
    serial = 0
    live = {"A": [], "B": []}
    for _ in range(steps):
        kind = rng.choice(("ins", "ins", "ins", "del", "upd", "multi"))
        rel = rng.choice(("A", "B"))
        if kind == "ins":
            row = (1000 + serial, rng.randrange(keys), serial)
            serial += 1
            live[rel].append(row)
            ops.append(("insert", rel, [row]))
        elif kind == "multi":
            rows = []
            for _ in range(rng.randrange(2, 6)):
                rows.append((1000 + serial, rng.randrange(keys), serial))
                serial += 1
            live[rel].extend(rows)
            ops.append(("insert", rel, rows))
        elif kind == "del" and live[rel]:
            row = live[rel].pop(rng.randrange(len(live[rel])))
            ops.append(("delete", rel, [row]))
        elif kind == "upd" and live[rel]:
            old = live[rel].pop(rng.randrange(len(live[rel])))
            new = (1000 + serial, rng.randrange(keys), serial)
            serial += 1
            live[rel].append(new)
            ops.append(("update", rel, [(old, new)]))
    return ops


def _run(cluster, ops):
    for kind, rel, payload in ops:
        if kind == "insert":
            cluster.insert(rel, payload)
        elif kind == "delete":
            cluster.delete(rel, payload)
        else:
            cluster.update(rel, payload)


# ----------------------------------------------------------------- sharding


def test_shard_ranges_cover_and_balance():
    for num_nodes in (1, 3, 4, 7, 16):
        for workers in (1, 2, 3, 5, 16, 40):
            ranges = shard_ranges(num_nodes, workers)
            flat = [n for lo, hi in ranges for n in range(lo, hi)]
            assert flat == list(range(num_nodes))
            sizes = [hi - lo for lo, hi in ranges]
            assert max(sizes) - min(sizes) <= 1


# -------------------------------------------------------------- equivalence


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_two_way_equivalence(method, strategy, workers):
    ops = _script(seed=hash((method, strategy)) % 10_000)
    parallel = _build(method, strategy, workers)
    serial = _build(method, strategy, None)
    try:
        _run(parallel, ops)
        _run(serial, ops)
        names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, serial, names)
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_reference_engine_equivalence(method, workers):
    """Directly against the tuple-at-a-time engine (batch_execution=False),
    not via transitivity through the serial batched suite."""
    ops = _script(seed=23, steps=30)
    parallel = _build(method, "auto", workers)
    reference = _build(method, "auto", None, batch=False)
    try:
        _run(parallel, ops)
        _run(reference, ops)
        names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, reference, names)
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_round_robin_view_equivalence(method, workers):
    """Round-robin views exercise the coordinator-simulated per-node delete
    search (the one view path where SEND order depends on storage state)."""
    ops = _script(seed=11, steps=30)
    parallel = _build(method, "inl", workers, partitioning=RoundRobinPartitioning())
    serial = _build(method, "inl", None, partitioning=RoundRobinPartitioning())
    try:
        _run(parallel, ops)
        _run(serial, ops)
        assert_equivalent(parallel, serial, ["A", "B", "JV"])
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", ("auxiliary", "global_index"))
def test_triangle_multiway_equivalence(method, workers):
    """Cyclic three-relation view on 3 nodes: multi-hop supersteps with
    extra-filter hops, and workers > nodes clamping when W = 3."""
    a = Schema.of("A", "x", "y", "pa")
    b = Schema.of("B", "y2", "z", "pb")
    c = Schema.of("C", "z2", "x2", "pc")
    definition = JoinViewDefinition(
        "TRI",
        ("A", "B", "C"),
        (
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
    )

    def build(workers):
        cluster = Cluster(num_nodes=3, batch_execution=True, workers=workers)
        cluster.create_relation(a, partitioned_on="pa")
        cluster.create_relation(b, partitioned_on="pb")
        cluster.create_relation(c, partitioned_on="pc")
        cluster.insert("B", [(i % 4, i % 3, i) for i in range(12)])
        cluster.insert("C", [(i % 3, i % 4, i) for i in range(12)])
        cluster.create_join_view(definition, method=method)
        return cluster

    rng = random.Random(5)
    ops = []
    for i in range(15):
        ops.append(("insert", "A", [(rng.randrange(4), rng.randrange(4), i)]))
    parallel, serial = build(workers), build(None)
    try:
        _run(parallel, ops)
        _run(serial, ops)
        names = ["A", "B", "C", "TRI", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, serial, names)
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_deferred_refresh_equivalence(method, workers):
    """A deferred refresh is a statement of its own: it must (re)enter the
    worker pool and flush with identical charges and RefreshReport."""

    def run(workers):
        cluster = _build(method, "auto", workers)
        wrapper = defer_view(cluster, "JV", flush_threshold=None)
        for i in range(25):
            cluster.insert("A", [(2000 + i, i % 5, i)])
        for i in range(0, 10, 2):
            cluster.delete("A", [(2000 + i, i % 5, i)])
        report = wrapper.refresh()
        return cluster, report

    parallel, report_p = run(workers)
    serial, report_s = run(None)
    try:
        assert (
            report_p.flushed_inserts,
            report_p.flushed_deletes,
            report_p.netted_away,
            report_p.statements_absorbed,
        ) == (
            report_s.flushed_inserts,
            report_s.flushed_deletes,
            report_s.netted_away,
            report_s.statements_absorbed,
        )
        assert_equivalent(parallel, serial, ["A", "B", "JV"])
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_mid_stream_ddl_equivalence(workers):
    """DDL drains the pool (workers would hold stale catalogs and
    fragments); the next statement re-forks from the current image and
    picks up the new access path exactly when the serial engine does."""

    def run(workers):
        cluster = Cluster(num_nodes=4, batch_execution=True, workers=workers)
        cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
        cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
        cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
        cluster.create_join_view(
            two_way_view("JV", "A", "c", "B", "d",
                         partitioning=HashPartitioning("e")),
            method="hybrid",
        )
        cluster.insert("A", [(1, 1, 1), (2, 2, 2)])
        if cluster.catalog.find_auxiliary("B", "d") is None:
            cluster.create_auxiliary_relation("B", "d")
        cluster.insert("A", [(3, 1, 3), (4, 3, 4)])
        cluster.delete("A", [(1, 1, 1)])
        return cluster

    parallel, serial = run(workers), run(None)
    try:
        names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, serial, names)
    finally:
        parallel.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_large_skewed_transaction_equivalence(workers):
    """The headline benchmark shape: one big transaction with heavy key
    skew — maximal probe-cache and repeat-charge traffic."""
    rng = random.Random(9)
    rows = [(5000 + i, rng.choice((0, 0, 0, 1, 2)), i) for i in range(300)]
    for method in ("naive", "auxiliary", "global_index"):
        parallel = _build(method, "inl", workers)
        serial = _build(method, "inl", None)
        try:
            parallel.insert("A", rows)
            serial.insert("A", rows)
            names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
            assert_equivalent(parallel, serial, names)
        finally:
            parallel.close()


# -------------------------------------------------------------- probe cache


def test_probe_cache_hits_charge_exactly_probe_cost():
    """Cross-statement repeats of a hot key are served from the worker's
    heavy-hitter cache; the hit path must charge exactly what re-executing
    the probe would, so the ledger stays byte-identical to serial."""
    parallel = _build("auxiliary", "inl", 1, probe_cache_threshold=2)
    serial = _build("auxiliary", "inl", None)
    try:
        for i in range(12):
            parallel.insert("A", [(3000 + i, 3, i)])  # same join key every time
            serial.insert("A", [(3000 + i, 3, i)])
        engine = parallel._parallel_engine
        assert engine is not None and engine.running
        stats = engine.probe_cache_stats()
        assert sum(worker.get("hits", 0) for worker in stats) > 0
        names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, serial, names)
    finally:
        parallel.close()


@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_probe_cache_invalidation_on_partner_write(method):
    """Interleave writes to the probed partner with hot-key statements: a
    cached probe result must be dropped when the partner changes, or the
    view silently misses join matches.  Checked against the serial engine
    (which has no cache and therefore cannot go stale)."""

    def run(workers):
        cluster = _build(method, "inl", workers, probe_cache_threshold=2)
        # Promote key 3 well past the threshold.
        for i in range(6):
            cluster.insert("A", [(6000 + i, 3, i)])
        # Write the probed partner: a new B row with the hot key...
        cluster.insert("B", [(97, 3, "fresh")])
        # ...and delete one existing match of the hot key.
        cluster.delete("B", [(3, 3, "f3")])
        # Statements after the partner writes must see the new truth.
        cluster.insert("A", [(6100, 3, 100), (6101, 3, 101)])
        return cluster

    parallel, serial = run(1), run(None)
    try:
        names = ["A", "B", "JV", *parallel.catalog.auxiliaries]
        assert_equivalent(parallel, serial, names)
        # The view really reflects the partner writes (not vacuous).
        jv_rows = [
            row for rows in _fragment_contents(parallel, "JV").values()
            for row in rows
        ]
        assert any("fresh" in row for row in jv_rows)
        assert not any("f3" in row for row in jv_rows)
    finally:
        parallel.close()


# ----------------------------------------------------------- pool lifecycle


def test_close_is_idempotent_and_pool_restarts():
    cluster = _build("auxiliary", "inl", 2)
    cluster.insert("A", [(1, 1, 1)])
    engine = cluster._parallel_engine
    assert engine is not None and engine.running
    cluster.close()
    assert not engine.running
    cluster.close()  # idempotent
    # The next statement re-forks from the current image.
    cluster.insert("A", [(2, 2, 2)])
    assert cluster._parallel_engine.running
    cluster.close()


def test_workers_validation():
    with pytest.raises(ValueError):
        Cluster(num_nodes=2, workers=0)
    with pytest.raises(ValueError):
        Cluster(num_nodes=2, workers=-1)


# ------------------------------------------------------- shared-memory path


def test_shared_memory_transport_equivalence(monkeypatch):
    """Force every envelope blob through the shared-memory path (threshold
    1 byte) and pin the result against the serial engine — the transport
    encoding must be invisible to ledger, network, and fragment state."""
    from repro.cluster import parallel as parallel_mod

    segments = []
    real_create = parallel_mod._shm_create

    def counting_create(blob):
        segments.append(len(blob))
        return real_create(blob)

    monkeypatch.setattr(parallel_mod, "_shm_create", counting_create)
    ops = _script(seed=20260808)
    cluster = _build("auxiliary", "inl", 2)
    try:
        cluster.insert("A", [(1, 1, 1)])  # arm the pool
        engine = cluster._parallel_engine
        assert engine is not None and engine.running
        engine.shm_min_bytes = 1
        _run(cluster, ops)
    finally:
        cluster.close()
    assert segments, "shared-memory path never exercised"

    serial = _build("auxiliary", "inl", None)
    try:
        serial.insert("A", [(1, 1, 1)])
        _run(serial, ops)
        names = ["A", "B", "JV", *cluster.catalog.auxiliaries]
        assert_equivalent(cluster, serial, names)
    finally:
        serial.close()
