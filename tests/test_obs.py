"""Observability layer: zero overhead when off, bit-stable when on.

The acceptance bars for the tracing/metrics subsystem (``repro.obs``):

* tracing must never perturb modeled costs — ledger cells, network
  statistics, and fragment contents are byte-identical with observability
  attached or detached, on the serial and the parallel engine alike;
* traced span/event sequences are deterministic: identical statements
  produce identical :meth:`Tracer.signature` output for ``workers=1`` and
  ``workers=2``, for every method, eager and deferred;
* the disabled path allocates **no** Span objects (proved by poisoning
  ``Span.__new__``);
* exports are valid (Chrome-trace schema, Prometheus text format) and the
  metrics agree with the cost ledger cell for cell.
"""

import json
from contextlib import contextmanager

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.cluster.parallel import fork_available
from repro.cluster.probe_cache import HeavyHitterProbeCache
from repro.core.deferred import defer_view
from repro.obs import tracer as tracer_mod
from repro.obs.collect import (
    DISABLED,
    attach_observability,
    collect_cluster_metrics,
    detach_observability,
)
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import diff_snapshots, validate_prometheus

METHODS = ("naive", "auxiliary", "global_index")


def _build(method, workers=None):
    cluster = Cluster(
        num_nodes=4, batch_execution=True, workers=workers,
        probe_cache_threshold=3,
    )
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view(
            "JV", "A", "c", "B", "d", partitioning=HashPartitioning("e")
        ),
        method=method,
        strategy="inl",
    )
    return cluster


def _a_rows(count):
    return [(i, i % 5, f"e{i % 7}") for i in range(count)]


def _run_workload(cluster, deferred=False, rows=48, statement=8):
    wrapper = (
        defer_view(cluster, "JV", flush_threshold=None) if deferred else None
    )
    data = _a_rows(rows)
    for start in range(0, rows, statement):
        cluster.insert("A", data[start : start + statement])
    cluster.delete("A", data[:statement])
    if wrapper is not None:
        wrapper.refresh()


def _engine_state(cluster):
    stats = cluster.network.stats
    return (
        dict(cluster.ledger._cells),
        (
            stats.messages, stats.local_deliveries, dict(stats.by_link),
            stats.drops, stats.duplicates, stats.retries, stats.backoff_slots,
        ),
        {
            name: {
                node.node_id: node.scan(name)
                for node in cluster.nodes
                if node.has_fragment(name)
            }
            for name in ("A", "B", "JV")
        },
    )


# ------------------------------------------------- tracing never perturbs


@pytest.mark.parametrize("workers", [None, 2])
@pytest.mark.parametrize("deferred", [False, True])
def test_tracing_is_cost_invisible(workers, deferred):
    """Ledger cells, network stats, and fragment contents are bit-identical
    with observability attached vs the disabled default."""
    if workers is not None and not fork_available():
        pytest.skip("fork start method unavailable")
    plain = _build("auxiliary", workers=workers)
    _run_workload(plain, deferred=deferred)
    state_plain = _engine_state(plain)
    plain.close()

    traced = _build("auxiliary", workers=workers)
    obs = attach_observability(traced)
    _run_workload(traced, deferred=deferred)
    state_traced = _engine_state(traced)
    traced.close()

    assert obs.tracer.span_count() > 0
    assert state_traced == state_plain
    detach_observability(traced)
    assert traced.obs is DISABLED


# -------------------------------------------------- signature determinism


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("deferred", [False, True])
def test_signatures_identical_across_worker_counts(method, deferred):
    """workers=1 (inline shard) and workers=2 (forked pool) must yield the
    exact same span/event signature — worker count is an execution detail,
    not an observable one."""

    def run(workers):
        cluster = _build(method, workers=workers)
        obs = attach_observability(cluster)
        _run_workload(cluster, deferred=deferred)
        signature = obs.tracer.signature()
        state = _engine_state(cluster)
        cluster.close()
        return signature, state

    sig_one, state_one = run(1)
    sig_two, state_two = run(2)
    assert sig_one == sig_two
    assert state_one == state_two


def test_signature_is_stable_across_reruns():
    first = _build("global_index")
    obs_first = attach_observability(first)
    _run_workload(first)
    second = _build("global_index")
    obs_second = attach_observability(second)
    _run_workload(second)
    assert obs_first.tracer.signature() == obs_second.tracer.signature()


# --------------------------------------------------- disabled-mode zeroes


@contextmanager
def _counted_span_allocations():
    """Count every Span allocation by hooking ``Span.__new__``.

    Cleanup installs a *transparent* ``__new__`` instead of deleting the
    hook: once a class's ``tp_new`` slot has been overridden, neither
    ``del`` nor re-assigning ``object.__new__`` restores the original
    C-level fast path (CPython then raises ``object.__new__() takes
    exactly one argument``), so a pass-through wrapper is the only clean
    restore.
    """
    allocations = []

    def counting_new(cls, *args, **kwargs):
        allocations.append(args)
        return object.__new__(cls)

    def passthrough_new(cls, *args, **kwargs):
        return object.__new__(cls)

    tracer_mod.Span.__new__ = counting_new
    try:
        yield allocations
    finally:
        tracer_mod.Span.__new__ = passthrough_new


def test_disabled_mode_allocates_no_span_objects():
    """With the DISABLED facade (the default), no Span is ever constructed:
    every instrumentation site goes through NOOP_TRACER/NOOP_SPAN."""
    with _counted_span_allocations() as allocations:
        cluster = _build("auxiliary")
        assert cluster.obs is DISABLED
        _run_workload(cluster)
        assert cluster.obs.metrics.names() == []
        assert allocations == []


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_disabled_mode_allocates_no_span_objects_parallel():
    with _counted_span_allocations() as allocations:
        cluster = _build("auxiliary", workers=2)
        _run_workload(cluster)
        cluster.close()
        assert allocations == []


def test_span_allocation_counter_still_counts():
    """The hook itself works: an enabled tracer allocates spans."""
    with _counted_span_allocations() as allocations:
        from repro.obs.tracer import Tracer

        with Tracer().span("probe"):
            pass
        assert len(allocations) == 1


# ------------------------------------------------------- worker telemetry


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_traced_superstep_spans_carry_merged_worker_events():
    cluster = _build("auxiliary", workers=2)
    obs = attach_observability(cluster)
    _run_workload(cluster)
    supersteps = [
        span for _depth, span in obs.tracer.walk() if span.name == "superstep"
    ]
    assert supersteps, "parallel run produced no superstep spans"
    merged = [span for span in supersteps if span.events]
    assert merged, "no superstep carried worker event tallies"
    for span in merged:
        # Events arrive pre-sorted by (node, kind, detail).
        keys = [
            (tags["node"], tags["kind"], tags["detail"])
            for _seq, _name, tags in span.events
        ]
        assert keys == sorted(keys)
    counter = obs.metrics.get("repro_worker_events_total")
    assert counter is not None and counter.total() > 0
    engine = cluster._parallel_engine
    assert engine is not None
    live_stats = engine.probe_cache_stats()
    assert len(live_stats) == 2
    assert any(busy > 0 for busy in engine.worker_busy_ns)
    cluster.close()
    # Final snapshots survive the drain for post-run collection.
    assert engine.probe_cache_stats() == live_stats
    assert len(engine.heavy_hitters()) == 2


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_untraced_parallel_run_still_tracks_busy_time():
    cluster = _build("auxiliary", workers=2)
    _run_workload(cluster)
    engine = cluster._parallel_engine
    assert engine is not None
    assert sum(engine.worker_busy_ns) > 0
    cluster.close()


# ------------------------------------------------------------ exports


def test_exports_are_valid_and_agree_with_ledger():
    cluster = _build("global_index")
    obs = attach_observability(cluster)
    _run_workload(cluster)
    registry = collect_cluster_metrics(cluster)
    assert registry is obs.metrics  # pushed + pulled metrics export together

    trace = to_chrome_trace(obs.tracer)
    assert validate_chrome_trace(trace) == []
    json.dumps(trace)  # must be JSON-serializable as-is

    text = registry.to_prometheus()
    assert validate_prometheus(text) == []

    # The ledger gauge mirrors the cost ledger cell for cell.
    ops = registry.get("repro_ledger_ops_total")
    cells = cluster.ledger._cells
    assert len(ops.samples()) == len(cells)
    for (node, op, tag), count in cells.items():
        assert ops.get(node=node, op=op.value, tag=tag.value) == count
    snapshot = cluster.ledger.snapshot()
    tw = registry.get("repro_workload_total_ios")
    rt = registry.get("repro_response_time_ios")
    tags = {tag for (_n, _o, tag) in cells}
    for tag in tags:
        assert tw.get(tag=tag.value) == snapshot.total_workload(tags=[tag])
        assert rt.get(tag=tag.value) == snapshot.response_time(tags=[tag])
    # Network gauge agrees with the network's own counters.
    net = registry.get("repro_network_events_total")
    assert net.get(kind="messages") == cluster.network.stats.messages


def test_metrics_snapshot_diff():
    cluster = _build("auxiliary")
    attach_observability(cluster)
    _run_workload(cluster, rows=16, statement=8)
    before = collect_cluster_metrics(cluster).snapshot()
    assert diff_snapshots(before, before) == {}
    cluster.insert("A", _a_rows(8))
    after = collect_cluster_metrics(cluster).snapshot()
    delta = diff_snapshots(before, after)
    assert "repro_ledger_ops_total" in delta


# --------------------------------------------------------------- the CLI


def test_obs_cli_snapshot_diff_render(tmp_path, capsys):
    from repro.obs.__main__ import main

    out = tmp_path / "artifacts"
    assert main(["snapshot", "--smoke", "--out", str(out)]) == 0
    for artifact in ("trace.json", "metrics.prom", "metrics.json"):
        assert (out / artifact).exists()
    trace = json.loads((out / "trace.json").read_text())
    assert validate_chrome_trace(trace) == []
    assert validate_prometheus((out / "metrics.prom").read_text()) == []
    assert main(
        ["diff", str(out / "metrics.json"), str(out / "metrics.json")]
    ) == 0
    assert main(["render", str(out / "trace.json")]) == 0
    assert "statement" in capsys.readouterr().out


# ------------------------------------------------- probe-cache epoch flush


def test_probe_cache_epoch_flush_preserves_counters():
    """A catalog-epoch clear folds the live hit/miss/invalidation counters
    into the flushed accumulators instead of losing them; ``stats()``
    reports all-time totals either way."""
    cache = HeavyHitterProbeCache(threshold=1)
    cache.check_epoch(1)
    cache.note_index_miss(0, "A", "c", 5, 1, [(0, 5)])
    assert cache.lookup_index(0, "A", "c", 5) is not None  # one hit
    cache.note_write(0, "A", (0, 5))                        # one invalidation
    before = cache.stats()
    assert (before["hits"], before["misses"], before["invalidations"]) == (
        1, 1, 1,
    )
    cache.check_epoch(2)  # DDL bump: clears entries, flushes counters
    assert cache.lookup_index(0, "A", "c", 5) is None
    stats = cache.stats()
    assert (stats["hits"], stats["misses"], stats["invalidations"]) == (
        1, 1, 1,
    )
    assert stats["flushed_hits"] == 1
    assert stats["flushed_misses"] == 1
    assert stats["flushed_invalidations"] == 1
    assert stats["epoch_flushes"] == 1
    assert stats["resident_index_keys"] == 0
    # Same epoch again: no double flush.
    cache.check_epoch(2)
    assert cache.stats()["epoch_flushes"] == 1


def test_probe_cache_heavy_hitters_listing():
    cache = HeavyHitterProbeCache(threshold=1)
    cache.check_epoch(1)
    cache.note_index_miss(1, "AR", "d", 7, 0, [(7,), (7,)])
    cache.note_gi_miss(2, "GI_JV", 3, {0: ["g1"]})
    hot = cache.heavy_hitters()
    assert ("index", 1, "AR.d", "7", 2) in hot
    assert ("gi", 2, "GI_JV", "3", 1) in hot
    assert hot == sorted(hot)


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_ddl_epoch_bump_keeps_worker_cache_history():
    """Worker probe-cache counters accumulated before a DDL statement stay
    visible in stats replies after the epoch clear."""
    cluster = _build("auxiliary", workers=2)
    _run_workload(cluster, rows=32)
    engine = cluster._parallel_engine
    assert engine is not None
    before = engine.probe_cache_stats()
    total_before = sum(s.get("hits", 0) + s.get("misses", 0) for s in before)
    assert total_before > 0
    # DDL drains the pool; the next statement re-forks with a new epoch.
    cluster.create_relation(Schema.of("C", "g", "h"), partitioned_on="g")
    cluster.insert("A", _a_rows(8))
    after = engine.probe_cache_stats()
    total_after = sum(s.get("hits", 0) + s.get("misses", 0) for s in after)
    assert total_after > 0
    cluster.close()
