"""DeltaBlock: columnar layout, per-tuple round trips, and pickling.

The block is the parallel engine's journal storage *and* its wire format,
so two invariants matter: converting to/from the per-tuple ``Delta`` form
must be lossless (including tags outside the BASE/MAINTAIN pair), and a
protocol-5 pickle round trip — the transport's encoding — must reproduce
the block bit-identically whether or not the buffers travel out-of-band.
"""

import pickle

import pytest

from repro.core.delta import (
    FRAG_DELTA,
    GI_DELTA,
    OP_DELETE,
    OP_INSERT,
    Delta,
    DeltaBlock,
    PlacedRow,
)
from repro.costs import Tag


def _sample_delta() -> Delta:
    return Delta(
        relation="A",
        inserts=[
            PlacedRow(node=0, rowid=7, row=(1, "x")),
            PlacedRow(node=1, rowid=3, row=(2, "y")),
            PlacedRow(node=0, rowid=8, row=(3, "z")),
        ],
        deletes=[
            PlacedRow(node=1, rowid=1, row=(9, "w")),
        ],
    )


# ------------------------------------------------------ per-tuple round trip


def test_from_delta_partitions_by_node_and_round_trips():
    delta = _sample_delta()
    blocks = DeltaBlock.from_delta(delta)
    assert sorted(block.node for block in blocks) == [0, 1]
    by_node = {block.node: block for block in blocks}
    # Deletes come first (application order), then inserts.
    assert list(by_node[1].ops) == [OP_DELETE, OP_INSERT]
    assert list(by_node[0].ops) == [OP_INSERT, OP_INSERT]
    rebuilt_inserts = []
    rebuilt_deletes = []
    for block in blocks:
        assert block.kind == FRAG_DELTA
        assert block.name == "A"
        back = block.to_delta()
        rebuilt_inserts.extend(back.inserts)
        rebuilt_deletes.extend(back.deletes)
    assert sorted(rebuilt_inserts, key=lambda p: p.rowid) == sorted(
        delta.inserts, key=lambda p: p.rowid
    )
    assert rebuilt_deletes == delta.deletes


def test_empty_delta_yields_no_blocks_and_empty_block_round_trips():
    assert DeltaBlock.from_delta(Delta(relation="A")) == []
    block = DeltaBlock(FRAG_DELTA, 0, "A")
    assert len(block) == 0
    assert list(block.entries()) == []
    back = block.to_delta()
    assert back.is_empty and back.relation == "A"
    # Empty blocks survive the wire too.
    assert pickle.loads(pickle.dumps(block, protocol=5)) == block


def test_mixed_tags_survive_round_trip():
    block = DeltaBlock(FRAG_DELTA, 2, "AR_A")
    block.add(OP_INSERT, 10, (1, "a"), Tag.BASE)
    block.add(OP_DELETE, 11, (2, "b"), Tag.MAINTAIN)
    block.add(OP_INSERT, 12, (3, "c"), Tag.REPLICA)
    block.add(OP_INSERT, 13, (4, "d"), Tag.MIGRATE)
    tags = [tag for _op, _rowid, _key, tag, _ref in block.entries()]
    assert tags == [Tag.BASE, Tag.MAINTAIN, Tag.REPLICA, Tag.MIGRATE]
    clone = pickle.loads(pickle.dumps(block, protocol=5))
    assert [t for _o, _r, _k, t, _f in clone.entries()] == tags
    assert clone == block


def test_gi_blocks_carry_refs():
    block = DeltaBlock(GI_DELTA, 1, "GI_B")
    block.add(OP_INSERT, 5, 42, Tag.MAINTAIN, ref=3)
    block.add(OP_DELETE, 6, 43, Tag.MAINTAIN, ref=0)
    entries = list(block.entries())
    assert entries == [
        (OP_INSERT, 5, 42, Tag.MAINTAIN, 3),
        (OP_DELETE, 6, 43, Tag.MAINTAIN, 0),
    ]
    with pytest.raises(ValueError):
        block.to_delta()  # per-tuple form exists only for fragment blocks


def test_extend_matches_repeated_add():
    bulk = DeltaBlock(FRAG_DELTA, 0, "A")
    bulk.extend(OP_INSERT, [1, 2, 3], [(1,), (2,), (3,)], Tag.BASE)
    bulk.extend(OP_DELETE, [4], [(4,)], Tag.MAINTAIN)
    bulk.extend(OP_INSERT, [], [], Tag.BASE)  # no-op
    one_by_one = DeltaBlock(FRAG_DELTA, 0, "A")
    for rowid in (1, 2, 3):
        one_by_one.add(OP_INSERT, rowid, (rowid,), Tag.BASE)
    one_by_one.add(OP_DELETE, 4, (4,), Tag.MAINTAIN)
    assert bulk == one_by_one
    with_refs = DeltaBlock(GI_DELTA, 0, "GI_A")
    with_refs.extend(OP_INSERT, [1, 2], [10, 20], Tag.MAINTAIN, refs=[5, 6])
    assert [ref for *_rest, ref in with_refs.entries()] == [5, 6]


def test_tail_slices_all_columns():
    block = DeltaBlock(FRAG_DELTA, 0, "A")
    for rowid in range(5):
        block.add(OP_INSERT, rowid, (rowid,), Tag.BASE)
    tail = block.tail(3)
    assert len(tail) == 2
    assert list(tail.rowids) == [3, 4]
    assert tail.keys == [(3,), (4,)]
    assert (tail.kind, tail.node, tail.name) == (FRAG_DELTA, 0, "A")
    assert len(block.tail(5)) == 0  # cursor at the end -> empty slice


# ------------------------------------------------------------------ pickling


def test_protocol5_out_of_band_buffers_round_trip():
    block = DeltaBlock(FRAG_DELTA, 1, "B")
    for rowid in range(100):
        block.add(
            OP_INSERT if rowid % 3 else OP_DELETE,
            rowid,
            (rowid, f"row{rowid}"),
            Tag.BASE if rowid % 2 else Tag.MAINTAIN,
        )
    buffers = []
    payload = pickle.dumps(block, protocol=5, buffer_callback=buffers.append)
    # The four fixed-width columns travel out-of-band, one buffer each.
    assert len(buffers) == 4
    clone = pickle.loads(payload, buffers=[b.raw() for b in buffers])
    assert clone == block
    # Out-of-band bytes scale with entries, the in-band payload with keys
    # only — the transport's size win comes from exactly this split.
    assert sum(len(b.raw()) for b in buffers) == block.nbytes


def test_legacy_protocol_round_trip():
    block = DeltaBlock(GI_DELTA, 0, "GI_A")
    block.add(OP_INSERT, 1, 7, Tag.MAINTAIN, ref=2)
    for protocol in (2, 4, 5):
        assert pickle.loads(pickle.dumps(block, protocol=protocol)) == block
