"""Tests for repro.core.statistics."""

import pytest

from repro.core.statistics import RelationStatistics, StatisticsCache


def test_fanout_rows_over_distinct():
    stats = RelationStatistics("B", rows=20, distinct={"d": 5})
    assert stats.fanout("d") == 4.0


def test_fanout_empty_relation():
    stats = RelationStatistics("B", rows=0, distinct={})
    assert stats.fanout("d") == 0.0


def test_fanout_unknown_column_is_pessimistic():
    stats = RelationStatistics("B", rows=20, distinct={})
    assert stats.fanout("zzz") == 20.0


def test_cache_computes_distincts(ab_cluster):
    cache = StatisticsCache(ab_cluster)
    stats = cache.for_relation("B")
    assert stats.rows == 20
    assert stats.distinct["d"] == 5
    assert stats.distinct["b"] == 20
    assert cache.fanout("B", "d") == 4.0


def test_cache_hit_and_invalidation(ab_cluster):
    cache = StatisticsCache(ab_cluster)
    first = cache.for_relation("B")
    assert cache.for_relation("B") is first
    ab_cluster.insert("B", [(100, 9, "z")])
    second = cache.for_relation("B")
    assert second is not first
    assert second.rows == 21


def test_spread_capped_by_nodes(ab_cluster):
    cache = StatisticsCache(ab_cluster)
    assert cache.spread("B", "d", num_nodes=2) == 2.0
    assert cache.spread("B", "d", num_nodes=16) == 4.0
