"""Tests for repro.core.optimizer (planning, pricing, method advice)."""

import pytest

from repro import Cluster, HashPartitioning, MaintenanceMethod, Schema, two_way_view
from repro.core import BoundView, MethodAdvisor, PlanningError
from repro.core.multiway import AuxiliaryAccess, BaseAccess, GlobalIndexAccess
from repro.core.optimizer import MaintenancePlanner
from repro.core.view import JoinCondition, JoinViewDefinition

A = Schema.of("A", "a", "c", "e")
B = Schema.of("B", "b", "d", "f")
C = Schema.of("C", "g", "h", "p")


def fresh_cluster():
    cluster = Cluster(4)
    cluster.create_relation(A, partitioned_on="a")
    cluster.create_relation(B, partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    return cluster


def bound_for(cluster, definition):
    return BoundView(
        definition,
        {name: cluster.catalog.relation(name).schema
         for name in definition.relations},
    )


def test_resolve_access_naive_requires_index():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.NAIVE)
    with pytest.raises(PlanningError, match="local index"):
        planner.resolve_access("B", "d")
    cluster.create_index("B", "d")
    access = planner.resolve_access("B", "d")
    assert isinstance(access, BaseAccess) and access.broadcast


def test_resolve_access_partitioned_base_is_colocated():
    cluster = Cluster(4)
    cluster.create_relation(A, partitioned_on="a")
    cluster.create_relation(B, partitioned_on="d", indexes=[("d", True)])
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    for method in MaintenanceMethod:
        planner = MaintenancePlanner(cluster, bound, method)
        access = planner.resolve_access("B", "d")
        assert isinstance(access, BaseAccess)
        assert not access.broadcast
        assert access.clustered


def test_resolve_access_auxiliary_requires_ar():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.AUXILIARY)
    with pytest.raises(PlanningError, match="auxiliary"):
        planner.resolve_access("B", "d")
    cluster.create_auxiliary_relation("B", "d")
    access = planner.resolve_access("B", "d")
    assert isinstance(access, AuxiliaryAccess)


def test_resolve_access_gi_requires_gi():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.GLOBAL_INDEX)
    with pytest.raises(PlanningError, match="global index"):
        planner.resolve_access("B", "d")
    cluster.create_global_index("B", "d")
    access = planner.resolve_access("B", "d")
    assert isinstance(access, GlobalIndexAccess)


def test_plan_cache_invalidated_by_cardinality_change():
    cluster = fresh_cluster()
    cluster.create_index("B", "d")
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.NAIVE)
    plan1 = planner.plan_for("A")
    assert planner.plan_for("A") is plan1  # cached
    cluster.insert("B", [(100, 1, "x")])
    assert planner.plan_for("A") is not plan1  # stats signature changed


def test_alternatives_sorted_by_cost_triangle():
    """§2.2's optimization problem: the cheapest of the 4 triangle plans
    probes the lower-fanout side first."""
    a = Schema.of("A", "x", "y", "pa")
    b = Schema.of("B", "y2", "z", "pb")
    c = Schema.of("C", "z2", "x2", "pc")
    definition = JoinViewDefinition(
        "TRI",
        ("A", "B", "C"),
        (
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
    )
    cluster = Cluster(4)
    cluster.create_relation(a, partitioned_on="pa")
    cluster.create_relation(b, partitioned_on="pb")
    cluster.create_relation(c, partitioned_on="pc")
    # B: huge fanout on y2 (all rows share y2=1); C: fanout 1 on x2.
    cluster.insert("B", [(1, i, i) for i in range(20)])
    cluster.insert("C", [(i, i, i) for i in range(20)])
    cluster.create_auxiliary_relation("B", "y2")
    cluster.create_auxiliary_relation("B", "z")
    cluster.create_auxiliary_relation("C", "z2")
    cluster.create_auxiliary_relation("C", "x2")
    cluster.create_auxiliary_relation("A", "y")
    cluster.create_auxiliary_relation("A", "x")
    bound = BoundView(definition, {"A": a, "B": b, "C": c})
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.AUXILIARY)
    alternatives = planner.alternatives("A")
    assert len(alternatives) == 4
    costs = [cost for _, cost in alternatives]
    assert costs == sorted(costs)
    # The best plan starts at C (fanout 1), not B (fanout 20).
    best_plan, _ = alternatives[0]
    assert best_plan.hops[0].partner == "C"


def big_b_cluster(rows: int = 5_000):
    """B large enough that its fragments span multiple pages, so the
    index-vs-scan regime choice is non-trivial (fanout 1 per key)."""
    cluster = Cluster(4)
    cluster.create_relation(A, partitioned_on="a")
    cluster.create_relation(B, partitioned_on="b")
    b_info = cluster.catalog.relation("B")
    for i in range(rows):
        row = (i, i, f"f{i}")
        cluster.nodes[b_info.partitioner.node_of_row(row)].fragment("B").insert(row)
    b_info.row_count += rows
    return cluster


def test_prefer_sort_merge_for_large_deltas():
    cluster = big_b_cluster()
    cluster.create_index("B", "d")
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    planner = MaintenancePlanner(cluster, bound, MaintenanceMethod.NAIVE)
    plan = planner.plan_for("A")
    hop = plan.hops[0]
    assert not planner.prefer_sort_merge(hop, state_size=1)
    assert planner.prefer_sort_merge(hop, state_size=10_000)


def test_method_advisor_small_updates_pick_auxiliary():
    cluster = big_b_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    advisor = MethodAdvisor(cluster, bound)
    verdict = advisor.recommend(update_size=10)
    assert verdict.method is MaintenanceMethod.AUXILIARY
    assert "auxiliary" in verdict.reason
    assert set(verdict.per_method_response) == {
        "naive", "auxiliary", "global_index"
    }


def test_method_advisor_huge_clustered_updates_pick_naive():
    cluster = fresh_cluster()
    advisorbound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    advisor = MethodAdvisor(cluster, advisorbound)
    verdict = advisor.recommend(update_size=100_000, clustered_base_indexes=True)
    assert verdict.method is MaintenanceMethod.NAIVE


def test_method_advisor_storage_budget_forces_naive():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    advisor = MethodAdvisor(cluster, bound)
    verdict = advisor.recommend(update_size=10, storage_budget_tuples=0)
    assert verdict.method is MaintenanceMethod.NAIVE
    assert verdict.storage_overhead_tuples == 0


def test_method_advisor_infeasible_budget():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    advisor = MethodAdvisor(cluster, bound)
    # Budget below zero is unsatisfiable even by naive.
    with pytest.raises(PlanningError):
        advisor.recommend(update_size=10, storage_budget_tuples=-1)


def test_storage_overhead_counts_unpartitioned_sides():
    cluster = fresh_cluster()
    bound = bound_for(cluster, two_way_view("JV", "A", "c", "B", "d"))
    advisor = MethodAdvisor(cluster, bound)
    assert advisor.storage_overhead(MaintenanceMethod.NAIVE) == 0
    # A empty (0) + B (20): both sides unpartitioned on join attrs.
    assert advisor.storage_overhead(MaintenanceMethod.AUXILIARY) == 20
    assert advisor.storage_overhead(MaintenanceMethod.GLOBAL_INDEX) == 20
