"""Property tests: render ∘ parse is the identity on the view dialect."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partitioning import HashPartitioning, RoundRobinPartitioning
from repro.core.view import JoinCondition, JoinViewDefinition
from repro.sql import parse_join_view, render_view_sql
from repro.storage.schema import Schema

# A fixed universe of relations/columns keeps generated definitions valid.
SCHEMAS = {
    "r0": Schema.of("r0", "k0", "v0", "w0"),
    "r1": Schema.of("r1", "k1", "v1", "w1"),
    "r2": Schema.of("r2", "k2", "v2", "w2"),
}
RELATIONS = tuple(SCHEMAS)


@st.composite
def definitions(draw):
    count = draw(st.integers(2, 3))
    relations = RELATIONS[:count]
    # Chain conditions keep the graph connected; optionally close a cycle.
    conditions = [
        JoinCondition(relations[i], f"k{i}", relations[i + 1], f"v{i + 1}")
        for i in range(count - 1)
    ]
    if count == 3 and draw(st.booleans()):
        conditions.append(JoinCondition(relations[2], "w2", relations[0], "w0"))
    select_all = draw(st.booleans())
    if select_all:
        select = None
    else:
        items = []
        for relation in relations:
            for column in SCHEMAS[relation].column_names:
                if draw(st.booleans()):
                    items.append((relation, column))
        if not items:
            items = [(relations[0], "k0")]
        select = tuple(items)
    partition_choice = draw(st.integers(0, 2))
    if partition_choice == 0:
        partitioning = RoundRobinPartitioning()
    else:
        # Pick a column present in the (possibly implicit) select list.
        pool = select if select is not None else tuple(
            (relation, column)
            for relation in relations
            for column in SCHEMAS[relation].column_names
        )
        relation, column = draw(st.sampled_from(list(pool)))
        # The output name: collision-free by construction (unique suffixes).
        partitioning = HashPartitioning(column)
    return JoinViewDefinition(
        name="fuzzed",
        relations=relations,
        conditions=tuple(conditions),
        select=select,
        partitioning=partitioning,
    )


@settings(max_examples=80, deadline=None)
@given(definition=definitions())
def test_render_parse_roundtrip(definition):
    sql = render_view_sql(definition, SCHEMAS)
    parsed = parse_join_view(sql, SCHEMAS)
    assert parsed.relations == definition.relations
    assert parsed.conditions == definition.conditions
    assert parsed.select == definition.select
    assert parsed.partitioning == definition.partitioning


def test_render_select_star():
    definition = JoinViewDefinition(
        "v", ("r0", "r1"),
        (JoinCondition("r0", "k0", "r1", "v1"),),
    )
    sql = render_view_sql(definition, SCHEMAS)
    assert "select *" in sql
    assert parse_join_view(sql, SCHEMAS).select is None


def test_render_qualified_partition_on_collision():
    left = Schema.of("x", "k", "p")
    right = Schema.of("y", "k", "q")
    schemas = {"x": left, "y": right}
    definition = JoinViewDefinition(
        "v", ("x", "y"),
        (JoinCondition("x", "k", "y", "k"),),
        select=(("x", "k"), ("y", "q")),
        partitioning=HashPartitioning("x_k"),  # qualified output name
    )
    sql = render_view_sql(definition, schemas)
    assert "partitioned on x.k" in sql
    assert parse_join_view(sql, schemas).partitioning == HashPartitioning("x_k")
