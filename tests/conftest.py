"""Shared fixtures: small clusters and workloads used across test modules."""

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.workloads.uniform import UniformJoinWorkload, build_cluster


@pytest.fixture
def ab_cluster():
    """A 4-node cluster with A(a,c,e) and B(b,d,f), B pre-loaded so every
    join key 0..4 has 4 matches; neither relation partitioned on the join
    attribute."""
    cluster = Cluster(num_nodes=4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    return cluster


def make_view(cluster, method, strategy="auto", **kwargs):
    """Define the canonical JV = A join B view on ``ab_cluster``."""
    return cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d", partitioning=HashPartitioning("e")),
        method=method,
        strategy=strategy,
        **kwargs,
    )


@pytest.fixture
def uniform_cluster_factory():
    """Factory building the model's scenario cluster for a method/variant."""

    def build(method, num_nodes=8, fanout=5, clustered=False, strategy="inl",
              num_keys=64):
        workload = UniformJoinWorkload(
            num_keys=num_keys, fanout=fanout, clustered=clustered
        )
        cluster = build_cluster(
            workload, num_nodes=num_nodes, method=method, strategy=strategy
        )
        return cluster, workload

    return build
