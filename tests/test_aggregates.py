"""Tests for aggregate join views (COUNT/SUM/AVG over the join)."""

from collections import Counter

import pytest

from repro import Cluster, Schema
from repro.core import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    aggregate_rows,
    define_aggregate_join_view,
    recompute_aggregate,
)
from repro.core.view import ViewDefinitionError, two_way_view


def agg_counter(rows):
    return Counter(
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    )


def check(cluster, name):
    assert agg_counter(aggregate_rows(cluster, name)) == agg_counter(
        recompute_aggregate(cluster, name)
    )


SPEC = AggregateSpec(
    group_by=(("B", "d"),),
    aggregates=(
        Aggregate(AggregateFunction.COUNT, "n"),
        Aggregate(AggregateFunction.SUM, "total", source=("B", "f")),
        Aggregate(AggregateFunction.AVG, "avg_f", source=("B", "f")),
    ),
)


def fresh(method="auxiliary"):
    cluster = Cluster(4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 3, float(i)) for i in range(12)])
    define_aggregate_join_view(
        cluster, two_way_view("AGG", "A", "c", "B", "d"), SPEC, method=method
    )
    return cluster


def test_spec_validation():
    with pytest.raises(ViewDefinitionError, match="GROUP BY"):
        AggregateSpec(group_by=(), aggregates=(Aggregate(AggregateFunction.COUNT, "n"),))
    with pytest.raises(ViewDefinitionError, match="at least one"):
        AggregateSpec(group_by=(("B", "d"),), aggregates=())
    with pytest.raises(ViewDefinitionError, match="duplicate"):
        AggregateSpec(
            group_by=(("B", "d"),),
            aggregates=(
                Aggregate(AggregateFunction.COUNT, "n"),
                Aggregate(AggregateFunction.SUM, "n", source=("B", "f")),
            ),
        )
    with pytest.raises(ViewDefinitionError, match="COUNT"):
        Aggregate(AggregateFunction.COUNT, "n", source=("B", "f"))
    with pytest.raises(ViewDefinitionError, match="input column"):
        Aggregate(AggregateFunction.SUM, "s")


def test_initial_materialization_empty_a():
    cluster = fresh()
    assert aggregate_rows(cluster, "AGG") == []


def test_initial_materialization_with_data():
    cluster = Cluster(3)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 2, float(i)) for i in range(4)])
    cluster.insert("A", [(1, 0, "x"), (2, 1, "y")])
    define_aggregate_join_view(
        cluster, two_way_view("AGG", "A", "c", "B", "d"), SPEC
    )
    check(cluster, "AGG")
    assert len(aggregate_rows(cluster, "AGG")) == 2  # two groups


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index", "hybrid"])
def test_insert_maintains_aggregates(method):
    cluster = fresh(method)
    cluster.insert("A", [(1, 0, "x"), (2, 1, "y"), (3, 0, "z")])
    check(cluster, "AGG")
    rows = {row[0]: row for row in aggregate_rows(cluster, "AGG")}
    # Group d=0: 2 A-tuples x 4 matching B rows (0,3,6,9) = 8 join tuples.
    assert rows[0][1] == 8
    assert rows[0][2] == pytest.approx(2 * (0 + 3 + 6 + 9))
    assert rows[0][3] == pytest.approx((0 + 3 + 6 + 9) / 4)


def test_delete_updates_and_removes_empty_groups():
    cluster = fresh()
    cluster.insert("A", [(1, 0, "x"), (2, 1, "y")])
    cluster.delete("A", [(2, 1, "y")])
    check(cluster, "AGG")
    groups = {row[0] for row in aggregate_rows(cluster, "AGG")}
    assert groups == {0}  # group 1 emptied and vanished
    cluster.delete("A", [(1, 0, "x")])
    assert aggregate_rows(cluster, "AGG") == []


def test_b_side_updates_fold_in():
    cluster = fresh()
    cluster.insert("A", [(1, 0, "x")])
    cluster.insert("B", [(100, 0, 50.0)])
    check(cluster, "AGG")
    cluster.delete("B", [(100, 0, 50.0)])
    check(cluster, "AGG")


def test_update_changing_group():
    cluster = fresh()
    cluster.insert("A", [(1, 0, "x")])
    cluster.update("A", [((1, 0, "x"), (1, 2, "x"))])
    check(cluster, "AGG")
    groups = {row[0] for row in aggregate_rows(cluster, "AGG")}
    assert groups == {2}


def test_groups_partitioned_by_key():
    cluster = fresh()
    cluster.insert("A", [(i, i % 3, "x") for i in range(9)])
    info = cluster.catalog.view("AGG")
    for node in cluster.nodes:
        for row in node.scan("AGG"):
            assert info.partitioner.node_of_row(row) == node.node_id


def test_aggregate_updates_charged_to_view_tag():
    from repro import Tag

    cluster = fresh()
    snapshot = cluster.insert("A", [(1, 0, "x")])
    assert snapshot.total_workload([Tag.VIEW]) > 0
    # One group touched: exactly one group-row write.
    from repro import Op

    assert snapshot.op_count(Op.INSERT, tags=[Tag.VIEW]) == 1


def test_multi_column_group_by():
    spec = AggregateSpec(
        group_by=(("B", "d"), ("A", "e")),
        aggregates=(Aggregate(AggregateFunction.COUNT, "n"),),
    )
    cluster = Cluster(3)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 2, float(i)) for i in range(6)])
    define_aggregate_join_view(
        cluster, two_way_view("AGG2", "A", "c", "B", "d"), spec
    )
    cluster.insert("A", [(1, 0, "x"), (2, 0, "x"), (3, 0, "y")])
    check(cluster, "AGG2")
    rows = {(row[0], row[1]): row[2] for row in aggregate_rows(cluster, "AGG2")}
    assert rows[(0, "x")] == 6  # 2 A tuples x 3 matches
    assert rows[(0, "y")] == 3


def test_aggregate_rows_rejects_plain_views(ab_cluster):
    from tests.conftest import make_view

    make_view(ab_cluster, "naive")
    with pytest.raises(ViewDefinitionError, match="not an aggregate"):
        aggregate_rows(ab_cluster, "JV")


def test_property_random_stream_stays_consistent():
    import random

    rng = random.Random(17)
    cluster = fresh()
    live = []
    for step in range(60):
        if not live or rng.random() < 0.6:
            row = (step, rng.randrange(3), f"e{step}")
            live.append(row)
            cluster.insert("A", [row])
        else:
            row = live.pop(rng.randrange(len(live)))
            cluster.delete("A", [row])
        if step % 10 == 0:
            check(cluster, "AGG")
    check(cluster, "AGG")


# ---------------------------------------------------- rollback (REP006 bug)


def test_rollback_restores_aggregate_view():
    """Regression: aggregate folding used to mutate view fragments without
    recording undo actions, so a transaction rollback restored the base
    relations but left the folded counts/sums corrupted (found by REP006)."""
    cluster = fresh()
    cluster.insert("A", [(0, 0, "seed"), (1, 1, "seed")])
    before = agg_counter(aggregate_rows(cluster, "AGG"))
    txn = cluster.transaction()
    with txn:
        txn.insert("A", [(2, 0, "x"), (3, 2, "y")])
        txn.delete("A", [(0, 0, "seed")])
        txn.rollback()
    assert agg_counter(aggregate_rows(cluster, "AGG")) == before
    check(cluster, "AGG")


def test_rollback_restores_aggregate_row_count():
    cluster = fresh()
    view = cluster.catalog.views["AGG"]
    cluster.insert("A", [(0, 0, "seed")])
    count_before = view.row_count
    txn = cluster.transaction()
    with txn:
        # New group rows appear (group 2 unseen) and existing rows rewrite.
        txn.insert("A", [(2, 2, "x")])
        txn.delete("A", [(0, 0, "seed")])
        txn.rollback()
    assert view.row_count == count_before
    stored = sum(
        len(node.fragment("AGG").table)
        for node in cluster.nodes
        if node.has_fragment("AGG")
    )
    assert stored == count_before
    check(cluster, "AGG")
