"""Tests for the naive maintenance method (paper §2.1.1)."""

from collections import Counter

import pytest

from repro import Op, recompute_view, two_way_view
from repro.cluster.partitioning import RoundRobinPartitioning
from tests.conftest import make_view


def view_equals_recompute(cluster):
    return Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_insert_updates_view(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)
    assert len(ab_cluster.view_rows("JV")) == 4  # key 2 has 4 matches


def test_insert_nonmatching_adds_nothing(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 999, "x")])
    assert ab_cluster.view_rows("JV") == []


def test_delete_updates_view(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    ab_cluster.delete("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)


def test_update_changing_join_key(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.update("A", [((1, 2, "x"), (1, 3, "x"))])
    assert view_equals_recompute(ab_cluster)


def test_updates_to_other_side(ab_cluster):
    make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.insert("B", [(100, 2, "new")])
    assert view_equals_recompute(ab_cluster)
    ab_cluster.delete("B", [(100, 2, "new")])
    assert view_equals_recompute(ab_cluster)


def test_broadcast_probes_every_node(ab_cluster):
    make_view(ab_cluster, "naive", strategy="inl")
    ab_cluster.network.reset_stats()
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # The delta tuple is searched at all 4 nodes.
    assert snapshot.op_count(Op.SEARCH) == 4
    # Broadcast = L messages counted (self-delivery included per the paper).
    stats = ab_cluster.network.stats
    assert stats.messages + stats.local_deliveries >= 4


def test_nonclustered_probe_charges_fetch_per_match(ab_cluster):
    make_view(ab_cluster, "naive", strategy="inl")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.op_count(Op.FETCH) == 4  # N = 4 matches


def test_clustered_index_probe_fetches_free(ab_cluster):
    ab_cluster.create_index("B", "d", clustered=True)
    make_view(ab_cluster, "naive", strategy="inl")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.op_count(Op.FETCH) == 0
    assert snapshot.maintenance_workload() == 4.0  # L searches


def test_round_robin_view_distribution(ab_cluster):
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=RoundRobinPartitioning()),
        method="naive",
    )
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)
    ab_cluster.delete("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)
    assert ab_cluster.view_rows("JV") == []


def test_no_extra_structures_created(ab_cluster):
    make_view(ab_cluster, "naive")
    assert ab_cluster.catalog.auxiliaries == {}
    assert ab_cluster.catalog.global_indexes == {}


def test_sort_merge_strategy_same_contents(ab_cluster):
    make_view(ab_cluster, "naive", strategy="sort_merge")
    ab_cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    assert view_equals_recompute(ab_cluster)


def test_sort_merge_charges_scans_not_searches(ab_cluster):
    ab_cluster.create_index("B", "d", clustered=True)
    make_view(ab_cluster, "naive", strategy="sort_merge")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.op_count(Op.SEARCH) == 0
    assert snapshot.op_count(Op.SCAN_PAGE) > 0


def test_view_row_count_tracked(ab_cluster):
    info = make_view(ab_cluster, "naive")
    ab_cluster.insert("A", [(1, 2, "x")])
    assert info.row_count == 4
    ab_cluster.delete("A", [(1, 2, "x")])
    assert info.row_count == 0
