"""Tests for the figure series generators and the multiway model."""

import pytest

from repro.model import (
    HopModel,
    JV1_HOPS,
    JV2_HOPS,
    MethodVariant,
    ModelParameters,
    auxiliary_response_ios,
    figure13_prediction,
    global_index_response_ios,
    naive_response_ios,
    predicted_time_units,
)
from repro.model.figures import (
    crossover_summary,
    figure7_rows,
    figure8_rows,
    figure9_rows,
    figure10_rows,
    figure11_rows,
    figure12_rows,
    figure13_rows,
)

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value
NAIVE_NCL = MethodVariant.NAIVE_NONCLUSTERED.value
GI_NCL = MethodVariant.GI_NONCLUSTERED.value


def test_figure7_constants():
    rows = figure7_rows()
    assert all(row[AR] == 3.0 for row in rows)
    last = rows[-1]
    assert last["nodes"] == 128
    assert last[GI_NCL] == 13.0
    assert last[NAIVE_CL] == 128.0


def test_figure8_interpolation():
    rows = figure8_rows()
    for row in rows:
        assert row[AR] <= row[GI_NCL] <= row[NAIVE_NCL]


def test_figure9_ar_decreases():
    rows = figure9_rows()
    ar_series = [row[AR] for row in rows]
    assert ar_series == sorted(ar_series, reverse=True)
    assert all(row[NAIVE_CL] == 400.0 for row in rows)


def test_figure10_naive_clustered_wins():
    for row in figure10_rows():
        assert row[NAIVE_CL] <= row[AR]
        assert row[NAIVE_CL] <= row[GI_NCL]


def test_figure11_flattens():
    rows = figure11_rows()
    naive_series = [row[NAIVE_CL] for row in rows]
    # Flat once sort-merge takes over: the last several values equal.
    assert naive_series[-1] == naive_series[-3]
    ar_series = [row[AR] for row in rows]
    assert ar_series[-1] > naive_series[-1]


def test_figure12_stepwise():
    rows = figure12_rows(insert_counts=(1, 128, 129, 256, 257), num_nodes=128)
    ar = [row[AR] for row in rows]
    assert ar == [3.0, 3.0, 6.0, 6.0, 9.0]


def test_figure13_rows_shape():
    rows = figure13_rows()
    assert [row["nodes"] for row in rows] == [2, 4, 8]
    for row in rows:
        assert row["AR method for JV1"] < row["naive method for JV1"]
        assert row["AR method for JV2"] < row["naive method for JV2"]
    # AR speedup over naive grows with L (the paper's takeaway).
    speedups = [
        row["naive method for JV1"] / row["AR method for JV1"] for row in rows
    ]
    assert speedups == sorted(speedups)


def test_figure13_prediction_values():
    prediction = figure13_prediction(num_nodes=4, delta=128)
    assert prediction["AR method for JV1"] == pytest.approx(0.25)
    assert prediction["AR method for JV2"] == pytest.approx(0.5)
    assert prediction["naive method for JV1"] == pytest.approx(1.25)
    assert prediction["naive method for JV2"] == pytest.approx(3.25)


def test_crossover_summary_ordering():
    summary = crossover_summary()
    assert summary[NAIVE_CL] < summary[AR]


def test_multiway_model_single_hop_reduces_to_two_way():
    params = ModelParameters(num_nodes=8)
    hops = (HopModel(fanout=1.0),)
    assert auxiliary_response_ios(128, hops, params) == 16.0  # ceil(128/8)
    assert naive_response_ios(128, hops, params) == 128 * (1 + 1 / 8)


def test_multiway_model_jv2_about_double_jv1():
    params = ModelParameters(num_nodes=4)
    jv1 = auxiliary_response_ios(128, JV1_HOPS, params)
    jv2 = auxiliary_response_ios(128, JV2_HOPS, params)
    assert jv2 == pytest.approx(2 * jv1)


def test_multiway_model_co_updates_add_inserts():
    params = ModelParameters(num_nodes=4)
    base = auxiliary_response_ios(128, JV1_HOPS, params)
    with_ar = auxiliary_response_ios(128, JV1_HOPS, params, co_update_ars=1)
    assert with_ar == base + 32 * 2  # ceil(128/4) inserts at 2 I/Os


def test_multiway_gi_fetch_costs():
    params = ModelParameters(num_nodes=4)
    hops_ncl = (HopModel(fanout=8.0, clustered=False),)
    hops_cl = (HopModel(fanout=8.0, clustered=True),)
    ncl = global_index_response_ios(128, hops_ncl, params)
    cl = global_index_response_ios(128, hops_cl, params)
    assert ncl > cl  # K=min(8,4)=4 page fetches < 8 row fetches


def test_predicted_time_units():
    assert predicted_time_units(256.0, 128) == 2.0
    with pytest.raises(ValueError):
        predicted_time_units(1.0, 0)
