"""Tests for deferred (batched) view maintenance."""

from collections import Counter

import pytest

from repro import Tag, recompute_view
from repro.core import DeferredMaintainer, defer_view, fresh_view_rows
from tests.conftest import make_view


@pytest.fixture
def deferred(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="inl")
    wrapper = defer_view(ab_cluster, "JV")
    return ab_cluster, wrapper


def test_defer_queues_without_touching_view(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x")])
    assert wrapper.is_stale
    assert wrapper.pending_changes == 1
    assert cluster.view_rows("JV") == []  # stale until refresh


def test_refresh_applies_batch(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    report = wrapper.refresh()
    assert report.flushed_inserts == 2
    assert report.statements_absorbed == 1
    assert not wrapper.is_stale
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_netting_cancels_churn(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x")])
    cluster.delete("A", [(1, 2, "x")])
    assert wrapper.pending_changes == 0
    snapshot = cluster.ledger.snapshot()
    report = wrapper.refresh()
    assert report.flushed_inserts == 0 and report.flushed_deletes == 0
    assert report.netted_away == 2
    # Refresh of a fully-netted queue does no maintenance work at all.
    diff = cluster.ledger.diff_since(snapshot)
    assert diff.maintenance_workload() == 0.0
    assert cluster.view_rows("JV") == []


def test_delete_then_insert_nets(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x")])
    wrapper.refresh()
    cluster.delete("A", [(1, 2, "x")])
    cluster.insert("A", [(1, 2, "x")])
    assert wrapper.pending_changes == 0
    wrapper.refresh()
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_placed_pruned_at_note_time_and_report_counts_unchanged(deferred):
    """The one-pass routing rework: ``_placed`` keeps exactly the surviving
    insert placements (pruned as netting happens), and the RefreshReport
    counts match what the pre-rework engine reported."""
    cluster, wrapper = deferred
    cluster.insert("A", [(100, 0, "pre")])
    wrapper.refresh()                            # (100, 0, "pre") is live
    rows = [(i, i % 5, f"x{i}") for i in range(6)]
    cluster.insert("A", rows)                    # 6 queued inserts
    cluster.delete("A", [rows[0], rows[1]])      # net away two of them
    cluster.delete("A", [(100, 0, "pre")])       # plain delete, nothing queued
    # Invariant: len(_placed[row]) == max(0, _pending[row]).
    for row, net in wrapper._pending.items():
        assert len(wrapper._placed.get(row, [])) == max(0, net)
    assert rows[0] not in wrapper._placed and rows[1] not in wrapper._placed
    report = wrapper.refresh()
    assert report.flushed_inserts == 4
    assert report.flushed_deletes == 1
    assert report.netted_away == 4       # two cancellations, two sides each
    assert report.statements_absorbed == 3
    assert wrapper._placed == {} and not wrapper._pending
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_cross_relation_delta_forces_flush(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x")])
    assert wrapper.is_stale
    # B's delta must not queue behind A's: the pre-write flush applies the
    # queued A batch against the partner state it actually observed, and
    # B's own delta then queues in its place.
    cluster.insert("B", [(99, 2, "new")])
    assert wrapper.is_stale  # now holding the B delta
    wrapper.refresh()
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_flush_threshold_auto_refreshes(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    wrapper = defer_view(ab_cluster, "JV", flush_threshold=3)
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.insert("A", [(2, 3, "y")])
    assert wrapper.is_stale
    ab_cluster.insert("A", [(3, 4, "z")])  # hits the threshold
    assert not wrapper.is_stale
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")


def test_fresh_view_rows_refresh_on_read(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x")])
    rows = fresh_view_rows(cluster, "JV")
    assert len(rows) == 4
    assert not wrapper.is_stale
    # Eager views pass through unchanged.
    assert fresh_view_rows(cluster, "JV") == cluster.view_rows("JV")


def test_deferred_deletes_of_preexisting_rows(deferred):
    cluster, wrapper = deferred
    cluster.insert("A", [(1, 2, "x"), (2, 2, "y")])
    wrapper.refresh()
    cluster.delete("A", [(1, 2, "x")])
    cluster.delete("A", [(2, 2, "y")])
    assert wrapper.pending_changes == 2
    report = wrapper.refresh()
    assert report.flushed_deletes == 2
    assert cluster.view_rows("JV") == []


def test_double_defer_rejected(deferred):
    cluster, _ = deferred
    with pytest.raises(ValueError, match="already deferred"):
        defer_view(cluster, "JV")


def test_invalid_threshold():
    with pytest.raises(ValueError):
        DeferredMaintainer(inner=None, flush_threshold=0)  # type: ignore[arg-type]


def test_batching_amortizes_maintenance_cost(uniform_cluster_factory):
    """Many 1-tuple statements refreshed at once cost no more than eager
    per-statement maintenance (and switch to sort-merge when cheaper)."""
    eager_cluster, workload = uniform_cluster_factory(
        "auxiliary", num_nodes=4, fanout=2, strategy="auto", num_keys=64
    )
    before = eager_cluster.ledger.snapshot()
    for serial in range(40):
        eager_cluster.insert("A", [workload.a_row(serial)])
    eager_cost = eager_cluster.ledger.diff_since(before).maintenance_workload()

    deferred_cluster, workload = uniform_cluster_factory(
        "auxiliary", num_nodes=4, fanout=2, strategy="auto", num_keys=64
    )
    wrapper = defer_view(deferred_cluster, "JV")
    before = deferred_cluster.ledger.snapshot()
    for serial in range(40):
        deferred_cluster.insert("A", [workload.a_row(serial)])
    wrapper.refresh()
    deferred_cost = deferred_cluster.ledger.diff_since(before).maintenance_workload()

    assert deferred_cost <= eager_cost
    assert Counter(deferred_cluster.view_rows("JV")) == Counter(
        eager_cluster.view_rows("JV")
    )


def test_property_deferred_equals_eager(deferred):
    """Arbitrary interleavings with periodic refresh stay equivalent."""
    cluster, wrapper = deferred
    script = [
        ("insert", (1, 2, "a")), ("insert", (2, 2, "b")),
        ("delete", (1, 2, "a")), ("insert", (3, 4, "c")),
        ("refresh", None),
        ("insert", (4, 0, "d")), ("delete", (2, 2, "b")),
        ("refresh", None),
    ]
    for action, row in script:
        if action == "insert":
            cluster.insert("A", [row])
        elif action == "delete":
            cluster.delete("A", [row])
        else:
            wrapper.refresh()
    wrapper.refresh()
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")
