"""Tests for the query layer: descriptions, view matching, execution."""

from collections import Counter

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.core.view import JoinCondition, ViewDefinitionError
from repro.costs import Op, Tag
from repro.query import Comparison, Filter, Query, QueryEngine, find_matches

A = Schema.of("A", "a", "c", "e")
B = Schema.of("B", "b", "d", "f")


@pytest.fixture
def warehouse(ab_cluster):
    """ab_cluster plus a maintained view and some A rows."""
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="auxiliary",
    )
    ab_cluster.insert("A", [(i, i % 5, i * 10) for i in range(8)])
    return ab_cluster


JOIN_QUERY = Query(
    relations=("A", "B"),
    select=(("A", "a"), ("B", "f")),
    conditions=(JoinCondition("A", "c", "B", "d"),),
)


def expected_join_rows(cluster):
    rows = []
    for a_row in cluster.scan_relation("A"):
        for b_row in cluster.scan_relation("B"):
            if a_row[1] == b_row[1]:
                rows.append((a_row[0], b_row[2]))
    return Counter(rows)


# ------------------------------------------------------------ descriptions


def test_query_validation():
    with pytest.raises(ViewDefinitionError):
        Query(relations=(), select=(("A", "a"),))
    with pytest.raises(ViewDefinitionError):
        Query(relations=("A",), select=())
    with pytest.raises(ViewDefinitionError, match="distinct"):
        Query(relations=("A", "A"), select=(("A", "a"),))
    with pytest.raises(ViewDefinitionError, match="outside"):
        Query(
            relations=("A", "B"),
            select=(("A", "a"),),
            conditions=(JoinCondition("A", "c", "C", "g"),),
        )
    with pytest.raises(ViewDefinitionError, match="not connected"):
        Query(relations=("A", "B"), select=(("A", "a"),))
    with pytest.raises(ViewDefinitionError, match="filter"):
        Query(
            relations=("A",),
            select=(("A", "a"),),
            filters=(Filter("Z", "x", Comparison.EQ, 1),),
        )


def test_filter_comparisons():
    assert Filter("A", "a", Comparison.LE, 5).matches(5)
    assert not Filter("A", "a", Comparison.LT, 5).matches(5)
    assert Filter("A", "a", Comparison.NE, 5).matches(4)
    assert Filter("A", "a", Comparison.GE, 5).matches(6)
    assert "A.a" in Filter("A", "a", Comparison.GT, 5).describe()


def test_equality_filter_on():
    query = Query(
        relations=("A",),
        select=(("A", "a"),),
        filters=(
            Filter("A", "a", Comparison.GT, 1),
            Filter("A", "c", Comparison.EQ, 3),
        ),
    )
    assert query.equality_filter_on("A", "c").value == 3
    assert query.equality_filter_on("A", "a") is None
    assert "select A.a" in query.describe()


# --------------------------------------------------------------- matching


def test_find_matches_same_graph(warehouse):
    matches = find_matches(JOIN_QUERY, warehouse)
    assert [m.view.name for m in matches] == ["JV"]
    assert matches[0].partition_key is None


def test_match_requires_selected_columns(warehouse):
    narrow = warehouse.create_join_view(
        two_way_view("NARROW", "A", "c", "B", "d", select=[("A", "a")]),
        method="naive",
    )
    query = Query(
        relations=("A", "B"),
        select=(("A", "a"), ("B", "f")),
        conditions=(JoinCondition("A", "c", "B", "d"),),
    )
    names = {m.view.name for m in find_matches(query, warehouse)}
    assert "NARROW" not in names and "JV" in names


def test_match_detects_pinned_partition_key(warehouse):
    query = Query(
        relations=("A", "B"),
        select=(("A", "e"), ("B", "f")),
        conditions=(JoinCondition("A", "c", "B", "d"),),
        filters=(Filter("A", "e", Comparison.EQ, 30),),
    )
    (match,) = find_matches(query, warehouse)
    assert match.partition_key == 30


def test_match_rejects_different_graph(warehouse):
    query = Query(
        relations=("A", "B"),
        select=(("A", "a"),),
        conditions=(JoinCondition("A", "e", "B", "d"),),  # different edge
    )
    assert find_matches(query, warehouse) == []


# -------------------------------------------------------------- execution


def test_base_join_matches_truth(warehouse):
    engine = QueryEngine(warehouse)
    result = engine.answer_from_base(JOIN_QUERY)
    assert Counter(result.rows) == expected_join_rows(warehouse)
    assert result.plan == "base join"
    assert result.cost_ios > 0


def test_view_scan_matches_base_join(warehouse):
    engine = QueryEngine(warehouse)
    matches = find_matches(JOIN_QUERY, warehouse)
    from_view = engine.answer_from_view(JOIN_QUERY, matches[0])
    from_base = engine.answer_from_base(JOIN_QUERY)
    assert Counter(from_view.rows) == Counter(from_base.rows)
    assert "view scan" in from_view.plan


def test_view_probe_single_node(warehouse):
    query = Query(
        relations=("A", "B"),
        select=(("A", "e"), ("B", "f")),
        conditions=(JoinCondition("A", "c", "B", "d"),),
        filters=(Filter("A", "e", Comparison.EQ, 30),),
    )
    engine = QueryEngine(warehouse)
    result = engine.answer(query)
    assert "view probe" in result.plan
    assert all(row[0] == 30 for row in result.rows)
    assert len(result.rows) == 4  # key 3 has 4 B matches
    # Probe = 1 SEARCH (+ fetches) at a single node.
    snapshot = result.snapshot
    assert snapshot.op_count(Op.SEARCH, tags=[Tag.QUERY]) == 1
    busy = [n for n, io in snapshot.per_node_ios([Tag.QUERY]).items() if io > 0]
    assert len(busy) == 1


def test_answer_prefers_view_over_base(warehouse):
    engine = QueryEngine(warehouse)
    result = engine.answer(JOIN_QUERY)
    assert result.plan.startswith("view")
    assert Counter(result.rows) == expected_join_rows(warehouse)


def test_answer_falls_back_to_base_without_views(ab_cluster):
    ab_cluster.insert("A", [(1, 2, 10)])
    engine = QueryEngine(ab_cluster)
    result = engine.answer(JOIN_QUERY)
    assert result.plan == "base join"
    assert Counter(result.rows) == expected_join_rows(ab_cluster)


def test_filters_applied_on_both_paths(warehouse):
    query = Query(
        relations=("A", "B"),
        select=(("A", "a"), ("B", "f")),
        conditions=(JoinCondition("A", "c", "B", "d"),),
        filters=(Filter("A", "a", Comparison.LT, 3),),
    )
    engine = QueryEngine(warehouse)
    base = engine.answer_from_base(query)
    (match,) = find_matches(query, warehouse)
    view = engine.answer_from_view(query, match)
    truth = Counter(
        {row: count for row, count in expected_join_rows(warehouse).items()
         if row[0] < 3}
    )
    assert Counter(base.rows) == truth
    assert Counter(view.rows) == truth


def test_single_relation_query_paths(warehouse):
    # Pinned partition column: one node touched.
    query = Query(
        relations=("A",),
        select=(("A", "c"),),
        filters=(Filter("A", "a", Comparison.EQ, 3),),
    )
    engine = QueryEngine(warehouse)
    result = engine.answer(query)
    assert result.rows == [(3,)]
    # Unfiltered: full scan of all fragments.
    scan_all = engine.answer(
        Query(relations=("A",), select=(("A", "a"),))
    )
    assert sorted(scan_all.rows) == [(i,) for i in range(8)]
    assert scan_all.snapshot.op_count(Op.SCAN_PAGE, tags=[Tag.QUERY]) >= 4


def test_indexed_equality_filter_uses_probes(warehouse):
    # B has a non-clustered index on d (provisioned by the AR method's
    # partitioned-base rule? no — create explicitly).
    warehouse.create_index("B", "d")
    query = Query(
        relations=("B",),
        select=(("B", "b"),),
        filters=(Filter("B", "d", Comparison.EQ, 2),),
    )
    engine = QueryEngine(warehouse)
    result = engine.answer(query)
    assert len(result.rows) == 4
    assert result.snapshot.op_count(Op.SEARCH, tags=[Tag.QUERY]) == 4  # L probes


def test_three_way_query_with_view(ab_cluster):
    C = Schema.of("C", "g", "h")
    ab_cluster.create_relation(C, partitioned_on="h")
    ab_cluster.insert("C", [(i % 3, i) for i in range(6)])
    from repro.core.view import JoinViewDefinition

    definition = JoinViewDefinition(
        name="V3",
        relations=("A", "B", "C"),
        conditions=(
            JoinCondition("A", "c", "B", "d"),
            JoinCondition("B", "b", "C", "g"),
        ),
        select=(("A", "a"), ("C", "h")),
    )
    ab_cluster.create_join_view(definition, method="auxiliary")
    ab_cluster.insert("A", [(1, 2, "x")])
    query = Query(
        relations=("A", "B", "C"),
        select=(("A", "a"), ("C", "h")),
        conditions=definition.conditions,
    )
    engine = QueryEngine(ab_cluster)
    base = engine.answer_from_base(query)
    auto = engine.answer(query)
    assert Counter(auto.rows) == Counter(base.rows)
    assert auto.plan.startswith("view")
