"""Unit tests for the interprocedural flow rules (REP007-REP009).

Each rule gets a seeded multi-hop violation whose witness names the full
entry→…→sink call path, a clean counterpart, and its justification forms
(domain annotation on the path, or the structural escape the rule
honours).  Trees are synthetic but laid out like the real package so the
entry-point table matches (``Cluster.insert`` etc.).
"""

import textwrap

from repro.analysis import analyze_paths


def run_flow(tmp_path, files, only=None):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], only_rules=only, flow=True)


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ------------------------------------------------------------------ REP007


def test_rep007_uncharged_send_reports_full_path(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .ship import ship_delta

            class Cluster:
                def insert(self, relation, rows):
                    self._execute(rows)

                def _execute(self, rows):
                    ship_delta(self.pipe, rows)
        """,
        "cluster/ship.py": """
            def ship_delta(pipe, rows):
                pipe.send(rows)
        """,
    }, only=["REP007"])
    assert rules_of(result) == ["REP007"]
    message = result.findings[0].message
    assert "Cluster.insert (cluster/cluster.py:" in message
    assert "Cluster._execute" in message
    assert "ship_delta (cluster/ship.py:" in message
    assert " → " in message
    assert result.findings[0].path == "cluster/ship.py"


def test_rep007_clean_when_unreachable_from_entries(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/ship.py": """
            def orphan_send(pipe, rows):
                pipe.send(rows)
        """,
    }, only=["REP007"])
    assert result.findings == []


def test_rep007_annotation_anywhere_on_the_path_justifies(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .ship import ship_delta

            class Cluster:
                def insert(self, rows):  # repro: uncharged-mirror=worker IPC only
                    ship_delta(self.pipe, rows)
        """,
        "cluster/ship.py": """
            def ship_delta(pipe, rows):
                pipe.send(rows)
        """,
    }, only=["REP007"])
    assert result.findings == []


def test_rep007_charging_the_send_on_the_path_justifies(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from ..costs import Op
            from .ship import ship_delta

            class Cluster:
                def insert(self, rows):
                    self.ledger.charge(0, Op.SEND, None, len(rows))
                    ship_delta(self.pipe, rows)
        """,
        "cluster/ship.py": """
            def ship_delta(pipe, rows):
                pipe.send(rows)
        """,
    }, only=["REP007"])
    assert result.findings == []


# ------------------------------------------------------------------ REP008


def test_rep008_clock_taint_flows_across_calls_into_charge(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/bill.py": """
            import time

            def elapsed():
                return time.perf_counter()

            def bill(ledger):
                t = elapsed()
                ledger.charge(0, t, None)
        """,
    }, only=["REP008"])
    assert rules_of(result) == ["REP008"]
    message = result.findings[0].message
    assert "wall-clock time" in message
    assert "elapsed (cluster/bill.py:" in message
    assert "CostLedger.charge" in message
    assert " → " in message


def test_rep008_set_order_taint_reaches_wire_envelope(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/wire.py": """
            def pick(nodes):
                order = []
                for node in set(nodes):
                    order.append(node)
                return order

            def emit(conn, nodes):
                conn.send_bytes(_encode(pick(nodes)))

            def _encode(payload):
                return payload
        """,
    }, only=["REP008"])
    assert "REP008" in rules_of(result)
    assert any(
        "set iteration order" in finding.message for finding in result.findings
    )


def test_rep008_annotated_source_is_clean(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/bill.py": """
            import time

            def elapsed():
                return time.perf_counter()  # repro: wall-clock=telemetry only

            def bill(stats):
                stats.observe(elapsed())
        """,
    }, only=["REP008"])
    assert result.findings == []


def test_rep008_reassignment_kills_taint(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/bill.py": """
            import time

            def bill(ledger):
                t = time.perf_counter()
                t = 3
                ledger.charge(0, t, None)
        """,
    }, only=["REP008"])
    # The charge sees the constant; only REP002 (per-file) would flag the
    # clock read itself.
    assert result.findings == []


# ------------------------------------------------------------------ REP009


def test_rep009_unprotected_mutation_reports_full_path(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .apply import apply_rows

            class Cluster:
                def insert(self, relation, rows):
                    self._write(relation, rows)

                def _write(self, relation, rows):
                    apply_rows(self.nodes, relation, rows)
        """,
        "cluster/apply.py": """
            def apply_rows(nodes, relation, rows):
                for row in rows:
                    nodes[0].fragment(relation).insert(row)
        """,
    }, only=["REP009"])
    assert rules_of(result) == ["REP009"]
    message = result.findings[0].message
    assert "Cluster.insert" in message
    assert "Cluster._write" in message
    assert "apply_rows (cluster/apply.py:" in message


def test_rep009_undo_recording_on_the_path_is_clean(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .apply import apply_rows

            class Cluster:
                def insert(self, relation, rows):
                    self._record_undo(lambda: None)
                    apply_rows(self.nodes, relation, rows)
        """,
        "cluster/apply.py": """
            def apply_rows(nodes, relation, rows):
                for row in rows:
                    nodes[0].fragment(relation).insert(row)
        """,
    }, only=["REP009"])
    assert result.findings == []


def test_rep009_scope_guard_and_annotation_are_clean(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .apply import guarded, annotated

            class Cluster:
                def insert(self, relation, rows):
                    guarded(self, relation, rows)
                    annotated(self.nodes, relation, rows)
        """,
        "cluster/apply.py": """
            def guarded(cluster, relation, rows):
                _check_no_open_scope(cluster, "insert")
                cluster.nodes[0].fragment(relation).insert(rows[0])

            def annotated(nodes, relation, rows):  # repro: no-undo=DDL backfill only
                nodes[0].fragment(relation).insert(rows[0])

            def _check_no_open_scope(cluster, operation):
                pass
        """,
    }, only=["REP009"])
    assert result.findings == []


# -------------------------------------------------------------- integration


def test_flow_findings_honour_noqa_and_count_as_suppressed(tmp_path):
    result = run_flow(tmp_path, {
        "cluster/cluster.py": """
            from .ship import ship_delta

            class Cluster:
                def insert(self, rows):
                    ship_delta(self.pipe, rows)
        """,
        "cluster/ship.py": """
            def ship_delta(pipe, rows):
                pipe.send(rows)  # repro: noqa=REP007,REP001
        """,
    }, only=["REP007"])
    assert result.findings == []
    assert result.suppressed == 1


def test_flow_rules_only_run_with_flow_enabled(tmp_path):
    files = {
        "cluster/cluster.py": """
            from .ship import ship_delta

            class Cluster:
                def insert(self, rows):
                    ship_delta(self.pipe, rows)
        """,
        "cluster/ship.py": """
            def ship_delta(pipe, rows):
                pipe.send(rows)
        """,
    }
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    without = analyze_paths([str(tmp_path)], only_rules=["REP001"])
    assert rules_of(without) == ["REP001"]
    with_flow = analyze_paths([str(tmp_path)], flow=True)
    assert "REP007" in rules_of(with_flow)
