"""The fault-sweep property test (ISSUE acceptance criterion).

For every maintenance method and every single-fault schedule — one node
crash, one message drop, one message duplication, one probe failure — run a
mixed workload under the protected recovery policy, recover, and require
the consistency auditor to find the materialized view, the auxiliary
relations, and the global-index rid-lists *exactly* equal to a from-scratch
recomputation from the base relations.

And the flip side of the robustness contract: with fault injection
attached but no fault firing, every ledger charge is bit-identical to the
fault-free engine.
"""

import pytest

from repro import Cluster, Schema
from repro.faults import (
    ConsistencyAuditor,
    FaultPlan,
    RecoveryPolicy,
    attach_faults,
)
from tests.conftest import make_view

METHODS = ("naive", "auxiliary", "global_index")
SCHEDULES = sorted(FaultPlan.single_fault_schedules())


def build_cluster(method):
    cluster = Cluster(num_nodes=4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    # Index-nested-loops so the probe access path is exercised (auto picks
    # sort-merge here, which scans instead of probing and would leave the
    # probe-failure schedule vacuous).
    make_view(cluster, method, strategy="inl")
    return cluster


def run_workload(cluster):
    for i in range(12):
        cluster.insert("A", [(100 + i, i % 5, i)])
    cluster.insert("B", [(50, 2, "late")])


@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("method", METHODS)
def test_single_fault_then_recovery_is_consistent(method, schedule):
    cluster = build_cluster(method)
    plan = FaultPlan.single_fault_schedules()[schedule]
    controller = attach_faults(cluster, plan=plan, seed=7)
    run_workload(cluster)
    report = controller.recover()
    assert report.still_pending == 0
    audit = ConsistencyAuditor(cluster).audit()
    assert audit.ok, f"{method}/{schedule}: {audit.summary()}"
    # The one scheduled fault really fired (the sweep is not vacuous).
    stats = controller.injector.stats
    assert (
        stats.crashes + stats.drops + stats.duplicates + stats.probe_failures
    ) >= 1, f"{method}/{schedule}: no fault fired"


@pytest.mark.parametrize("method", METHODS)
def test_delete_after_recovery_is_consistent(method):
    cluster = build_cluster(method)
    controller = attach_faults(
        cluster, plan=FaultPlan().crash(node=2, after_messages=2), seed=1
    )
    run_workload(cluster)
    controller.recover()
    cluster.delete("A", [(100, 0, 0)])
    cluster.delete("B", [(0, 0, "f0")])
    assert ConsistencyAuditor(cluster).audit().ok


@pytest.mark.parametrize("method", METHODS)
def test_no_fault_firing_charges_bit_identically(method):
    bare = build_cluster(method)
    run_workload(bare)

    attached = build_cluster(method)
    attach_faults(attached, plan=FaultPlan(), seed=0)  # nothing ever fires
    run_workload(attached)

    assert attached.ledger.snapshot().cells == bare.ledger.snapshot().cells
    assert attached.network.stats.messages == bare.network.stats.messages
    assert attached.network.stats.by_link == bare.network.stats.by_link


@pytest.mark.parametrize("method", METHODS)
def test_unprotected_node_crash_corrupts_visibly(method):
    """Negative control: with undo/retries off, a crash mid-statement must
    leave detectable corruption — otherwise the sweep above proves nothing."""
    cluster = build_cluster(method)
    controller = attach_faults(
        cluster,
        plan=FaultPlan().crash(node=2, after_messages=2),
        seed=3,
        policy=RecoveryPolicy.unprotected(),
    )
    saw_fault = False
    for i in range(12):
        try:
            cluster.insert("A", [(100 + i, i % 5, i)])
        except Exception:
            saw_fault = True
    assert saw_fault
    controller.injector.restart_all()
    audit = ConsistencyAuditor(cluster).audit()
    assert not audit.ok
    # ...and the naive-recomputation fallback repairs it.
    ConsistencyAuditor(cluster).repair()
    assert ConsistencyAuditor(cluster).audit().ok
