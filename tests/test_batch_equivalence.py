"""Batched engine ↔ tuple-at-a-time reference engine equivalence.

ISSUE 2's acceptance bar: for random multi-statement workloads (including
fault plans) the batched delta-execution engine must produce byte-identical
ledger cells, network statistics, and view contents (per fragment, in
fragment order) compared to a cluster that differs *only* in
``batch_execution=False``.

The ledger cells are commutative sums of integer counts, so "bit-identical"
is exact equality, not approximate: any grouping bug shows up as a failed
``==`` on the raw cell dicts.
"""

import random

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.cluster.partitioning import RoundRobinPartitioning
from repro.core.deferred import defer_view
from repro.core.view import JoinCondition, JoinViewDefinition
from repro.costs.ledger import format_cell_diff
from repro.faults import FaultPlan, attach_faults

METHODS = ("naive", "auxiliary", "global_index", "hybrid")
STRATEGIES = ("inl", "sort_merge", "auto")


def _network_state(cluster):
    stats = cluster.network.stats
    return (
        stats.messages,
        stats.local_deliveries,
        dict(stats.by_link),
        stats.drops,
        stats.duplicates,
        stats.retries,
        stats.backoff_slots,
    )


def _fragment_contents(cluster, name):
    """Per-node fragment rows *in storage order* — catches any reordering,
    not just multiset divergence."""
    return {
        node.node_id: node.scan(name)
        for node in cluster.nodes
        if node.has_fragment(name)
    }


def assert_equivalent(batched, reference, names):
    cell_diff = batched.ledger.diff(reference.ledger)
    assert not cell_diff, (
        "batched vs reference ledger cells diverge "
        f"(batched - reference):\n{format_cell_diff(cell_diff)}"
    )
    assert _network_state(batched) == _network_state(reference)
    for name in names:
        assert _fragment_contents(batched, name) == _fragment_contents(
            reference, name
        ), f"fragment contents diverge for {name!r}"
    for view_name, info in batched.catalog.views.items():
        assert info.row_count == reference.catalog.view(view_name).row_count


def _build(method, strategy, batch, partitioning=None, num_nodes=4):
    cluster = Cluster(num_nodes=num_nodes, batch_execution=batch)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view(
            "JV", "A", "c", "B", "d",
            partitioning=partitioning or HashPartitioning("e"),
        ),
        method=method,
        strategy=strategy,
    )
    return cluster


def _script(seed, steps=40, keys=7):
    """A deterministic random script of inserts/deletes/updates on A and B."""
    rng = random.Random(seed)
    ops = []
    serial = 0
    live = {"A": [], "B": []}
    for _ in range(steps):
        kind = rng.choice(("ins", "ins", "ins", "del", "upd", "multi"))
        rel = rng.choice(("A", "B"))
        if kind == "ins":
            row = (1000 + serial, rng.randrange(keys), serial)
            serial += 1
            live[rel].append(row)
            ops.append(("insert", rel, [row]))
        elif kind == "multi":
            rows = []
            for _ in range(rng.randrange(2, 6)):
                rows.append((1000 + serial, rng.randrange(keys), serial))
                serial += 1
            live[rel].extend(rows)
            ops.append(("insert", rel, rows))
        elif kind == "del" and live[rel]:
            row = live[rel].pop(rng.randrange(len(live[rel])))
            ops.append(("delete", rel, [row]))
        elif kind == "upd" and live[rel]:
            old = live[rel].pop(rng.randrange(len(live[rel])))
            new = (1000 + serial, rng.randrange(keys), serial)
            serial += 1
            live[rel].append(new)
            ops.append(("update", rel, [(old, new)]))
    return ops


def _run(cluster, ops):
    for kind, rel, payload in ops:
        if kind == "insert":
            cluster.insert(rel, payload)
        elif kind == "delete":
            cluster.delete(rel, payload)
        else:
            cluster.update(rel, payload)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_two_way_equivalence(method, strategy):
    ops = _script(seed=hash((method, strategy)) % 10_000)
    batched = _build(method, strategy, batch=True)
    reference = _build(method, strategy, batch=False)
    _run(batched, ops)
    _run(reference, ops)
    names = ["A", "B", "JV", *batched.catalog.auxiliaries]
    assert_equivalent(batched, reference, names)


@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_round_robin_view_equivalence(method):
    """Round-robin views exercise the stateful placement + per-row delete
    search paths."""
    ops = _script(seed=11, steps=30)
    batched = _build(method, "inl", True, partitioning=RoundRobinPartitioning())
    reference = _build(method, "inl", False, partitioning=RoundRobinPartitioning())
    _run(batched, ops)
    _run(reference, ops)
    assert_equivalent(batched, reference, ["A", "B", "JV"])


@pytest.mark.parametrize("method", ("auxiliary", "global_index"))
def test_triangle_multiway_equivalence(method):
    """A cyclic three-relation view exercises extra-filter hops and the
    multiway replanning path."""
    a = Schema.of("A", "x", "y", "pa")
    b = Schema.of("B", "y2", "z", "pb")
    c = Schema.of("C", "z2", "x2", "pc")
    definition = JoinViewDefinition(
        "TRI",
        ("A", "B", "C"),
        (
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
    )

    def build(batch):
        cluster = Cluster(num_nodes=3, batch_execution=batch)
        cluster.create_relation(a, partitioned_on="pa")
        cluster.create_relation(b, partitioned_on="pb")
        cluster.create_relation(c, partitioned_on="pc")
        cluster.insert("B", [(i % 4, i % 3, i) for i in range(12)])
        cluster.insert("C", [(i % 3, i % 4, i) for i in range(12)])
        cluster.create_join_view(definition, method=method)
        return cluster

    rng = random.Random(5)
    ops = []
    for i in range(15):
        ops.append(("insert", "A", [(rng.randrange(4), rng.randrange(4), i)]))
    batched, reference = build(True), build(False)
    _run(batched, ops)
    _run(reference, ops)
    names = ["A", "B", "C", "TRI", *batched.catalog.auxiliaries]
    assert_equivalent(batched, reference, names)


@pytest.mark.parametrize("method", ("naive", "auxiliary", "global_index"))
def test_deferred_refresh_equivalence(method):
    """Deferred queues net, then flush through the batch path; refresh
    charges must match the reference engine's."""

    def run(batch):
        cluster = _build(method, "auto", batch)
        wrapper = defer_view(cluster, "JV", flush_threshold=None)
        for i in range(25):
            cluster.insert("A", [(2000 + i, i % 5, i)])
        # Net away a few (delete rows just inserted).
        for i in range(0, 10, 2):
            cluster.delete("A", [(2000 + i, i % 5, i)])
        report = wrapper.refresh()
        return cluster, report

    batched, report_b = run(True)
    reference, report_r = run(False)
    assert (
        report_b.flushed_inserts,
        report_b.flushed_deletes,
        report_b.netted_away,
        report_b.statements_absorbed,
    ) == (
        report_r.flushed_inserts,
        report_r.flushed_deletes,
        report_r.netted_away,
        report_r.statements_absorbed,
    )
    assert_equivalent(batched, reference, ["A", "B", "JV"])


@pytest.mark.parametrize(
    "plan_name", ("message_drop", "message_duplication", "probe_failure")
)
def test_fault_plan_equivalence(plan_name):
    """With a fault controller attached, both modes route through the
    reference path (injector answers are call-sequence-keyed), so ledger,
    stats, and contents stay identical under identical seeds."""
    plans = FaultPlan.single_fault_schedules()

    def run(batch):
        cluster = _build("auxiliary", "inl", batch)
        attach_faults(cluster, plan=plans[plan_name].scaled(3.0), seed=7)
        _run(cluster, _script(seed=3, steps=20))
        return cluster

    batched = run(True)
    reference = run(False)
    names = ["A", "B", "JV", *batched.catalog.auxiliaries]
    assert_equivalent(batched, reference, names)


def test_detached_faults_reenable_batch_path():
    """After detach_faults the fast path resumes and equivalence holds for
    subsequent statements."""
    from repro.faults import detach_faults

    def run(batch):
        cluster = _build("auxiliary", "inl", batch)
        attach_faults(cluster, plan=FaultPlan(), seed=1)
        cluster.insert("A", [(1, 1, 1)])
        detach_faults(cluster)
        cluster.insert("A", [(2, 2, 2), (3, 3, 3), (4, 1, 4)])
        return cluster

    assert_equivalent(run(True), run(False), ["A", "B", "JV"])


def test_ddl_invalidates_compiled_plans():
    """Creating a new structure mid-stream must invalidate cached compiled
    plans: the batched engine picks up the new access path exactly when the
    reference engine does."""

    def run(batch):
        cluster = Cluster(num_nodes=4, batch_execution=batch)
        cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
        cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
        cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
        cluster.create_join_view(
            two_way_view("JV", "A", "c", "B", "d",
                         partitioning=HashPartitioning("e")),
            method="hybrid",
        )
        cluster.insert("A", [(1, 1, 1)])
        # New AR appears: hybrid should switch from its previous access
        # path; the cached compiled plan must be dropped in both modes.
        if cluster.catalog.find_auxiliary("B", "d") is None:
            cluster.create_auxiliary_relation("B", "d")
        cluster.insert("A", [(2, 1, 2)])
        return cluster

    batched, reference = run(True), run(False)
    names = ["A", "B", "JV", *batched.catalog.auxiliaries]
    assert_equivalent(batched, reference, names)


def test_large_skewed_transaction_equivalence():
    """The headline benchmark shape: one big transaction with heavy key
    skew (the probe memo's target case)."""
    rng = random.Random(9)
    rows = [(5000 + i, rng.choice((0, 0, 0, 1, 2)), i) for i in range(300)]
    for method in ("naive", "auxiliary", "global_index"):
        batched = _build(method, "inl", True)
        reference = _build(method, "inl", False)
        batched.insert("A", rows)
        reference.insert("A", rows)
        names = ["A", "B", "JV", *batched.catalog.auxiliaries]
        assert_equivalent(batched, reference, names)
