"""Unit tests for repro.core.multiway (orders, hops, output mapping)."""

import pytest

from repro.core.multiway import (
    AuxiliaryAccess,
    BaseAccess,
    GlobalIndexAccess,
    Hop,
    MaintenancePlan,
    OutputMapper,
    enumerate_orders,
)
from repro.core.view import (
    BoundView,
    JoinCondition,
    JoinViewDefinition,
    ViewDefinitionError,
    two_way_view,
)
from repro.storage.schema import Schema

A = Schema.of("A", "a", "c", "e")
B = Schema.of("B", "b", "d", "f")
C = Schema.of("C", "g", "h")


def test_two_way_single_order():
    bound = BoundView(two_way_view("JV", "A", "c", "B", "d"), {"A": A, "B": B})
    orders = enumerate_orders(bound, "A")
    assert len(orders) == 1
    (hop,) = orders[0]
    assert hop.partner == "B"
    assert hop.probe.column_of("B") == "d"
    assert hop.extra_filters == ()


def test_unknown_updated_relation():
    bound = BoundView(two_way_view("JV", "A", "c", "B", "d"), {"A": A, "B": B})
    with pytest.raises(ViewDefinitionError):
        enumerate_orders(bound, "C")


def test_chain_three_way_single_order_per_update():
    definition = JoinViewDefinition(
        "JV",
        ("A", "B", "C"),
        (JoinCondition("A", "c", "B", "d"), JoinCondition("B", "f", "C", "g")),
    )
    bound = BoundView(definition, {"A": A, "B": B, "C": C})
    # Delta on A must go A -> B -> C.
    orders = enumerate_orders(bound, "A")
    assert len(orders) == 1
    assert [hop.partner for hop in orders[0]] == ["B", "C"]
    # Delta on B can branch either way first.
    orders_b = enumerate_orders(bound, "B")
    partners = sorted(tuple(h.partner for h in order) for order in orders_b)
    assert partners == [("A", "C"), ("C", "A")]


def test_triangle_has_exactly_four_ways():
    """Paper §2.2: 'there are four possible ways to compute the changes'."""
    a = Schema.of("A", "x", "y")
    b = Schema.of("B", "y2", "z")
    c = Schema.of("C", "z2", "x2")
    definition = JoinViewDefinition(
        "T",
        ("A", "B", "C"),
        (
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
    )
    bound = BoundView(definition, {"A": a, "B": b, "C": c})
    orders = enumerate_orders(bound, "A")
    assert len(orders) == 4
    # Two orders start at B, two at C; the closing hop carries one filter.
    first_partners = sorted(order[0].partner for order in orders)
    assert first_partners == ["B", "B", "C", "C"]
    for order in orders:
        assert len(order[1].extra_filters) == 1


def _plan_for(bound, updated, contributed_schemas):
    """Hand-build a plan (bypassing the planner) for mapper tests."""
    hops = []
    for choice, schema in zip(enumerate_orders(bound, updated)[0], contributed_schemas):
        column = choice.probe.column_of(choice.partner)
        left_relation, left_column = choice.probe.other(choice.partner)
        hops.append(
            Hop(
                partner=choice.partner,
                left_relation=left_relation,
                left_column=left_column,
                right_column=column,
                access=BaseAccess(choice.partner, column, broadcast=True, clustered=False),
                contributed=schema,
                extra_filters=choice.extra_filters,
            )
        )
    return MaintenancePlan(
        view=bound.definition.name,
        updated=updated,
        updated_schema=bound.schemas[updated],
        hops=tuple(hops),
    )


def test_output_mapper_positions_and_projection():
    bound = BoundView(
        two_way_view("JV", "A", "c", "B", "d", select=[("B", "f"), ("A", "a")]),
        {"A": A, "B": B},
    )
    plan = _plan_for(bound, "A", [B])
    mapper = OutputMapper(bound, plan)
    assert mapper.total_arity == 6
    assert mapper.position("A", "c") == 1
    assert mapper.position("B", "d") == 4
    concatenated = (1, 2, 3, 10, 2, 30)  # A row + B row
    assert mapper.to_view_row(concatenated) == (30, 1)


def test_output_mapper_with_trimmed_contribution():
    bound = BoundView(
        two_way_view("JV", "A", "c", "B", "d", select=[("A", "a"), ("B", "f")]),
        {"A": A, "B": B},
    )
    trimmed = B.project(["d", "f"], name="AR_B_d")
    plan = _plan_for(bound, "A", [trimmed])
    mapper = OutputMapper(bound, plan)
    assert mapper.total_arity == 5
    assert mapper.position("B", "f") == 4
    assert mapper.to_view_row((1, 2, 3, 2, "f0")) == (1, "f0")


def test_output_mapper_unknown_relation():
    bound = BoundView(two_way_view("JV", "A", "c", "B", "d"), {"A": A, "B": B})
    plan = _plan_for(bound, "A", [B])
    mapper = OutputMapper(bound, plan)
    with pytest.raises(ViewDefinitionError):
        mapper.position("C", "g")


def test_prefix_arity():
    bound = BoundView(two_way_view("JV", "A", "c", "B", "d"), {"A": A, "B": B})
    plan = _plan_for(bound, "A", [B])
    mapper = OutputMapper(bound, plan)
    assert mapper.prefix_arity(0) == 3
    assert mapper.prefix_arity(1) == 6


def test_plan_join_order_and_describe():
    bound = BoundView(two_way_view("JV", "A", "c", "B", "d"), {"A": A, "B": B})
    plan = _plan_for(bound, "A", [B])
    assert plan.join_order == ("A", "B")
    assert "Δ" in plan.describe() or "A" in plan.describe()


def test_access_path_describe():
    assert "broadcast" in BaseAccess("B", "d", True, False).describe()
    assert "co-located" in BaseAccess("B", "d", False, True).describe()
    assert "aux[" in AuxiliaryAccess("AR_B_d", "B", "d").describe()
    assert "distributed clustered" in GlobalIndexAccess("GI", "B", "d", True).describe()
    assert AuxiliaryAccess("AR_B_d", "B", "d").fragment_name == "AR_B_d"
    assert GlobalIndexAccess("GI", "B", "d", False).fragment_name == "B"
