"""Edge-path tests across modules: branches the main suites don't reach."""

from collections import Counter

import pytest

from repro import (
    Cluster,
    HashPartitioning,
    Op,
    Schema,
    Tag,
    recompute_view,
    two_way_view,
)
from repro.backends.sqlite_cluster import ParallelResult, SQLiteCluster
from repro.core.delta import Delta, PlacedRow
from repro.core.view import JoinCondition, JoinViewDefinition


# ------------------------------------------------------------------ delta


def test_delta_helpers():
    delta = Delta(relation="A")
    assert delta.is_empty and delta.size() == 0
    delta.inserts.append(PlacedRow(0, 0, (1,)))
    delta.deletes.append(PlacedRow(1, 3, (2,)))
    assert not delta.is_empty
    assert delta.size() == 2
    assert delta.inserted_rows() == [(1,)]
    assert delta.deleted_rows() == [(2,)]


def test_empty_delta_is_noop(ab_cluster):
    from tests.conftest import make_view

    view = make_view(ab_cluster, "auxiliary")
    before = ab_cluster.ledger.snapshot()
    view.maintainer.apply(Delta(relation="A"))
    assert ab_cluster.ledger.diff_since(before).total_workload() == 0.0


# ------------------------------------------------------------- view cases


def test_view_partitioned_on_b_attribute(ab_cluster):
    """The symmetric case the paper notes: JV partitioned on an attribute
    of B still routes each result tuple to exactly one node."""
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("f")),
        method="auxiliary",
    )
    ab_cluster.insert("A", [(1, 2, "x")])
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")
    info = ab_cluster.catalog.view("JV")
    position = info.schema.index_of("f")
    for node in ab_cluster.nodes:
        for row in node.scan("JV"):
            assert info.partitioner.node_of_key(row[position]) == node.node_id


def test_both_bases_partitioned_on_join_attributes():
    """Case 1 of §2.1.1: no broadcast is ever needed, any method degrades
    gracefully to co-located probes."""
    cluster = Cluster(4)
    cluster.create_relation(
        Schema.of("A", "a", "c"), partitioned_on="c", indexes=[("c", False)]
    )
    cluster.create_relation(
        Schema.of("B", "b", "d"), partitioned_on="d", indexes=[("d", False)]
    )
    cluster.insert("B", [(i, i % 4) for i in range(8)])
    for method in ("naive", "auxiliary", "global_index"):
        name = f"JV_{method}"
        cluster.create_join_view(
            two_way_view(name, "A", "c", "B", "d", select=[("A", "a"), ("B", "b")]),
            method=method,
            strategy="inl",
        )
    assert cluster.catalog.auxiliaries == {}
    assert cluster.catalog.global_indexes == {}
    snapshot = cluster.insert("A", [(1, 2)])
    # All three views degrade to the identical co-located probe plan, so
    # the shared multi-view path groups them and bills the single probe
    # once for the whole group (DESIGN.md § 13); no broadcast either way.
    assert snapshot.op_count(Op.SEARCH, tags=[Tag.MAINTAIN]) == 1
    assert cluster.multi_view_stats.last_partition_passes == 1
    for method in ("naive", "auxiliary", "global_index"):
        name = f"JV_{method}"
        assert Counter(cluster.view_rows(name)) == recompute_view(cluster, name)


def test_gi_hop_with_extra_filter():
    """Cyclic closing hop through a global index applies the filter on the
    fetched rows."""
    a = Schema.of("A", "x", "y", "pa")
    b = Schema.of("B", "y2", "z", "pb")
    c = Schema.of("C", "z2", "x2", "pc")
    definition = JoinViewDefinition(
        name="TRI",
        relations=("A", "B", "C"),
        conditions=(
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
        select=(("A", "x"), ("C", "x2")),
    )
    cluster = Cluster(3)
    cluster.create_relation(a, partitioned_on="pa")
    cluster.create_relation(b, partitioned_on="pb")
    cluster.create_relation(c, partitioned_on="pc")
    cluster.insert("B", [(10, 99, 0)])
    cluster.insert("C", [(99, 1, 0), (99, 2, 1)])
    cluster.create_join_view(definition, method="global_index", strategy="inl")
    cluster.insert("A", [(1, 10, 0)])
    assert cluster.view_rows("TRI") == [(1, 1)]  # (99, 2) filtered out


# -------------------------------------------------------------- sqlite


def test_parallel_result_empty():
    result = ParallelResult([], [])
    assert result.response_seconds == 0.0
    assert result.total_seconds == 0.0
    assert result.rows == []


def test_sqlite_column_affinities():
    with SQLiteCluster(1) as cluster:
        schema = Schema.of("T", "i", "f", "s", "o",
                           kinds=(int, float, str, bytes))
        cluster.create_table(schema, partitioned_on="i")
        ddl = cluster.nodes[0].query(
            "SELECT sql FROM sqlite_master WHERE name = 'T'"
        )[0][0]
        assert "i INTEGER" in ddl and "f REAL" in ddl
        assert "s TEXT" in ddl and "o BLOB" in ddl


def test_sqlite_cluster_needs_a_node():
    with pytest.raises(ValueError):
        SQLiteCluster(0)


def test_sqlite_cluster_on_disk(tmp_path):
    with SQLiteCluster(2, directory=tmp_path) as cluster:
        cluster.create_table(Schema.of("T", "k", kinds=(int,)), partitioned_on="k")
        cluster.load("T", [(1,), (2,)])
        assert cluster.count("T") == 2
    assert (tmp_path / "node0.db").exists()
    assert (tmp_path / "node1.db").exists()


# --------------------------------------------------------------- queries


def test_query_engine_scan_without_partition_pin(ab_cluster):
    from repro.query import Comparison, Filter, Query, QueryEngine

    ab_cluster.insert("A", [(i, i % 5, i) for i in range(10)])
    engine = QueryEngine(ab_cluster)
    result = engine.answer(
        Query(
            relations=("A",),
            select=(("A", "a"),),
            filters=(Filter("A", "e", Comparison.GE, 7),),
        )
    )
    assert sorted(result.rows) == [(7,), (8,), (9,)]
    assert result.plan == "base join"


def test_view_row_helpers(ab_cluster):
    from tests.conftest import make_view

    view = make_view(ab_cluster, "naive")
    assert ab_cluster.view_rows("JV") == []
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view.row_count == len(ab_cluster.view_rows("JV")) == 4
