"""Tests for the SQLite parallel backend (cluster + maintenance rig)."""

from collections import Counter

import pytest

from repro.backends import (
    SQLiteCluster,
    TeradataStyleExperiment,
    batched,
    load_batched,
    verify_partitioning,
)
from repro.storage.schema import Schema

R = Schema.of("R", "k", "v", kinds=(int, str))


@pytest.fixture
def sqlite_cluster():
    with SQLiteCluster(4) as cluster:
        yield cluster


def test_create_and_load_partitions(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    sqlite_cluster.load("R", [(i, f"v{i}") for i in range(20)])
    assert sqlite_cluster.count("R") == 20
    assert verify_partitioning(sqlite_cluster, "R")
    assert sqlite_cluster.fragment_counts("R") == [5, 5, 5, 5]


def test_duplicate_table_rejected(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    with pytest.raises(ValueError):
        sqlite_cluster.create_table(R, partitioned_on="k")


def test_unknown_table_rejected(sqlite_cluster):
    with pytest.raises(KeyError):
        sqlite_cluster.load("nope", [])


def test_clustered_table_roundtrip(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k", clustered=True)
    rows = [(1, "a"), (1, "b"), (5, "c")]
    sqlite_cluster.load("R", rows)
    assert Counter(sqlite_cluster.all_rows("R")) == Counter(rows)
    # The hidden _seq column is not exposed through reads.
    assert all(len(row) == 2 for row in sqlite_cluster.all_rows("R"))


def test_clustered_table_physical_order(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k", clustered=True)
    sqlite_cluster.load("R", [(8, "x"), (0, "y"), (4, "z")])
    node = sqlite_cluster.nodes[0]  # keys 0,4,8 all hash to node 0
    stored = node.query("SELECT k FROM R")
    assert [k for (k,) in stored] == [0, 4, 8]


def test_delete_one_instance(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    sqlite_cluster.load("R", [(1, "a"), (1, "a")])
    sqlite_cluster.delete("R", [(1, "a")])
    assert sqlite_cluster.count("R") == 1
    with pytest.raises(KeyError):
        sqlite_cluster.delete("R", [(9, "none")])


def test_delete_from_clustered_table(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k", clustered=True)
    sqlite_cluster.load("R", [(1, "a"), (1, "a"), (2, "b")])
    sqlite_cluster.delete("R", [(1, "a")])
    assert sqlite_cluster.count("R") == 2


def test_batched_delete_duplicates_claim_distinct_copies(sqlite_cluster):
    """One executemany per node must still consume one stored copy per
    requested duplicate, like the old per-row loop."""
    sqlite_cluster.create_table(R, partitioned_on="k")
    sqlite_cluster.load("R", [(1, "a"), (1, "a"), (1, "a"), (2, "b")])
    sqlite_cluster.delete("R", [(1, "a"), (1, "a")])
    assert Counter(sqlite_cluster.all_rows("R")) == Counter([(1, "a"), (2, "b")])
    # Over-deleting fails before any row of the statement is removed.
    with pytest.raises(KeyError):
        sqlite_cluster.delete("R", [(1, "a"), (1, "a")])
    assert sqlite_cluster.count("R") == 2


def test_atomic_scope_commits_bulk_writes_once(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    with sqlite_cluster.atomic():
        sqlite_cluster.load("R", [(i, f"v{i}") for i in range(10)])
        sqlite_cluster.delete("R", [(0, "v0")])
    assert sqlite_cluster.count("R") == 9
    # A failing scope rolls every node back.
    with pytest.raises(RuntimeError):
        with sqlite_cluster.atomic():
            sqlite_cluster.load("R", [(100, "boom")])
            raise RuntimeError("abort")
    assert sqlite_cluster.count("R") == 9


def test_maintain_jv1_insert_is_atomic_across_nodes():
    """The full-maintenance path wraps base insert + view delta in one
    transaction; contents still match a recompute afterwards."""
    with TeradataStyleExperiment(num_nodes=2, scale=0.001) as experiment:
        experiment.materialize_jv1()
        before = experiment.cluster.count("jv1")
        delta = experiment.new_delta(5)
        experiment.maintain_jv1_insert(delta, "auxiliary")
        assert experiment.cluster.count("jv1") == before + 5
        recomputed = Counter(
            tuple(r)
            for node in experiment.cluster.nodes
            for r in node.query(
                "SELECT c.custkey, c.acctbal, o.orderkey, o.totalprice "
                "FROM customer c JOIN orders_1 o ON c.custkey = o.custkey"
            )
        )
        assert Counter(experiment.cluster.all_rows("jv1")) == recomputed


def test_scatter_groups_by_hash(sqlite_cluster):
    groups = sqlite_cluster.scatter([(0,), (1,), (4,)], key_position=0)
    assert groups == {0: [(0,), (4,)], 1: [(1,)]}


def test_run_on_all_times_every_node(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    sqlite_cluster.load("R", [(i, "x") for i in range(8)])
    result = sqlite_cluster.run_on_all(
        lambda node: node.query("SELECT COUNT(*) FROM R")
    )
    assert len(result.per_node_seconds) == 4
    assert result.response_seconds >= max(result.per_node_seconds) - 1e-9
    assert result.total_seconds == pytest.approx(sum(result.per_node_seconds))
    assert sum(row[0] for row in result.rows) == 8


def test_batched_helper():
    assert list(batched(range(5), 2)) == [[0, 1], [2, 3], [4]]
    with pytest.raises(ValueError):
        list(batched([], 0))


def test_load_batched(sqlite_cluster):
    sqlite_cluster.create_table(R, partitioned_on="k")
    loaded = load_batched(
        sqlite_cluster, "R", ((i, "v") for i in range(25)), batch_size=10
    )
    assert loaded == 25
    assert sqlite_cluster.count("R") == 25


# ----------------------------------------------------- maintenance rig


@pytest.fixture(scope="module")
def experiment():
    with TeradataStyleExperiment(
        num_nodes=4, scale=0.002, with_global_indexes=True
    ) as exp:
        yield exp


def test_jv1_methods_agree_on_result_size(experiment):
    delta = experiment.new_delta(32)
    naive = experiment.naive_jv1(delta)
    ar = experiment.ar_jv1(delta)
    gi = experiment.gi_jv1(delta)
    assert naive.result_rows == ar.result_rows == gi.result_rows == 32


def test_jv2_methods_agree_on_result_size(experiment):
    delta = experiment.new_delta(16)
    naive = experiment.naive_jv2(delta)
    ar = experiment.ar_jv2(delta)
    assert naive.result_rows == ar.result_rows == 16 * 4


def test_jv1_join_rows_identical_across_methods(experiment):
    delta = experiment.new_delta(8)
    experiment.naive_jv1(delta)
    naive_rows = Counter(map(tuple, experiment._collect_naive_jv1()))
    experiment.ar_jv1(delta)
    ar_rows = Counter(map(tuple, experiment._collect_ar_jv1()))
    assert naive_rows == ar_rows


def test_gi_requires_flag():
    with TeradataStyleExperiment(num_nodes=2, scale=0.001) as exp:
        with pytest.raises(RuntimeError):
            exp.gi_jv1(exp.new_delta(1))


def test_full_maintenance_matches_recompute():
    with TeradataStyleExperiment(num_nodes=2, scale=0.001) as exp:
        exp.materialize_jv1()
        before = exp.cluster.count("jv1")
        delta = exp.new_delta(8)
        exp.maintain_jv1_insert(delta, method="auxiliary")
        assert exp.cluster.count("jv1") == before + 8
        # Recompute from scratch and compare contents (bag equality).
        recomputed = []
        for node in exp.cluster.nodes:
            recomputed.extend(
                map(tuple, node.query(
                    "SELECT c.custkey, c.acctbal, o.orderkey, o.totalprice "
                    "FROM customer c JOIN orders o ON c.custkey = o.custkey"
                ))
            )
        # The naive join reads only local orders fragments per node, so
        # gather it cluster-wide via broadcast of the full customer table:
        full = Counter()
        customers = exp.cluster.all_rows("customer")
        orders_by_custkey = {}
        for okey, ckey, price, _ in exp.cluster.all_rows("orders"):
            orders_by_custkey.setdefault(ckey, []).append((okey, price))
        for custkey, acctbal, _, _ in customers:
            for okey, price in orders_by_custkey.get(custkey, []):
                full[(custkey, acctbal, okey, price)] += 1
        assert Counter(map(tuple, exp.cluster.all_rows("jv1"))) == full


def test_unsupported_method_rejected():
    with TeradataStyleExperiment(num_nodes=2, scale=0.001) as exp:
        exp.materialize_jv1()
        with pytest.raises(ValueError):
            exp.maintain_jv1_insert(exp.new_delta(1), method="zzz")
