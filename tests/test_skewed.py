"""Tests for the skewed-workload module."""

from collections import Counter

import pytest

from repro import recompute_view
from repro.workloads import SkewedJoinWorkload, build_skewed_cluster, zipf_weights


def test_zipf_weights_normalized():
    weights = zipf_weights(100, 1.2)
    assert sum(weights) == pytest.approx(1.0)
    assert weights == sorted(weights, reverse=True)


def test_zipf_zero_skew_is_uniform():
    weights = zipf_weights(10, 0.0)
    assert all(w == pytest.approx(0.1) for w in weights)


def test_zipf_validation():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(10, -0.1)
    with pytest.raises(ValueError):
        SkewedJoinWorkload(num_keys=0)


def test_b_side_matches_uniform_twin():
    workload = SkewedJoinWorkload(num_keys=8, fanout=3, skew=1.5)
    assert workload.b_rows() == workload.uniform_twin.b_rows()


def test_a_rows_deterministic_and_in_key_space():
    workload = SkewedJoinWorkload(num_keys=16, skew=1.0, seed=9)
    first = workload.a_rows(50)
    second = workload.a_rows(50)
    assert first == second
    assert all(0 <= row[1] < 16 for row in first)
    # Serials are unique (they double as the partitioning attribute).
    assert len({row[0] for row in first}) == 50


def test_hot_key_share_grows_with_skew():
    shares = [
        SkewedJoinWorkload(num_keys=64, skew=skew).hot_key_share(2_000)
        for skew in (0.0, 1.0, 2.0)
    ]
    assert shares == sorted(shares)
    assert shares[-1] > 0.3


def test_skewed_maintenance_stays_correct():
    workload = SkewedJoinWorkload(num_keys=16, fanout=2, skew=1.5)
    cluster = build_skewed_cluster(workload, num_nodes=4, method="auxiliary")
    cluster.insert("A", workload.a_rows(30))
    assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_skew_inflates_ar_response():
    flat = SkewedJoinWorkload(num_keys=64, fanout=2, skew=0.0)
    hot = SkewedJoinWorkload(num_keys=64, fanout=2, skew=2.0)
    responses = {}
    for name, workload in (("flat", flat), ("hot", hot)):
        cluster = build_skewed_cluster(workload, num_nodes=16, method="auxiliary")
        snapshot = cluster.insert("A", workload.a_rows(256))
        responses[name] = snapshot.maintenance_response_time()
    assert responses["hot"] > 2 * responses["flat"]
