"""Elastic membership: online join/leave, charged migration, replication.

ISSUE 6's tentpole.  Every topology change must (a) leave all derived
state convergent (the :class:`ConsistencyAuditor` recomputes it from
scratch), (b) bill each relocated row as one modeled SEND plus one
INSERT-weight write under ``Tag.MIGRATE``, and (c) never perturb the
fault-free fixed-topology ledger — pinned here by building the same
workload twice and diffing cells bit-for-bit.
"""

import pytest

from repro import Cluster, Schema
from repro.cluster import ConsistentHashPartitioning, Rebalancer
from repro.cluster.membership import available_rows
from repro.core.deferred import defer_view
from repro.costs import Op, Tag
from repro.costs.ledger import format_cell_diff
from repro.faults import (
    ConsistencyAuditor,
    FaultPlan,
    NodeDown,
    attach_faults,
)
from tests.conftest import make_view


def build(method="auxiliary", num_nodes=3, sanitize=True, **kwargs):
    cluster = Cluster(num_nodes=num_nodes, sanitize=sanitize, **kwargs)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.insert("A", [(i, i % 5, f"e{i}") for i in range(15)])
    make_view(cluster, method, strategy="inl")
    return cluster


def assert_consistent(cluster):
    report = ConsistencyAuditor(cluster).audit()
    assert report.ok, report.summary()


def view_bag(cluster):
    from collections import Counter

    return Counter(cluster.view_rows("JV"))


# ----------------------------------------------------------------- join


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_add_node_preserves_all_derived_state(method):
    cluster = build(method)
    before = view_bag(cluster)
    report = cluster.add_node()
    assert cluster.num_nodes == 4
    assert len(cluster.nodes) == 4
    assert report.kind == "join"
    assert report.moved_rows > 0
    assert view_bag(cluster) == before
    assert_consistent(cluster)


def test_add_node_charges_migration_sends_and_writes():
    cluster = build()
    snap_before = cluster.ledger.snapshot()
    assert snap_before.total_workload(tags=[Tag.MIGRATE]) == 0
    report = cluster.add_node()
    snap = cluster.ledger.snapshot()
    migrate_ios = snap.total_workload(tags=[Tag.MIGRATE])
    assert migrate_ios > 0
    # Each migrated row costs exactly one SEND plus two INSERT-weight
    # writes (the handoff delete at the source and the insert at the
    # destination); the join announcement broadcast adds one SEND per node.
    sends = sum(
        count
        for (_n, op, tag), count in cluster.ledger._cells.items()
        if tag is Tag.MIGRATE and op is Op.SEND
    )
    writes = sum(
        count
        for (_n, op, tag), count in cluster.ledger._cells.items()
        if tag is Tag.MIGRATE and op is Op.INSERT
    )
    assert writes == 2 * report.moved_rows
    assert sends == report.moved_rows + cluster.num_nodes


def test_add_node_extends_topology_state():
    cluster = build()
    cluster.add_node()
    membership = cluster.membership
    assert membership.tokens == [0, 1, 2, 3]
    assert membership.epoch == 1
    assert [e.kind for e in membership.events] == ["join"]
    assert cluster.peak_num_nodes == 4
    # The new node carries every fragment and index the others do.
    new = cluster.nodes[3]
    for name in ("A", "B", "JV"):
        assert new.has_fragment(name)


def test_add_node_then_updates_flow_through_new_node():
    cluster = build()
    cluster.add_node()
    cluster.insert("A", [(100 + i, i % 5, "post-join") for i in range(20)])
    cluster.delete("A", [(3, 3, "e3")])
    assert_consistent(cluster)
    # Modulo partitioning over 4 nodes now homes key 103 at node 3.
    assert any(row[0] == 103 for row in cluster.nodes[3].scan("A"))


# ---------------------------------------------------------------- leave


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_remove_node_preserves_all_derived_state(method):
    cluster = build(method)
    before = view_bag(cluster)
    report = cluster.remove_node(1)
    assert cluster.num_nodes == 2
    assert report.kind == "leave"
    assert report.moved_rows > 0
    assert view_bag(cluster) == before
    assert_consistent(cluster)
    # Dense renumbering: surviving ids are exactly 0..L-1 again.
    assert [node.node_id for node in cluster.nodes] == [0, 1]
    assert cluster.membership.tokens == [0, 2]


def test_remove_node_validates_arguments():
    cluster = build(num_nodes=2)
    with pytest.raises(ValueError):
        cluster.remove_node(7)
    cluster.remove_node(1)
    with pytest.raises(ValueError):
        cluster.remove_node(0)  # a cluster keeps at least one node


def test_join_then_leave_round_trip_converges():
    cluster = build()
    before = view_bag(cluster)
    cluster.add_node()
    cluster.remove_node(0)
    cluster.add_node()
    assert view_bag(cluster) == before
    assert_consistent(cluster)
    # Tokens never recycle: node 0's token 0 is gone for good.
    assert cluster.membership.tokens == [1, 2, 3, 4]


def test_membership_change_flushes_deferred_views():
    cluster = build()
    wrapper = defer_view(cluster, "JV")
    cluster.insert("A", [(200, 1, "queued")])
    assert wrapper.is_stale
    cluster.add_node()
    assert not wrapper.is_stale  # flushed before fragments moved
    assert_consistent(cluster)


def test_membership_change_refused_inside_transaction():
    cluster = build()
    controller = attach_faults(cluster, plan=FaultPlan())
    with pytest.raises(RuntimeError):
        with controller.atomic("scope"):
            cluster.add_node()


# ----------------------------------------------------------- replication


def test_enable_replication_initial_build_is_uncharged():
    cluster = build()
    cells_before = dict(cluster.ledger._cells)
    cluster.enable_replication(k=2)
    assert dict(cluster.ledger._cells) == cells_before
    assert cluster.membership.replication == 2
    # Every fragment has a bag on its ring successor.
    findings = ConsistencyAuditor(cluster).audit_replicas()
    assert findings == []


def test_enable_replication_twice_rejected():
    cluster = build()
    cluster.enable_replication()
    with pytest.raises(RuntimeError):
        cluster.enable_replication()
    cluster.disable_replication()
    cluster.enable_replication(k=3)
    assert cluster.replicator.k == 3


def test_replicated_writes_charge_replica_tag():
    cluster = build()
    cluster.enable_replication(k=2)
    cluster.insert("A", [(300, 2, "x"), (301, 3, "y")])
    sends = sum(
        count
        for (_n, op, tag), count in cluster.ledger._cells.items()
        if tag is Tag.REPLICA and op is Op.SEND
    )
    assert sends > 0
    assert_consistent(cluster)


def test_replication_survives_membership_changes():
    cluster = build()
    cluster.enable_replication(k=2)
    cluster.add_node()
    assert_consistent(cluster)
    cluster.remove_node(2)
    assert_consistent(cluster)
    cluster.insert("A", [(400, 1, "after")])
    assert_consistent(cluster)


def test_rolled_back_statement_leaves_replicas_exact():
    cluster = build(method="auxiliary")
    cluster.enable_replication(k=2)
    controller = attach_faults(cluster, plan=FaultPlan())
    # atomic() rolls back on FaultError; a synthetic NodeDown stands in
    # for any mid-transaction fault after the insert fully applied.
    with pytest.raises(NodeDown):
        with controller.atomic("doomed"):
            cluster.insert("A", [(500, 4, "phantom")])
            raise NodeDown(0, "synthetic abort")
    assert all(row[0] != 500 for row in cluster.scan_relation("A"))
    assert_consistent(cluster)


def test_available_rows_serves_crashed_node_from_replica():
    cluster = build()
    cluster.enable_replication(k=2)
    whole = sorted(cluster.scan_relation("A"))
    attach_faults(cluster, plan=FaultPlan().crash(node=1, after_messages=0))
    cluster.faults.injector.on_message(0, 2)  # trip the crash gate
    assert cluster.faults.injector.is_down(1)
    fetches_before = sum(
        count
        for (_n, op, tag), count in cluster.ledger._cells.items()
        if op is Op.FETCH and tag is Tag.QUERY
    )
    rows = sorted(available_rows(cluster, "A"))
    assert rows == whole  # nothing lost: the replica bag fills the hole
    fetches_after = sum(
        count
        for (_n, op, tag), count in cluster.ledger._cells.items()
        if op is Op.FETCH and tag is Tag.QUERY
    )
    served = len(cluster.nodes[2].replica_rows(1, "A"))
    assert fetches_after - fetches_before == served > 0


def test_available_rows_without_replication_raises_on_down_node():
    cluster = build()
    attach_faults(cluster, plan=FaultPlan().crash(node=1, after_messages=0))
    cluster.faults.injector.on_message(0, 2)
    with pytest.raises(NodeDown):
        available_rows(cluster, "A")


# ------------------------------------------------- fixed-topology identity


def test_fixed_topology_ledger_untouched_by_elastic_machinery():
    """A cluster that never joins/leaves/replicates charges exactly what
    an identically-driven cluster does — the elastic layer is free until
    used."""

    def run():
        cluster = build(sanitize=False)
        cluster.insert("A", [(600 + i, i % 5, "w") for i in range(10)])
        cluster.delete("B", [(4, 4, "f4")])
        return cluster

    first, second = run(), run()
    diff = first.ledger.diff(second.ledger)
    assert not diff, format_cell_diff(diff)
    assert first.membership.epoch == 0
    assert first.membership.events == []


# ------------------------------------------------------------- rebalancer


def rebalance_cluster():
    cluster = Cluster(num_nodes=4, sanitize=True)
    cluster.create_relation(
        Schema.of("R", "k", "v"), partitioned_on="k",
        spec=ConsistentHashPartitioning("k"),
    )
    cluster.insert("R", [(i, f"v{i}") for i in range(300)])
    return cluster


def test_rebalancer_quiet_when_balanced():
    cluster = rebalance_cluster()
    rebalancer = Rebalancer(cluster, skew_threshold=10.0)
    assert rebalancer.propose() is None
    assert rebalancer.run_once() is None


def test_rebalancer_shifts_weight_from_hot_node():
    cluster = rebalance_cluster()
    # Make node 0 artificially hot in the ledger's per-node I/O signal.
    for _ in range(40):
        cluster.ledger.charge(0, Op.SCAN_PAGE, Tag.QUERY, count=100)
    rebalancer = Rebalancer(cluster, skew_threshold=1.2, step=8)
    proposal = rebalancer.propose()
    assert proposal is not None
    assert proposal.hot_node == 0
    report = rebalancer.execute(proposal)
    assert report.moved_rows > 0
    hot_token = cluster.membership.tokens[0]
    assert cluster.membership.weights[hot_token] < 64
    snap = cluster.ledger.snapshot()
    assert snap.total_workload(tags=[Tag.MIGRATE]) > 0
    report = ConsistencyAuditor(cluster).audit()
    assert report.ok, report.summary()


def test_rebalancer_ignores_modulo_partitioned_clusters():
    cluster = build()  # modulo-hash relations only
    for _ in range(40):
        cluster.ledger.charge(0, Op.SCAN_PAGE, Tag.QUERY, count=100)
    rebalancer = Rebalancer(cluster, skew_threshold=1.2)
    assert rebalancer.propose() is None


def test_rebalanced_ring_survives_later_membership_changes():
    cluster = rebalance_cluster()
    for _ in range(40):
        cluster.ledger.charge(0, Op.SCAN_PAGE, Tag.QUERY, count=100)
    Rebalancer(cluster, skew_threshold=1.2, step=8).run_once()
    cluster.add_node()
    cluster.remove_node(0)
    report = ConsistencyAuditor(cluster).audit()
    assert report.ok, report.summary()
