"""Unit tests for the model-vs-simulator validation grid."""

import pytest

from repro.bench.validation import _ratio, validation_grid
from repro.model import ALL_VARIANTS


def test_ratio_helper():
    assert _ratio(2.0, 2.0) == 1.0
    assert _ratio(2.0, 4.0) == 2.0
    assert _ratio(4.0, 2.0) == 2.0
    assert _ratio(0.0, 1.0) == float("inf")
    assert _ratio(0.0, 0.0) == 1.0


def test_small_grid_is_exact():
    result = validation_grid(node_counts=(1, 3, 6), fanouts=(1, 5), batch=24)
    assert len(result.rows) == len(ALL_VARIANTS)
    for row in result.rows:
        assert row[1] == pytest.approx(1.0)
        assert row[2] == pytest.approx(1.0)
    assert "30 runs" in result.title  # 3 node counts x 2 fanouts x 5 variants


def test_grid_reports_every_variant():
    result = validation_grid(node_counts=(2,), fanouts=(2,), batch=8)
    assert {row[0] for row in result.rows} == {v.value for v in ALL_VARIANTS}
