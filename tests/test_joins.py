"""Tests for repro.joins (algorithms and regime chooser)."""

import pytest

from repro.joins import (
    JoinSituation,
    choose,
    crossover_outer_rows,
    hash_join,
    index_nested_loops_join,
    sort_merge_join,
)
from repro.joins.nested_loops import estimate_cost_ios as inl_cost
from repro.joins.sort_merge import estimate_cost_ios as sm_cost
from repro.joins.hash_join import estimate_cost_ios as hj_cost
from repro.storage.heap import HeapTable
from repro.storage.index import IndexedHeap
from repro.storage.pages import PageLayout
from repro.storage.schema import Schema


def build_inner(rows, clustered=False):
    heap = IndexedHeap(HeapTable(Schema.of("B", "d", "f")))
    index = heap.create_index("d", clustered=clustered)
    for row in rows:
        heap.insert(row)
    return index


OUTER = [(10, 1), (20, 2), (30, 3)]
INNER = [(1, "a"), (1, "b"), (2, "c"), (9, "z")]
EXPECTED = {((10, 1), (1, "a")), ((10, 1), (1, "b")), ((20, 2), (2, "c"))}


def test_index_nested_loops_results():
    index = build_inner(INNER)
    results = index_nested_loops_join(OUTER, lambda r: r[1], index)
    assert set(results) == EXPECTED


def test_index_nested_loops_accounting_nonclustered():
    index = build_inner(INNER, clustered=False)
    searches, fetches = [], []
    index_nested_loops_join(
        OUTER, lambda r: r[1], index,
        on_search=lambda: searches.append(1),
        on_fetch=fetches.append,
    )
    assert len(searches) == 3
    assert sum(fetches) == 3  # (1,a),(1,b) then (2,c)


def test_index_nested_loops_accounting_clustered_no_fetch():
    index = build_inner(INNER, clustered=True)
    fetches = []
    index_nested_loops_join(
        OUTER, lambda r: r[1], index, on_fetch=fetches.append
    )
    assert fetches == []


def test_sort_merge_results_match_inl():
    results = sort_merge_join(OUTER, lambda r: r[1], INNER, lambda r: r[0])
    assert set(results) == EXPECTED


def test_sort_merge_duplicate_cross_product():
    left = [(1,), (1,)]
    right = [(1, "x"), (1, "y")]
    results = sort_merge_join(left, lambda r: r[0], right, lambda r: r[0])
    assert len(results) == 4


def test_sort_merge_empty_inputs():
    assert sort_merge_join([], lambda r: r, INNER, lambda r: r[0]) == []
    assert sort_merge_join(OUTER, lambda r: r[1], [], lambda r: r) == []


def test_hash_join_results_match():
    results = hash_join(INNER, lambda r: r[0], OUTER, lambda r: r[1])
    assert set(results) == EXPECTED


def test_all_three_algorithms_agree():
    inl = set(index_nested_loops_join(OUTER, lambda r: r[1], build_inner(INNER)))
    sm = set(sort_merge_join(OUTER, lambda r: r[1], INNER, lambda r: r[0]))
    hj = set(hash_join(INNER, lambda r: r[0], OUTER, lambda r: r[1]))
    assert inl == sm == hj


def test_inl_cost_estimate():
    assert inl_cost(100, fanout=2.0, clustered=False) == 300.0
    assert inl_cost(100, fanout=2.0, clustered=True) == 100.0
    with pytest.raises(ValueError):
        inl_cost(-1, 1.0, True)


def test_sm_cost_estimate():
    layout = PageLayout(tuples_per_page=1, memory_pages=10)
    assert sm_cost(5, layout, clustered=True) == 5.0
    assert sm_cost(100, layout, clustered=False) == layout.sort_cost_pages(100)
    with pytest.raises(NotImplementedError):
        sm_cost(5, layout, clustered=True, delta_fits_memory=False)


def test_hash_join_cost_estimate():
    layout = PageLayout(tuples_per_page=1, memory_pages=10)
    assert hj_cost(5, layout) == 5.0
    assert hj_cost(100, layout) == 300.0
    assert hj_cost(100, layout, fits_memory=True) == 100.0


def test_chooser_small_delta_inl():
    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    choice = choose(JoinSituation(1, 1.0, 1_000, True, layout))
    assert choice.algorithm == "index_nested_loops"
    assert choice.winner_ios == choice.inl_ios


def test_chooser_large_delta_sort_merge():
    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    choice = choose(JoinSituation(10_000, 1.0, 1_000, True, layout))
    assert choice.algorithm == "sort_merge"


def test_crossover_boundary():
    layout = PageLayout(tuples_per_page=1, memory_pages=100)
    crossover = crossover_outer_rows(1.0, 1_000, True, layout)
    before = choose(JoinSituation(crossover - 1, 1.0, 1_000, True, layout))
    after = choose(JoinSituation(crossover, 1.0, 1_000, True, layout))
    assert before.algorithm == "index_nested_loops"
    assert after.algorithm == "sort_merge"
