"""Tests for define_join_view options and less-travelled registry paths."""

from collections import Counter

import pytest

from repro import (
    Cluster,
    HashPartitioning,
    JoinStrategy,
    MaintenanceMethod,
    Schema,
    recompute_view,
    two_way_view,
)
from repro.core import StatisticsCache, defer_view
from repro.core.view import JoinCondition, JoinViewDefinition


def test_method_coercion():
    assert MaintenanceMethod.coerce("naive") is MaintenanceMethod.NAIVE
    assert MaintenanceMethod.coerce(MaintenanceMethod.HYBRID) is MaintenanceMethod.HYBRID
    with pytest.raises(ValueError, match="unknown maintenance method"):
        MaintenanceMethod.coerce("bogus")


def test_strategy_string_coercion(ab_cluster):
    view = ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"), method="naive", strategy="inl"
    )
    assert view.maintainer.strategy is JoinStrategy.INDEX_NESTED_LOOPS


def test_initial_load_false_starts_empty(ab_cluster):
    ab_cluster.insert("A", [(1, 2, "x")])  # pre-existing matching data
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"),
        method="naive",
        initial_load=False,
    )
    assert ab_cluster.view_rows("JV") == []
    # Later deltas still maintain incrementally (view stays "behind" by
    # exactly the skipped initial contents).
    ab_cluster.insert("A", [(2, 3, "y")])
    assert len(ab_cluster.view_rows("JV")) == 4


def test_initial_load_true_materializes_existing(ab_cluster):
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"), method="naive"
    )
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")
    assert len(ab_cluster.view_rows("JV")) == 4


def test_shared_statistics_cache(ab_cluster):
    statistics = StatisticsCache(ab_cluster)
    view = ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"),
        method="naive",
        statistics=statistics,
    )
    assert view.maintainer.planner.statistics is statistics


def test_view_on_unknown_relation_rejected():
    cluster = Cluster(2)
    cluster.create_relation(Schema.of("A", "a", "c"), partitioned_on="a")
    with pytest.raises(KeyError):
        cluster.create_join_view(
            two_way_view("JV", "A", "c", "NOPE", "d"), method="naive"
        )


def test_duplicate_view_name_rejected(ab_cluster):
    ab_cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d"), method="naive"
    )
    with pytest.raises(ValueError, match="already in use"):
        ab_cluster.create_join_view(
            two_way_view("JV", "A", "c", "B", "d"), method="naive"
        )


def test_triangle_with_forced_sort_merge():
    """Cyclic extra filters must also hold on the batch (sort-merge) path."""
    a = Schema.of("A", "x", "y", "pa")
    b = Schema.of("B", "y2", "z", "pb")
    c = Schema.of("C", "z2", "x2", "pc")
    definition = JoinViewDefinition(
        name="TRI",
        relations=("A", "B", "C"),
        conditions=(
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
        select=(("A", "x"), ("B", "z")),
    )
    cluster = Cluster(3)
    cluster.create_relation(a, partitioned_on="pa")
    cluster.create_relation(b, partitioned_on="pb")
    cluster.create_relation(c, partitioned_on="pc")
    cluster.insert("B", [(10, 99, 0), (10, 77, 1), (20, 99, 2)])
    cluster.insert("C", [(99, 1, 0), (99, 2, 1), (77, 1, 2)])
    cluster.create_join_view(definition, method="auxiliary", strategy="sort_merge")
    cluster.insert("A", [(1, 10, 0), (2, 10, 1), (3, 20, 2)])
    assert Counter(cluster.view_rows("TRI")) == recompute_view(cluster, "TRI")


def test_deferred_aggregate_view():
    """Deferred maintenance composes with aggregate views."""
    from repro.core import (
        Aggregate,
        AggregateFunction,
        AggregateSpec,
        aggregate_rows,
        define_aggregate_join_view,
        recompute_aggregate,
    )

    cluster = Cluster(3)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 2, float(i)) for i in range(6)])
    define_aggregate_join_view(
        cluster,
        two_way_view("AGG", "A", "c", "B", "d"),
        AggregateSpec(
            group_by=(("B", "d"),),
            aggregates=(Aggregate(AggregateFunction.COUNT, "n"),),
        ),
    )
    wrapper = defer_view(cluster, "AGG")
    cluster.insert("A", [(1, 0, "x")])
    cluster.insert("A", [(2, 1, "y")])
    assert aggregate_rows(cluster, "AGG") == []  # stale
    wrapper.refresh()
    assert sorted(aggregate_rows(cluster, "AGG")) == sorted(
        recompute_aggregate(cluster, "AGG")
    )
