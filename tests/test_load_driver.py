"""Open-loop load driver (repro.obs.load).

The acceptance-critical pin lives here: measurement must be charge-neutral.
Running the identical seeded schedule with wall-clock measurement on
(observability attached, histogram + time-series collection live) versus
off must leave ledger cells, network statistics, and fragment contents
bit-identical for every method × eager/deferred × worker count.
"""

import pytest

from repro.core.deferred import defer_view
from repro.costs.ledger import format_cell_diff
from repro.obs.collect import attach_observability
from repro.obs.load import (
    build_schedule,
    execute_schedule,
    find_knee,
    latency_summary,
    open_loop_from_arrivals,
    open_loop_latencies,
)
from repro.obs.timeseries import TimeSeriesCollector
from repro.workloads.skewed import SkewedJoinWorkload, build_skewed_cluster

METHODS = ("naive", "auxiliary", "global_index")
MODES = ("eager", "deferred")
WORKER_COUNTS = (1, 2)
SEED = 412


def _workload():
    return SkewedJoinWorkload(num_keys=12, fanout=2, skew=1.2, seed=SEED)


def _schedule(deferred: bool):
    return build_schedule(
        _workload(),
        total_ops=18,
        statement_size=4,
        read_fraction=0.3,
        seed=SEED,
        deferred=deferred,
    )


def _build(method: str, workers: int):
    cluster = build_skewed_cluster(
        _workload(), num_nodes=4, method=method, strategy="inl"
    )
    if workers:
        cluster.workers = workers
    return cluster


def _run(method: str, mode: str, workers: int, measure: bool):
    cluster = _build(method, workers)
    wrapper = None
    if mode == "deferred":
        wrapper = defer_view(cluster, "JV", flush_threshold=8)
    if measure:
        obs = attach_observability(cluster)
        collector = TimeSeriesCollector(lambda: obs.metrics)
        registry = obs.metrics
    else:
        collector = registry = None
    try:
        timings = execute_schedule(
            cluster,
            _schedule(mode == "deferred"),
            refresh=wrapper.refresh if wrapper is not None else None,
            measure=measure,
            registry=registry,
            collector=collector,
            cadence=4,
            method=method,
        )
        state = _cluster_state(cluster)
    finally:
        cluster.close()
    return cluster, timings, state


def _network_state(cluster):
    stats = cluster.network.stats
    return (
        stats.messages,
        stats.local_deliveries,
        dict(stats.by_link),
        stats.drops,
        stats.duplicates,
        stats.retries,
        stats.backoff_slots,
    )


def _fragment_contents(cluster, name):
    return {
        node.node_id: node.scan(name)
        for node in cluster.nodes
        if node.has_fragment(name)
    }


def _cluster_state(cluster):
    return {
        "network": _network_state(cluster),
        "fragments": {
            name: _fragment_contents(cluster, name) for name in ("A", "B", "JV")
        },
    }


# --------------------------------------------------------------- schedule


def test_schedule_is_deterministic_in_seed():
    first = _schedule(deferred=False)
    second = _schedule(deferred=False)
    assert first == second
    different = build_schedule(
        _workload(), total_ops=18, statement_size=4,
        read_fraction=0.3, seed=SEED + 1,
    )
    assert different != first


def test_schedule_mixes_updates_and_reads():
    schedule = _schedule(deferred=False)
    kinds = {op.kind for op in schedule}
    assert kinds == {"update", "read"}
    assert all(op.rows for op in schedule if op.kind == "update")
    assert all(op.query is not None for op in schedule if op.kind == "read")


def test_deferred_schedule_appends_refresh():
    schedule = _schedule(deferred=True)
    assert schedule[-1].kind == "refresh"
    assert sum(1 for op in schedule if op.kind == "refresh") == 1


def test_refresh_without_hook_rejected():
    cluster = _build("auxiliary", workers=0)
    try:
        with pytest.raises(ValueError):
            execute_schedule(cluster, _schedule(deferred=True), refresh=None)
    finally:
        cluster.close()


# ----------------------------------------------- bit-identity acceptance


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("method", METHODS)
def test_measurement_is_charge_neutral(method, mode, workers):
    """Ledger cells, network stats, and fragment contents are identical
    with measurement on or off — the driver wraps calls, never steers."""
    measured_cluster, measured_timings, measured_state = _run(
        method, mode, workers, measure=True
    )
    control_cluster, control_timings, control_state = _run(
        method, mode, workers, measure=False
    )
    cell_diff = measured_cluster.ledger.diff(control_cluster.ledger)
    assert not cell_diff, (
        "measured vs unmeasured ledger cells diverge "
        f"(measured - control):\n{format_cell_diff(cell_diff)}"
    )
    assert measured_state == control_state
    assert [t.kind for t in measured_timings] == [
        t.kind for t in control_timings
    ]
    assert all(t.seconds > 0 for t in measured_timings)
    assert all(t.seconds == 0.0 for t in control_timings)


def test_measured_run_populates_observability():
    cluster = _build("auxiliary", workers=0)
    wrapper = defer_view(cluster, "JV", flush_threshold=8)
    obs = attach_observability(cluster)
    collector = TimeSeriesCollector(lambda: obs.metrics)
    try:
        execute_schedule(
            cluster,
            _schedule(deferred=True),
            refresh=wrapper.refresh,
            registry=obs.metrics,
            collector=collector,
            cadence=4,
        )
        histogram = obs.metrics.get("repro_stmt_latency_seconds")
        assert histogram is not None
        # The driver labels ops by kind; the engine hook points observe the
        # same histogram under their own kinds via the span timestamps.
        assert histogram.count(kind="update") > 0
        assert histogram.count(kind="read") > 0
        assert histogram.count(kind="statement", relation="A") > 0
        assert histogram.count(kind="deferred_refresh", view="JV") > 0
        ops = obs.metrics.get("repro_load_ops_total")
        assert ops.get(kind="update") + ops.get(kind="read") + ops.get(
            kind="refresh"
        ) == len(_schedule(deferred=True))
        # Query roots exist in the tracer (the read path now runs inside
        # "query" spans), and sampling happened on the op-count cadence.
        assert any(root.name == "query" for root in obs.tracer.roots)
        assert len(collector) >= 2
    finally:
        cluster.close()


def test_query_latency_kinds_cover_plans():
    """Both read plans — base join and view probe/scan — observe latency."""
    cluster = _build("auxiliary", workers=0)
    obs = attach_observability(cluster)
    try:
        execute_schedule(
            cluster,
            _schedule(deferred=False),
            registry=obs.metrics,
        )
        histogram = obs.metrics.get("repro_stmt_latency_seconds")
        plans = {
            dict(key).get("plan")
            for key in histogram._totals
            if dict(key).get("kind") == "query"
        }
        assert plans & {"base_join", "view_probe", "view_scan"}
    finally:
        cluster.close()


# ---------------------------------------------------------- queue replay


def test_open_loop_queue_hand_computed():
    """arrivals [0,1,2] + service [0.5,2,0.5]: the third op waits behind
    the second (finish 3.0), so latencies are [0.5, 2.0, 1.5]."""
    latencies = open_loop_from_arrivals([0.5, 2.0, 0.5], [0.0, 1.0, 2.0])
    assert latencies == [0.5, 2.0, 1.5]


def test_open_loop_rejects_misaligned_inputs():
    with pytest.raises(ValueError):
        open_loop_from_arrivals([1.0], [0.0, 1.0])
    with pytest.raises(ValueError):
        open_loop_latencies([1.0], arrival_rate=0.0, seed=1)


def test_open_loop_latency_grows_with_rate():
    """Same seed: arrivals scale inversely with the rate, so every sojourn
    time is monotone in offered load."""
    service = [0.01] * 200
    slow = open_loop_latencies(service, arrival_rate=10.0, seed=5)
    fast = open_loop_latencies(service, arrival_rate=200.0, seed=5)
    assert all(f >= s for s, f in zip(slow, fast))
    assert latency_summary(fast)["p99"] > latency_summary(slow)["p99"]


def test_latency_summary_shape():
    summary = latency_summary([0.001, 0.002, 0.004, 0.1])
    assert set(summary) == {"p50", "p95", "p99", "max", "mean"}
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
    assert summary["max"] == 0.1
    with pytest.raises(ValueError):
        latency_summary([])


def test_find_knee():
    assert find_knee([1, 2, 4, 8], [1.0, 1.0, 2.0, 100.0], 8.0) == 4
    assert find_knee([1, 2], [1.0, 1.0], 8.0) == 2  # never blows inside sweep
    assert find_knee([], [], 8.0) is None
    assert find_knee([1, 2], [1.0], 8.0) is None  # misaligned
