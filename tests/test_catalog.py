"""Tests for repro.cluster.catalog."""

import pytest

from repro.cluster.catalog import (
    AuxiliaryRelationInfo,
    Catalog,
    GlobalIndexInfo,
    RelationInfo,
)
from repro.cluster.partitioning import HashPartitioning
from repro.storage.schema import Schema


def make_relation(name="R", partition="k"):
    schema = Schema.of(name, "k", "v")
    spec = HashPartitioning(partition)
    return RelationInfo(schema=schema, spec=spec, partitioner=spec.bind(schema, 4))


def test_add_and_lookup_relation():
    catalog = Catalog()
    info = make_relation()
    catalog.add_relation(info)
    assert catalog.relation("R") is info
    assert info.partition_column == "k"
    assert info.is_partitioned_on("k")
    assert not info.is_partitioned_on("v")


def test_unknown_lookups_raise():
    catalog = Catalog()
    with pytest.raises(KeyError, match="unknown relation"):
        catalog.relation("R")
    with pytest.raises(KeyError, match="unknown auxiliary"):
        catalog.auxiliary("AR")
    with pytest.raises(KeyError, match="unknown global index"):
        catalog.global_index("GI")
    with pytest.raises(KeyError, match="unknown view"):
        catalog.view("V")


def test_name_collision_rejected():
    catalog = Catalog()
    catalog.add_relation(make_relation())
    with pytest.raises(ValueError, match="already in use"):
        catalog.add_relation(make_relation())


def test_auxiliary_requires_base():
    catalog = Catalog()
    schema = Schema.of("AR_R_v", "v", "k")
    spec = HashPartitioning("v")
    info = AuxiliaryRelationInfo(
        name="AR_R_v", base="R", column="v", schema=schema,
        partitioner=spec.bind(schema, 4),
    )
    with pytest.raises(KeyError, match="unknown base"):
        catalog.add_auxiliary(info)
    catalog.add_relation(make_relation())
    catalog.add_auxiliary(info)
    assert catalog.auxiliaries_of("R") == [info]
    assert catalog.find_auxiliary("R", "v") is info
    assert catalog.find_auxiliary("R", "k") is None


def test_global_index_reverse_map():
    catalog = Catalog()
    catalog.add_relation(make_relation())
    info = GlobalIndexInfo(
        name="GI_R_v", base="R", column="v",
        distributed_clustered=False, key_position=1, num_nodes=4,
    )
    catalog.add_global_index(info)
    assert catalog.global_indexes_of("R") == [info]
    assert catalog.find_global_index("R", "v") is info
    assert catalog.find_global_index("R", "k") is None


def test_gi_home_node_stable():
    info = GlobalIndexInfo(
        name="GI", base="R", column="v",
        distributed_clustered=False, key_position=1, num_nodes=4,
    )
    assert info.home_node(6) == 2
    assert info.home_node(6) == info.home_node(6)


def test_auxiliary_image_respects_predicate_and_projection():
    schema = Schema.of("R", "k", "v")
    ar_schema = schema.project(["v"], name="AR")
    spec = HashPartitioning("v")
    info = AuxiliaryRelationInfo(
        name="AR", base="R", column="v", schema=ar_schema,
        partitioner=spec.bind(ar_schema, 2),
        predicate=lambda row: row[0] > 0,
        project=schema.projector(["v"]),
    )
    assert info.image_of((1, "keep")) == ("keep",)
    assert info.image_of((0, "drop")) is None
