"""Tests for multi-relation view maintenance (paper §2.2)."""

from collections import Counter

import pytest

from repro import Cluster, HashPartitioning, Schema, recompute_view
from repro.cluster.partitioning import RoundRobinPartitioning
from repro.core.view import JoinCondition, JoinViewDefinition

A = Schema.of("A", "a", "c", "e")
B = Schema.of("B", "b", "d", "f")
C = Schema.of("C", "g", "h", "p")

CHAIN = JoinViewDefinition(
    name="JV3",
    relations=("A", "B", "C"),
    conditions=(
        JoinCondition("A", "c", "B", "d"),
        JoinCondition("B", "f", "C", "g"),
    ),
    select=(("A", "a"), ("B", "b"), ("C", "h")),
    partitioning=HashPartitioning("a"),
)


def chain_cluster(method, strategy="auto"):
    cluster = Cluster(4)
    cluster.create_relation(A, partitioned_on="a")
    cluster.create_relation(B, partitioned_on="b")
    cluster.create_relation(C, partitioned_on="p")
    cluster.insert("B", [(i, i % 3, i % 4) for i in range(12)])
    cluster.insert("C", [(i % 4, f"h{i}", i) for i in range(8)])
    cluster.create_join_view(CHAIN, method=method, strategy=strategy)
    return cluster


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_chain_insert_each_relation(method):
    cluster = chain_cluster(method)
    cluster.insert("A", [(1, 0, "x"), (2, 1, "y")])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")
    cluster.insert("B", [(100, 0, 2)])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")
    cluster.insert("C", [(2, "hx", 99)])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_chain_delete_each_relation(method):
    cluster = chain_cluster(method)
    cluster.insert("A", [(1, 0, "x")])
    cluster.delete("B", [(0, 0, 0)])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")
    cluster.delete("A", [(1, 0, "x")])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")
    cluster.delete("C", [(0, "h0", 0)])
    assert Counter(cluster.view_rows("JV3")) == recompute_view(cluster, "JV3")


def test_auxiliary_provisions_per_edge():
    """§2.2's example: B participates in two join edges, so it gets two
    ARs (AR_B1 on d and AR_B2 on f); A and C get one each."""
    cluster = chain_cluster("auxiliary")
    names = set(cluster.catalog.auxiliaries)
    assert names == {"AR_A_c", "AR_B_d", "AR_B_f", "AR_C_g"}


def test_updating_b_co_updates_both_its_ars():
    cluster = chain_cluster("auxiliary")
    cluster.insert("B", [(50, 1, 2)])
    assert (50, 1, 2) in cluster.scan_relation("AR_B_d")
    assert (50, 1, 2) in cluster.scan_relation("AR_B_f")


def test_global_index_provisions_per_edge():
    cluster = chain_cluster("global_index")
    names = set(cluster.catalog.global_indexes)
    assert names == {"GI_A_c", "GI_B_d", "GI_B_f", "GI_C_g"}


def triangle_cluster(method):
    """The paper's cyclic A ⋈ B ⋈ C ⋈ A example."""
    a = Schema.of("A", "x", "y")
    b = Schema.of("B", "y2", "z")
    c = Schema.of("C", "z2", "x2")
    definition = JoinViewDefinition(
        name="TRI",
        relations=("A", "B", "C"),
        conditions=(
            JoinCondition("A", "y", "B", "y2"),
            JoinCondition("B", "z", "C", "z2"),
            JoinCondition("C", "x2", "A", "x"),
        ),
        select=(("A", "x"), ("B", "z"), ("C", "x2")),
        partitioning=RoundRobinPartitioning(),
    )
    cluster = Cluster(3)
    # Partition every relation off its join attributes (worst case).
    cluster.create_relation(a, partitioned_on="x")
    cluster.create_relation(b, partitioned_on="z")
    cluster.create_relation(c, partitioned_on="x2")
    cluster.insert("B", [(10, 99), (10, 77), (20, 99)])
    cluster.insert("C", [(99, 1), (99, 2), (77, 1)])
    cluster.create_join_view(definition, method=method)
    return cluster


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_triangle_closing_edge_filters(method):
    cluster = triangle_cluster(method)
    cluster.insert("A", [(1, 10), (2, 10), (3, 20)])
    assert Counter(cluster.view_rows("TRI")) == recompute_view(cluster, "TRI")
    # A.x=1 joins B(10,99)->C(99,1) and B(10,77)->C(77,1): two results.
    # A.x=2 joins B(10,99)->C(99,2): one result (C(77,2) does not exist).
    # A.x=3 joins B(20,99) but C(99,3) does not exist: zero.
    assert len(cluster.view_rows("TRI")) == 3


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_triangle_updates_on_every_relation(method):
    cluster = triangle_cluster(method)
    cluster.insert("A", [(1, 10)])
    cluster.insert("B", [(30, 88)])
    cluster.insert("C", [(88, 1)])
    assert Counter(cluster.view_rows("TRI")) == recompute_view(cluster, "TRI")
    cluster.delete("C", [(88, 1)])
    assert Counter(cluster.view_rows("TRI")) == recompute_view(cluster, "TRI")


@pytest.mark.parametrize("method", ["naive", "auxiliary", "global_index"])
def test_four_way_chain(method):
    """The §2.2 algorithm scales past three relations: a 4-relation chain
    maintained from a delta at either end and from the middle."""
    d_schema = Schema.of("D", "q", "r")
    definition = JoinViewDefinition(
        name="JV4",
        relations=("A", "B", "C", "D"),
        conditions=(
            JoinCondition("A", "c", "B", "d"),
            JoinCondition("B", "f", "C", "g"),
            JoinCondition("C", "h", "D", "q"),
        ),
        select=(("A", "a"), ("D", "r")),
        partitioning=HashPartitioning("a"),
    )
    cluster = Cluster(3)
    cluster.create_relation(A, partitioned_on="a")
    cluster.create_relation(B, partitioned_on="b")
    cluster.create_relation(C, partitioned_on="p")
    cluster.create_relation(d_schema, partitioned_on="r")
    cluster.insert("B", [(i, i % 2, i % 3) for i in range(6)])
    cluster.insert("C", [(i % 3, f"h{i % 2}", i) for i in range(6)])
    cluster.insert("D", [(f"h{i % 2}", i) for i in range(4)])
    cluster.create_join_view(definition, method=method)
    cluster.insert("A", [(1, 0, "x")])
    assert Counter(cluster.view_rows("JV4")) == recompute_view(cluster, "JV4")
    cluster.insert("C", [(0, "h1", 99)])
    assert Counter(cluster.view_rows("JV4")) == recompute_view(cluster, "JV4")
    cluster.delete("D", [("h0", 0)])
    assert Counter(cluster.view_rows("JV4")) == recompute_view(cluster, "JV4")


def test_plan_describe_lists_hops():
    cluster = chain_cluster("auxiliary")
    view = cluster.catalog.view("JV3")
    plan = view.maintainer.planner.plan_for("A")
    described = plan.describe()
    assert "B" in described and "C" in described
    assert plan.join_order == ("A", "B", "C")
