"""Unit tests for repro.cluster.partitioning."""

import pytest

from repro.cluster.partitioning import (
    HashPartitioning,
    RoundRobinPartitioning,
    spread_evenly,
    stable_hash,
)
from repro.storage.schema import Schema


def test_stable_hash_small_ints_identity():
    assert stable_hash(0) == 0
    assert stable_hash(41) == 41


def test_stable_hash_bool_not_int_collision():
    # bools map to 0/1 deterministically, not through int identity paths
    assert stable_hash(True) == 1
    assert stable_hash(False) == 0


def test_stable_hash_strings_deterministic():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") >= 0


def test_stable_hash_negative_int():
    assert stable_hash(-5) >= 0


def test_hash_partitioner_routes_by_column():
    schema = Schema.of("A", "a", "c")
    bound = HashPartitioning("c").bind(schema, 4)
    assert bound.node_of_row((99, 6)) == 6 % 4
    assert bound.node_of_key(6) == 2
    assert bound.key_of_row((99, 6)) == 6
    assert bound.column == "c"
    assert bound.is_hash


def test_hash_partitioner_split():
    schema = Schema.of("A", "a")
    bound = HashPartitioning("a").bind(schema, 2)
    split = bound.split([(0,), (1,), (2,), (3,)])
    assert split[0] == [(0,), (2,)]
    assert split[1] == [(1,), (3,)]


def test_hash_partitioning_requires_known_column():
    schema = Schema.of("A", "a")
    with pytest.raises(Exception):
        HashPartitioning("zzz").bind(schema, 2)


def test_round_robin_cycles():
    schema = Schema.of("A", "a")
    bound = RoundRobinPartitioning().bind(schema, 3)
    nodes = [bound.node_of_row((i,)) for i in range(6)]
    assert nodes == [0, 1, 2, 0, 1, 2]
    assert not bound.is_hash
    assert bound.column is None


def test_round_robin_split_balances():
    schema = Schema.of("A", "a")
    bound = RoundRobinPartitioning().bind(schema, 2)
    split = bound.split([(i,) for i in range(10)])
    assert len(split[0]) == len(split[1]) == 5


def test_zero_nodes_rejected():
    schema = Schema.of("A", "a")
    with pytest.raises(ValueError):
        HashPartitioning("a").bind(schema, 0)
    with pytest.raises(ValueError):
        RoundRobinPartitioning().bind(schema, 0)


def test_spread_evenly_uniform_sequential_keys():
    histogram = spread_evenly(list(range(100)), 4)
    assert histogram == {0: 25, 1: 25, 2: 25, 3: 25}


def test_describe():
    assert HashPartitioning("c").describe() == "hash(c)"
    assert RoundRobinPartitioning().describe() == "round-robin"
