"""Unit tests for repro.cluster.partitioning."""

import pytest

from repro.cluster.partitioning import (
    ConsistentHashPartitioning,
    HashPartitioning,
    RoundRobinPartitioning,
    spread_evenly,
    stable_hash,
)
from repro.storage.schema import Schema


def test_stable_hash_small_ints_identity():
    assert stable_hash(0) == 0
    assert stable_hash(41) == 41


def test_stable_hash_bool_not_int_collision():
    # bools map to 0/1 deterministically, not through int identity paths
    assert stable_hash(True) == 1
    assert stable_hash(False) == 0


def test_stable_hash_strings_deterministic():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") >= 0


def test_stable_hash_negative_int():
    assert stable_hash(-5) >= 0


def test_hash_partitioner_routes_by_column():
    schema = Schema.of("A", "a", "c")
    bound = HashPartitioning("c").bind(schema, 4)
    assert bound.node_of_row((99, 6)) == 6 % 4
    assert bound.node_of_key(6) == 2
    assert bound.key_of_row((99, 6)) == 6
    assert bound.column == "c"
    assert bound.is_hash


def test_hash_partitioner_split():
    schema = Schema.of("A", "a")
    bound = HashPartitioning("a").bind(schema, 2)
    split = bound.split([(0,), (1,), (2,), (3,)])
    assert split[0] == [(0,), (2,)]
    assert split[1] == [(1,), (3,)]


def test_hash_partitioning_requires_known_column():
    schema = Schema.of("A", "a")
    with pytest.raises(Exception):
        HashPartitioning("zzz").bind(schema, 2)


def test_round_robin_cycles():
    schema = Schema.of("A", "a")
    bound = RoundRobinPartitioning().bind(schema, 3)
    nodes = [bound.node_of_row((i,)) for i in range(6)]
    assert nodes == [0, 1, 2, 0, 1, 2]
    assert not bound.is_hash
    assert bound.column is None


def test_round_robin_split_balances():
    schema = Schema.of("A", "a")
    bound = RoundRobinPartitioning().bind(schema, 2)
    split = bound.split([(i,) for i in range(10)])
    assert len(split[0]) == len(split[1]) == 5


def test_zero_nodes_rejected():
    schema = Schema.of("A", "a")
    with pytest.raises(ValueError):
        HashPartitioning("a").bind(schema, 0)
    with pytest.raises(ValueError):
        RoundRobinPartitioning().bind(schema, 0)


def test_spread_evenly_uniform_sequential_keys():
    histogram = spread_evenly(list(range(100)), 4)
    assert histogram == {0: 25, 1: 25, 2: 25, 3: 25}


def test_describe():
    assert HashPartitioning("c").describe() == "hash(c)"
    assert RoundRobinPartitioning().describe() == "round-robin"


# ------------------------------------------------------- consistent hashing


def _ring(num_nodes, tokens=None, weights=None, vnodes=64):
    schema = Schema.of("R", "k", "v")
    return ConsistentHashPartitioning("k", vnodes=vnodes).bind(
        schema, num_nodes, tokens=tokens, weights=weights
    )


KEYS = list(range(4000))


def test_consistent_hash_routes_and_describes():
    bound = _ring(4)
    assert bound.is_hash
    assert bound.column == "k"
    assert 0 <= bound.node_of_key(17) < 4
    assert bound.node_of_row((17, "x")) == bound.node_of_key(17)
    assert ConsistentHashPartitioning("k").describe() == "consistent(k)"


def test_consistent_hash_spreads_sequential_keys():
    from collections import Counter

    counts = Counter(_ring(4).node_of_key(k) for k in KEYS)
    assert set(counts) == {0, 1, 2, 3}
    # Every node holds a reasonable share (ring variance, not modulo
    # exactness: the bound is loose but rules out the degenerate piles).
    assert min(counts.values()) > len(KEYS) / 4 / 2
    assert max(counts.values()) < len(KEYS) / 4 * 2


@pytest.mark.parametrize("n", [2, 3, 4, 8])
def test_consistent_hash_join_minimal_movement(n):
    """Growing N -> N+1 relocates ~1/(N+1) of the keys — and every key
    that moves, moves TO the new node (nothing shuffles between
    survivors)."""
    before = _ring(n, tokens=list(range(n)))
    after = _ring(n + 1, tokens=list(range(n + 1)))
    moved = [k for k in KEYS if before.node_of_key(k) != after.node_of_key(k)]
    assert all(after.node_of_key(k) == n for k in moved)
    ideal = len(KEYS) / (n + 1)
    assert 0.5 * ideal < len(moved) < 2.0 * ideal


def test_consistent_hash_leave_moves_only_departed_keys():
    """Retiring one token relocates exactly that token's keys; surviving
    nodes keep every key they had (stable-token property)."""
    before = _ring(4, tokens=[0, 1, 2, 3])
    # Node id 1 departs; ids renumber densely but tokens survive.
    after = _ring(3, tokens=[0, 2, 3])
    for k in KEYS:
        old = before.node_of_key(k)
        if old == 1:
            continue  # departed node: key must land somewhere live
        expected_new_id = old if old < 1 else old - 1
        assert after.node_of_key(k) == expected_new_id


def test_consistent_hash_split_deterministic_across_rebinds():
    bound = _ring(4)
    rows = [(k, f"v{k}") for k in range(200)]
    first = bound.split(rows)
    again = bound.split(rows)
    rebound = bound.rebind(4, tokens=bound.tokens).split(rows)
    assert first == again == rebound


def test_consistent_hash_rebind_keeps_weights():
    bound = _ring(4, weights={2: 80})
    rebound = bound.rebind(4, tokens=bound.tokens)
    assert rebound.weights == {2: 80}
    assert rebound.split([(k, "") for k in KEYS]) == bound.split(
        [(k, "") for k in KEYS]
    )


def test_consistent_hash_weights_shift_load():
    from collections import Counter

    even = Counter(_ring(4).node_of_key(k) for k in KEYS)
    heavy = Counter(
        _ring(4, weights={0: 128}).node_of_key(k) for k in KEYS
    )
    assert heavy[0] > even[0]  # doubling token 0's vnodes attracts keys


def test_consistent_hash_tokens_must_be_unique():
    with pytest.raises(ValueError):
        _ring(2, tokens=[7, 7])


def test_consistent_hash_rebind_validates_token_count():
    with pytest.raises(ValueError):
        _ring(2).rebind(3, tokens=[0, 1])
