"""Tests for the `python -m repro.bench` command line."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_no_args_lists_experiments(capsys):
    assert main([]) == 1
    out = capsys.readouterr().out
    assert "usage" in out
    for name in ("fig7", "fig14", "table1"):
        assert name in out


def test_unknown_experiment(capsys):
    assert main(["zzz"]) == 1
    assert "unknown experiment" in capsys.readouterr().out


def test_run_one_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "customer" in out


def test_every_registered_experiment_is_callable():
    for name, runner in EXPERIMENTS.items():
        assert callable(runner), name
    # The registry covers every figure and table of the paper.
    for required in (
        "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "fig13", "fig14", "table1",
    ):
        assert required in EXPERIMENTS


def test_profile_flag_prints_hotspots(capsys):
    assert main(["--profile", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "cumulative time" in out
    assert "ncalls" in out


def test_profile_flag_with_unknown_experiment(capsys):
    assert main(["--profile", "zzz"]) == 1
    assert "unknown experiment" in capsys.readouterr().out


def test_profile_flag_alone_shows_usage(capsys):
    assert main(["--profile"]) == 1
    assert "usage" in capsys.readouterr().out


def test_module_entrypoint_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench", "table1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "Table 1" in completed.stdout
