"""Tests for the workload-level materialization advisor."""

import pytest

from repro import Cluster, MaintenanceMethod, Schema, two_way_view
from repro.core import BoundView, WorkloadAdvisor, WorkloadProfile


def build_advisor(b_rows=5_000, num_nodes=8, clustered=False):
    cluster = Cluster(num_nodes)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    info = cluster.catalog.relation("B")
    for i in range(b_rows):
        row = (i, i % 500, f"f{i}")
        cluster.nodes[info.partitioner.node_of_row(row)].fragment("B").insert(row)
    info.row_count += b_rows
    bound = BoundView(
        two_way_view("JV", "A", "c", "B", "d"),
        {
            "A": cluster.catalog.relation("A").schema,
            "B": cluster.catalog.relation("B").schema,
        },
    )
    return WorkloadAdvisor(cluster, bound, clustered_base_indexes=clustered)


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(full_queries=-1)
    with pytest.raises(ValueError):
        WorkloadProfile(tuples_per_update=0)


def test_query_heavy_workload_materializes():
    advisor = build_advisor()
    verdict = advisor.advise(
        WorkloadProfile(full_queries=100, update_transactions=5)
    )
    assert verdict.materialize
    assert verdict.method is MaintenanceMethod.AUXILIARY
    assert verdict.net_benefit_ios > 0
    assert "materialize with the auxiliary" in verdict.explain()


def test_update_heavy_workload_declines():
    advisor = build_advisor()
    verdict = advisor.advise(
        WorkloadProfile(full_queries=0.1, update_transactions=100_000)
    )
    assert not verdict.materialize
    assert verdict.method is None
    assert verdict.net_benefit_ios <= 0
    assert "do not materialize" in verdict.explain()


def test_pinned_lookups_strongly_favour_views():
    advisor = build_advisor()
    without = advisor.advise(WorkloadProfile(full_queries=5, update_transactions=50))
    with_lookups = advisor.advise(
        WorkloadProfile(full_queries=5, pinned_lookups=500, update_transactions=50)
    )
    assert with_lookups.net_benefit_ios > without.net_benefit_ios


def test_maintenance_uses_best_method():
    advisor = build_advisor()
    verdict = advisor.advise(
        WorkloadProfile(full_queries=50, update_transactions=10)
    )
    assert verdict.maintenance_cost == min(verdict.per_method_maintenance.values())
    assert set(verdict.per_method_maintenance) == {
        "naive", "auxiliary", "global_index",
    }


def test_large_transactions_switch_regimes():
    advisor = build_advisor(clustered=True)
    small = advisor.maintenance_cost_per_txn(MaintenanceMethod.NAIVE, 1)
    huge = advisor.maintenance_cost_per_txn(MaintenanceMethod.NAIVE, 1_000_000)
    # Huge transactions are capped by the cluster-wide fragment pass, not
    # the per-tuple broadcast cost.
    assert huge < 1_000_000 * small


def test_cost_pieces_positive_and_ordered():
    advisor = build_advisor()
    # A starts empty, so the scan estimate bottoms out at one page.
    assert advisor.view_scan_cost() == 1.0
    # Populate A: the view result grows and so does its scan estimate.
    cluster = advisor.cluster
    cluster.insert("A", [(i, i % 500, "e") for i in range(200)])
    grown = advisor.view_scan_cost()
    assert grown > 1.0
    assert advisor.pinned_lookup_cost() < grown
    assert advisor.base_join_cost() > grown
