"""Unit tests for repro.storage.global_index."""

import pytest

from repro.storage.global_index import GlobalIndexPartition, GlobalRowId


@pytest.fixture
def partition():
    return GlobalIndexPartition("B", "d")


def test_insert_and_search(partition):
    partition.insert(7, GlobalRowId(0, 3))
    partition.insert(7, GlobalRowId(2, 5))
    assert partition.search(7) == [GlobalRowId(0, 3), GlobalRowId(2, 5)]
    assert partition.search(8) == []


def test_search_grouped_by_node(partition):
    partition.insert(7, GlobalRowId(0, 3))
    partition.insert(7, GlobalRowId(0, 4))
    partition.insert(7, GlobalRowId(2, 5))
    grouped = partition.search_grouped(7)
    assert set(grouped) == {0, 2}
    assert grouped[0] == [GlobalRowId(0, 3), GlobalRowId(0, 4)]
    assert grouped[2] == [GlobalRowId(2, 5)]


def test_delete(partition):
    grid = GlobalRowId(1, 1)
    partition.insert(7, grid)
    partition.delete(7, grid)
    assert partition.search(7) == []
    assert len(partition) == 0


def test_delete_missing_raises(partition):
    with pytest.raises(KeyError):
        partition.delete(7, GlobalRowId(0, 0))
    partition.insert(7, GlobalRowId(0, 1))
    with pytest.raises(KeyError):
        partition.delete(7, GlobalRowId(0, 2))


def test_len_and_items(partition):
    partition.insert(1, GlobalRowId(0, 0))
    partition.insert(2, GlobalRowId(1, 0))
    assert len(partition) == 2
    assert sorted(key for key, _ in partition.items()) == [1, 2]
    assert sorted(partition.keys()) == [1, 2]


def test_global_row_id_ordering():
    assert GlobalRowId(0, 5) < GlobalRowId(1, 0)
    assert GlobalRowId(1, 1) < GlobalRowId(1, 2)
