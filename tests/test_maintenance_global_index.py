"""Tests for the global-index maintenance method (paper §2.1.3)."""

from collections import Counter

import pytest

from repro import Op, Tag, recompute_view, two_way_view
from tests.conftest import make_view


def view_equals_recompute(cluster):
    return Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")


def test_provisions_gis_for_both_sides(ab_cluster):
    make_view(ab_cluster, "global_index")
    assert "GI_A_c" in ab_cluster.catalog.global_indexes
    assert "GI_B_d" in ab_cluster.catalog.global_indexes
    assert ab_cluster.catalog.auxiliaries == {}


def test_insert_updates_view(ab_cluster):
    make_view(ab_cluster, "global_index")
    ab_cluster.insert("A", [(1, 2, "x")])
    assert view_equals_recompute(ab_cluster)


def test_single_tuple_tw_nonclustered(ab_cluster):
    make_view(ab_cluster, "global_index", strategy="inl")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # INSERT(2) into GI_A + SEARCH(1) of GI_B + N(4) FETCHes = 7 I/Os.
    assert snapshot.maintenance_workload() == 7.0


def test_single_tuple_tw_distributed_clustered(ab_cluster):
    ab_cluster.create_index("B", "d", clustered=True)
    make_view(ab_cluster, "global_index", strategy="inl")
    gi = ab_cluster.catalog.global_index("GI_B_d")
    assert gi.distributed_clustered
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # Matches of key 2 are B rows 2, 7, 12, 17 -> nodes 2,3,0,1: K = 4.
    # INSERT(2) + SEARCH(1) + K(4) FETCHes = 7.
    assert snapshot.maintenance_workload() == 7.0


def test_visits_only_owning_nodes(uniform_cluster_factory):
    """K <= min(N, L): with N=2 matches on an 8-node cluster, only the
    GI home node plus <= 2 owners do maintenance work."""
    cluster, workload = uniform_cluster_factory(
        "global_index", num_nodes=8, fanout=2
    )
    snapshot = cluster.insert("A", [workload.a_row(0)])
    busy = {
        node
        for node, ios in snapshot.per_node_ios(tags=[Tag.MAINTAIN]).items()
        if ios > 0
    }
    assert len(busy) <= 3


def test_fetch_count_grows_with_fanout(uniform_cluster_factory):
    for fanout in (1, 3, 7):
        cluster, workload = uniform_cluster_factory(
            "global_index", num_nodes=4, fanout=fanout
        )
        snapshot = cluster.insert("A", [workload.a_row(0)])
        assert snapshot.op_count(Op.FETCH, tags=[Tag.MAINTAIN]) == fanout


def test_delete_updates_view_and_gi(ab_cluster):
    make_view(ab_cluster, "global_index")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.delete("A", [(1, 2, "x")])
    assert ab_cluster.view_rows("JV") == []
    gi = ab_cluster.catalog.global_index("GI_A_c")
    home = gi.home_node(2)
    assert ab_cluster.nodes[home].gi_partition("GI_A_c").search(2) == []


def test_gi_entries_track_base_rows(ab_cluster):
    make_view(ab_cluster, "global_index")
    ab_cluster.insert("A", [(1, 2, "x"), (5, 2, "y")])
    gi = ab_cluster.catalog.global_index("GI_A_c")
    home = gi.home_node(2)
    grids = ab_cluster.nodes[home].gi_partition("GI_A_c").search(2)
    assert len(grids) == 2
    for grid in grids:
        row = ab_cluster.nodes[grid.node].fragment("A").table.fetch(grid.rowid)
        assert row[1] == 2


def test_b_side_insert_uses_gi_a(ab_cluster):
    make_view(ab_cluster, "global_index")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.insert("B", [(50, 2, "new")])
    assert view_equals_recompute(ab_cluster)


def test_update_roundtrip(ab_cluster):
    make_view(ab_cluster, "global_index")
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.update("A", [((1, 2, "x"), (1, 4, "z"))])
    assert view_equals_recompute(ab_cluster)


def test_sort_merge_strategy_same_contents(ab_cluster):
    make_view(ab_cluster, "global_index", strategy="sort_merge")
    ab_cluster.insert("A", [(1, 2, "x"), (2, 3, "y")])
    assert view_equals_recompute(ab_cluster)


def test_space_between_naive_and_ar(ab_cluster):
    """GI stores an entry per tuple — more than naive (0), less than a
    full AR copy (whole rows)."""
    make_view(ab_cluster, "global_index")
    gi_entries = sum(
        len(node.gi_partition("GI_B_d")) for node in ab_cluster.nodes
    )
    assert gi_entries == 20  # one entry per B tuple
