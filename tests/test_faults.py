"""Unit tests for the fault-injection and recovery subsystem."""

import pytest

from repro import Cluster, Schema
from repro.costs import Op, Tag
from repro.faults import (
    ConsistencyAuditor,
    FaultInjector,
    FaultPlan,
    NodeDown,
    ProbeFailure,
    RecoveryPolicy,
    UndoLog,
    attach_faults,
    detach_faults,
)
from tests.conftest import make_view


def build(method="auxiliary", strategy="inl"):
    cluster = Cluster(num_nodes=4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    make_view(cluster, method, strategy=strategy)
    return cluster


# ------------------------------------------------------------------- plan


def test_plan_events_are_pure_data():
    plan = FaultPlan().crash(node=1, after_messages=5).drop(times=2)
    assert len(plan.events) == 2
    with pytest.raises(AttributeError):
        plan.events[0].node = 3  # frozen


def test_scaled_multiplies_probabilities_and_caps_at_one():
    plan = FaultPlan().drop(probability=0.2).duplicate(probability=0.8).scaled(1.5)
    assert [event.probability for event in plan.events] == [
        pytest.approx(0.3),
        pytest.approx(1.0),
    ]
    # Counted events carry no probability and are untouched.
    counted = FaultPlan().drop(times=2).scaled(3.0)
    assert counted.events[0].times == 2


def test_single_fault_schedules_cover_every_fault_class():
    schedules = FaultPlan.single_fault_schedules()
    assert set(schedules) == {
        "node_crash", "message_drop", "message_duplication", "probe_failure",
    }
    for plan in schedules.values():
        assert len(plan.events) == 1


# --------------------------------------------------------------- injector


def test_injector_is_deterministic_per_seed():
    def fates(seed):
        injector = FaultInjector(FaultPlan().drop(probability=0.5), seed=seed)
        return [injector.on_message(0, 1).value for _ in range(32)]

    assert fates(5) == fates(5)
    assert fates(5) != fates(6)


def test_crash_fires_after_message_gate():
    injector = FaultInjector(FaultPlan().crash(node=2, after_messages=3))
    assert not injector.is_down(2)
    for _ in range(3):
        injector.on_message(0, 1)
    assert injector.is_down(2)
    assert injector.restart_all() == [2]
    assert not injector.is_down(2)


def test_counted_events_exhaust():
    injector = FaultInjector(FaultPlan().drop(times=2))
    fates = [injector.on_message(0, 1).value for _ in range(4)]
    assert fates == ["dropped", "dropped", "delivered", "delivered"]
    assert injector.exhausted()


# --------------------------------------------------------------- undo log


def test_undo_log_rolls_back_in_reverse_order():
    order = []
    log = UndoLog()
    log.record(lambda: order.append("first"))
    log.record(lambda: order.append("second"))
    report = log.rollback()
    assert order == ["second", "first"]
    assert report.entries_undone == 2
    assert len(log) == 0


def test_undo_log_charges_physical_writes():
    from repro.costs import CostLedger, CostParameters

    ledger = CostLedger(CostParameters())
    log = UndoLog()
    log.record(lambda: None, node=1, tag=Tag.BASE, writes=2)
    log.record(lambda: None)  # bookkeeping: never charged
    report = log.rollback(ledger=ledger, charge=True)
    assert report.writes_charged == 2
    assert ledger.snapshot().op_count(Op.INSERT, [Tag.BASE]) == 2


def test_undo_log_merge_into_parent():
    parent, child = UndoLog(), UndoLog()
    child.record(lambda: None)
    child.merge_into(parent)
    assert len(parent) == 1 and len(child) == 0


# ------------------------------------------------------- rollback / queue


def test_crashed_statement_rolls_back_and_queues():
    cluster = build("auxiliary")
    controller = attach_faults(
        cluster, plan=FaultPlan().crash(node=2, after_messages=0), seed=0
    )
    before_rows = sorted(cluster.scan_relation("A"))
    view_before = sorted(cluster.view_rows("JV"))
    for i in range(6):
        cluster.insert("A", [(100 + i, i % 5, i)])
    assert controller.stats.rollbacks + controller.stats.queued > 0
    # Rolled-back statements left no trace beyond the queue.
    assert ConsistencyAuditor(cluster).audit().ok
    report = controller.recover()
    assert report.replayed >= 1
    assert report.still_pending == 0
    assert controller.pending == []
    assert sorted(cluster.scan_relation("A")) != before_rows
    assert sorted(cluster.view_rows("JV")) != view_before
    assert ConsistencyAuditor(cluster).audit().ok


def test_rollback_preserves_rowids_for_gi():
    """A rolled-back *delete* must restore the row under its old rowid, or
    the GI's rid-lists would dangle."""
    cluster = build("global_index")
    # Crash node 2 late enough that the delete's base write succeeds and
    # the fault hits during maintenance.
    controller = attach_faults(
        cluster, plan=FaultPlan().crash(node=2, after_messages=1), seed=0
    )
    cluster.delete("B", [(0, 0, "f0")])
    controller.recover()
    assert ConsistencyAuditor(cluster).audit().ok


def test_probe_failures_charge_wasted_searches():
    cluster = build("auxiliary")
    attach_faults(cluster, plan=FaultPlan().fail_probe(times=2), seed=0)
    before = cluster.ledger.snapshot()
    cluster.insert("A", [(100, 0, 0)])
    wasted = cluster.ledger.diff_since(before)
    baseline_cluster = build("auxiliary")
    base_before = baseline_cluster.ledger.snapshot()
    baseline_cluster.insert("A", [(100, 0, 0)])
    baseline = baseline_cluster.ledger.diff_since(base_before)
    assert (
        wasted.op_count(Op.SEARCH) == baseline.op_count(Op.SEARCH) + 2
    )


def test_probe_retry_budget_exhaustion_aborts_statement():
    cluster = build("auxiliary")
    controller = attach_faults(
        cluster,
        plan=FaultPlan().fail_probe(times=50),
        seed=0,
        policy=RecoveryPolicy(max_probe_retries=2),
    )
    cluster.insert("A", [(100, 0, 0)])  # aborted + queued, not raised
    assert controller.stats.queued == 1
    assert ConsistencyAuditor(cluster).audit().ok


def test_queue_disabled_raises_statement_aborted():
    from repro.faults import StatementAborted

    cluster = build("auxiliary")
    attach_faults(
        cluster,
        plan=FaultPlan().crash(node=2, after_messages=0),
        seed=0,
        policy=RecoveryPolicy(queue_on_failure=False),
    )
    victim = next(
        i for i in range(40)
        if cluster.catalog.relation("A").partitioner.node_of_row((i, i % 5, 0)) == 2
    )
    with pytest.raises(StatementAborted):
        cluster.insert("A", [(victim, victim % 5, 0)])


# -------------------------------------------------------------- degrade


def test_degraded_mode_applies_base_writes_and_rebuilds():
    cluster = build("auxiliary")
    controller = attach_faults(
        cluster,
        plan=FaultPlan().crash(node=2, after_messages=0),
        seed=0,
        policy=RecoveryPolicy(degrade_when_down=True),
    )
    applied = 0
    for i in range(8):
        row = (100 + i, i % 5, i)
        if cluster.catalog.relation("A").partitioner.node_of_row(row) == 2:
            continue  # base write itself needs the dead node: not degradable
        cluster.insert("A", [row])
        applied += 1
    assert applied > 0
    assert controller.stats.degraded_statements > 0
    assert controller.needs_rebuild
    # Base rows landed even though AR/view maintenance was blocked.
    assert len(cluster.scan_relation("A")) == applied
    report = controller.recover()
    assert report.rebuilt is not None
    assert not controller.needs_rebuild
    assert ConsistencyAuditor(cluster).audit().ok


# ---------------------------------------------------- auditor / repair


def test_auditor_detects_planted_corruption():
    cluster = build("auxiliary")
    cluster.insert("A", [(100, 0, 0)])
    assert ConsistencyAuditor(cluster).audit().ok
    # Vandalize one AR fragment behind the cluster's back.
    ar_name = next(iter(cluster.catalog.auxiliaries))
    for node in cluster.nodes:
        rows = node.fragment(ar_name).table.rows()
        if rows:
            node.fragment(ar_name).delete_matching(rows[0])
            break
    report = ConsistencyAuditor(cluster).audit()
    assert not report.ok
    assert any(f.kind == "auxiliary" for f in report.findings)
    ConsistencyAuditor(cluster).repair()
    assert ConsistencyAuditor(cluster).audit().ok


def test_auditor_detects_gi_corruption():
    cluster = build("global_index")
    cluster.insert("A", [(100, 0, 0)])
    gi_name = next(iter(cluster.catalog.global_indexes))
    for node in cluster.nodes:
        entries = list(node.gi_partition(gi_name).entries())
        if entries:
            key, grid = entries[0]
            node.gi_partition(gi_name).delete(key, grid)
            break
    report = ConsistencyAuditor(cluster).audit()
    assert any(f.kind == "global_index" for f in report.findings)
    ConsistencyAuditor(cluster).repair()
    assert ConsistencyAuditor(cluster).audit().ok


# -------------------------------------------------- attach/detach contract


def test_attach_twice_is_rejected():
    cluster = build()
    attach_faults(cluster, plan=FaultPlan())
    with pytest.raises(ValueError):
        attach_faults(cluster, plan=FaultPlan())


def test_detach_restores_fault_free_charging():
    cluster = build()
    attach_faults(cluster, plan=FaultPlan().drop(times=100), seed=0)
    detach_faults(cluster)
    cluster.insert("A", [(100, 0, 0)])  # would raise MessageLost if attached
    assert cluster.network.injector is None
    assert all(node.faults is None for node in cluster.nodes)
    assert ConsistencyAuditor(cluster).audit().ok


def test_provisioning_requires_all_nodes_up():
    cluster = Cluster(num_nodes=4)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    controller = attach_faults(cluster, plan=FaultPlan())
    controller.injector.crash(1)
    with pytest.raises(NodeDown):
        make_view(cluster, "auxiliary")


# ------------------------------------------------------ transactions API


def test_transaction_rollback_restores_everything():
    cluster = build("auxiliary")
    baseline = {
        "A": sorted(cluster.scan_relation("A")),
        "JV": sorted(cluster.view_rows("JV")),
        "count": cluster.catalog.relation("A").row_count,
    }
    with cluster.transaction() as txn:
        txn.insert("A", [(100, 0, 0), (101, 1, 1)])
        txn.delete("B", [(0, 0, "f0")])
        txn.rollback()
    assert txn.report.rolled_back
    assert sorted(cluster.scan_relation("A")) == baseline["A"]
    assert sorted(cluster.view_rows("JV")) == baseline["JV"]
    assert cluster.catalog.relation("A").row_count == baseline["count"]
    assert ConsistencyAuditor(cluster).audit().ok
    with pytest.raises(RuntimeError):
        txn.insert("A", [(102, 2, 2)])  # rollback closed the transaction


def test_transaction_exception_auto_rolls_back():
    cluster = build("global_index")
    before = sorted(cluster.view_rows("JV"))
    with pytest.raises(KeyError):
        with cluster.transaction() as txn:
            txn.insert("A", [(100, 0, 0)])
            txn.delete("A", [(999, 9, 9)])  # not stored: statement fails
    assert txn.report.rolled_back
    assert sorted(cluster.view_rows("JV")) == before
    assert ConsistencyAuditor(cluster).audit().ok


def test_plain_transaction_commit_unchanged():
    cluster = build("naive")
    with cluster.transaction() as txn:
        txn.insert("A", [(100, 0, 0)])
    assert not txn.report.rolled_back
    assert cluster._undo_logs == []
    assert len(cluster.view_rows("JV")) == 4


# ----------------------------------------------------- deferred views


def test_deferred_queue_rolls_back_with_statement():
    from repro.core.deferred import defer_view

    cluster = build("auxiliary")
    wrapper = defer_view(cluster, "JV")
    controller = attach_faults(
        cluster, plan=FaultPlan().crash(node=2, after_messages=0), seed=0
    )
    for i in range(6):
        cluster.insert("A", [(100 + i, i % 5, i)])
    queued_now = wrapper.pending_changes
    # Statements that rolled back must not have left deltas queued: pending
    # changes reflect only the statements that committed.
    applied = len(cluster.scan_relation("A"))
    assert queued_now == applied
    controller.recover()
    wrapper.refresh()
    assert ConsistencyAuditor(cluster).audit().ok


def test_repair_discards_deferred_queue():
    from repro.core.deferred import defer_view

    cluster = build("auxiliary")
    wrapper = defer_view(cluster, "JV")
    cluster.insert("A", [(100, 0, 0)])
    assert wrapper.is_stale
    ConsistencyAuditor(cluster).repair()
    assert not wrapper.is_stale  # queue discarded, not double-applied
    assert ConsistencyAuditor(cluster, flush_deferred=False).audit().ok


# -------------------------------------------------------- node satellite


def test_drop_fragment_unknown_name_is_descriptive():
    cluster = Cluster(num_nodes=2)
    with pytest.raises(KeyError, match="stores no fragment of 'ghost'"):
        cluster.nodes[0].drop_fragment("ghost")


def test_drop_gi_partition_unknown_name_is_descriptive():
    cluster = Cluster(num_nodes=2)
    with pytest.raises(KeyError, match="holds no partition of GI 'ghost'"):
        cluster.nodes[0].drop_gi_partition("ghost")


# -------------------------------------------------------- sqlite atomic


def test_sqlite_atomic_commits_across_nodes():
    from repro.backends.sqlite_cluster import SQLiteCluster

    with SQLiteCluster(num_nodes=3) as db:
        db.create_table(Schema.of("T", "k", "v"), partitioned_on="k")
        with db.atomic():
            db.insert("T", [(i, i) for i in range(12)])
        assert db.count("T") == 12


def test_sqlite_atomic_rolls_back_every_node():
    from repro.backends.sqlite_cluster import SQLiteCluster

    with SQLiteCluster(num_nodes=3) as db:
        db.create_table(Schema.of("T", "k", "v"), partitioned_on="k")
        db.insert("T", [(0, 0)])
        with pytest.raises(KeyError):
            with db.atomic():
                db.insert("T", [(i, i) for i in range(1, 12)])
                db.delete("T", [(99, 99)])  # not stored: fails mid-scope
        # Every node rolled back; only the pre-scope row survives.
        assert db.count("T") == 1
        assert not any(node.defer_commits for node in db.nodes)
