"""Tests for the paper's CREATE VIEW dialect parser."""

from collections import Counter

import pytest

from repro import recompute_view
from repro.cluster.partitioning import HashPartitioning, RoundRobinPartitioning
from repro.sql import SqlSyntaxError, parse_join_view
from repro.storage.schema import Schema

SCHEMAS = {
    "A": Schema.of("A", "a", "c", "e"),
    "B": Schema.of("B", "b", "d", "f"),
    "customer": Schema.of("customer", "custkey", "acctbal"),
    "orders": Schema.of("orders", "orderkey", "custkey", "totalprice"),
    "lineitem": Schema.of("lineitem", "linekey", "orderkey", "discount"),
}


def test_paper_jv_statement():
    definition = parse_join_view(
        "create view JV as select * from A, B where A.c=B.d "
        "partitioned on A.e;",
        SCHEMAS,
    )
    assert definition.name == "JV"
    assert definition.relations == ("A", "B")
    assert definition.select is None
    condition = definition.conditions[0]
    assert (condition.left, condition.left_column) == ("A", "c")
    assert (condition.right, condition.right_column) == ("B", "d")
    assert definition.partitioning == HashPartitioning("e")


def test_paper_jv2_statement_with_aliases():
    definition = parse_join_view(
        """create view JV2 as
           select c.custkey, c.acctbal, o.orderkey, o.totalprice,
                  l.discount
           from orders o, customer c, lineitem l
           where c.custkey=o.custkey and o.orderkey=l.orderkey;""",
        SCHEMAS,
    )
    assert definition.relations == ("orders", "customer", "lineitem")
    assert ("customer", "custkey") in definition.select
    assert len(definition.conditions) == 2
    assert isinstance(definition.partitioning, RoundRobinPartitioning)


def test_collision_qualified_partition_column():
    definition = parse_join_view(
        "create view V as select c.custkey, o.totalprice "
        "from customer c, orders o where c.custkey = o.custkey "
        "partitioned on c.custkey",
        SCHEMAS,
    )
    # customer.custkey collides with orders.custkey -> qualified output name.
    assert definition.partitioning == HashPartitioning("customer_custkey")


def test_bare_partition_column_when_unambiguous():
    definition = parse_join_view(
        "create view V as select * from A, B where A.c = B.d "
        "partitioned on e",
        SCHEMAS,
    )
    assert definition.partitioning == HashPartitioning("e")


def test_bare_partition_column_ambiguous():
    with pytest.raises(SqlSyntaxError, match="ambiguous"):
        parse_join_view(
            "create view V as select * from customer, orders "
            "where customer.custkey = orders.custkey partitioned on custkey",
            SCHEMAS,
        )


def test_partition_column_must_be_selected():
    with pytest.raises(SqlSyntaxError, match="select list"):
        parse_join_view(
            "create view V as select A.a from A, B where A.c = B.d "
            "partitioned on B.f",
            SCHEMAS,
        )


def test_as_alias_form():
    definition = parse_join_view(
        "create view V as select x.a from A as x, B as y where x.c = y.d",
        SCHEMAS,
    )
    assert definition.relations == ("A", "B")


def test_rejects_unknown_relation():
    with pytest.raises(SqlSyntaxError, match="unknown relation"):
        parse_join_view(
            "create view V as select * from A, ZZ where A.c = ZZ.d", SCHEMAS
        )


def test_rejects_unknown_alias():
    with pytest.raises(SqlSyntaxError, match="unknown alias"):
        parse_join_view(
            "create view V as select q.a from A, B where A.c = B.d", SCHEMAS
        )


def test_rejects_duplicate_aliases():
    with pytest.raises(SqlSyntaxError, match="duplicate aliases"):
        parse_join_view(
            "create view V as select * from A x, B x where x.c = x.d", SCHEMAS
        )


def test_rejects_non_equijoin():
    with pytest.raises(SqlSyntaxError, match="equi-join"):
        parse_join_view(
            "create view V as select * from A, B where A.c < B.d", SCHEMAS
        )


def test_rejects_unqualified_column():
    with pytest.raises(SqlSyntaxError, match="qualified"):
        parse_join_view(
            "create view V as select a from A, B where A.c = B.d", SCHEMAS
        )


def test_rejects_garbage():
    with pytest.raises(SqlSyntaxError, match="expected"):
        parse_join_view("drop table A;", SCHEMAS)
    with pytest.raises(SqlSyntaxError):
        parse_join_view("create view V as select * from A, B", SCHEMAS)


def test_end_to_end_on_cluster(ab_cluster):
    view = ab_cluster.create_view_from_sql(
        "create view JV as select A.a, B.f from A, B where A.c = B.d "
        "partitioned on A.a;",
        method="global_index",
    )
    assert view.method == "global_index"
    ab_cluster.insert("A", [(1, 2, "x")])
    assert Counter(ab_cluster.view_rows("JV")) == recompute_view(ab_cluster, "JV")
