"""Unit tests for repro.cluster.cluster (DDL, DML, co-updates, reads)."""

from collections import Counter

import pytest

from repro import Cluster, HashPartitioning, Schema, Tag, two_way_view
from repro.cluster.partitioning import stable_hash
from tests.conftest import make_view


def test_cluster_needs_a_node():
    with pytest.raises(ValueError):
        Cluster(0)


def test_create_relation_places_fragments_everywhere():
    cluster = Cluster(3)
    cluster.create_relation(Schema.of("R", "k"), partitioned_on="k")
    assert all(node.has_fragment("R") for node in cluster.nodes)


def test_create_relation_with_indexes():
    cluster = Cluster(2)
    cluster.create_relation(
        Schema.of("R", "k", "v"), partitioned_on="k",
        indexes=[("v", False), ("k", True)],
    )
    info = cluster.catalog.relation("R")
    assert info.indexes == {"v": False, "k": True}


def test_create_index_idempotent():
    cluster = Cluster(2)
    cluster.create_relation(Schema.of("R", "k"), partitioned_on="k")
    cluster.create_index("R", "k")
    cluster.create_index("R", "k")
    assert cluster.has_index("R", "k")


def test_create_index_unknown_column():
    cluster = Cluster(2)
    cluster.create_relation(Schema.of("R", "k"), partitioned_on="k")
    with pytest.raises(KeyError):
        cluster.create_index("R", "zzz")


def test_insert_places_rows_by_hash(ab_cluster):
    ab_cluster.insert("A", [(10, 1, "x")])
    home = stable_hash(10) % 4
    assert len(ab_cluster.nodes[home].fragment("A").table) == 1
    assert ab_cluster.catalog.relation("A").row_count == 1


def test_partitioning_invariant_for_all_relations(ab_cluster):
    info = ab_cluster.catalog.relation("B")
    position = info.schema.index_of("b")
    for node in ab_cluster.nodes:
        for row in node.scan("B"):
            assert stable_hash(row[position]) % 4 == node.node_id


def test_delete_removes_one_instance(ab_cluster):
    ab_cluster.insert("A", [(1, 2, "x"), (1, 2, "x")])
    ab_cluster.delete("A", [(1, 2, "x")])
    assert ab_cluster.scan_relation("A") == [(1, 2, "x")]


def test_delete_missing_row_raises(ab_cluster):
    with pytest.raises(KeyError):
        ab_cluster.delete("A", [(9, 9, "nope")])


def test_update_is_delete_plus_insert(ab_cluster):
    ab_cluster.insert("A", [(1, 2, "x")])
    ab_cluster.update("A", [((1, 2, "x"), (1, 3, "y"))])
    assert ab_cluster.scan_relation("A") == [(1, 3, "y")]
    assert ab_cluster.catalog.relation("A").row_count == 1


def test_auxiliary_relation_backfilled(ab_cluster):
    aux = ab_cluster.create_auxiliary_relation("B", "d")
    assert Counter(ab_cluster.scan_relation(aux.name)) == Counter(
        ab_cluster.scan_relation("B")
    )


def test_auxiliary_relation_partitioned_on_join_column(ab_cluster):
    aux = ab_cluster.create_auxiliary_relation("B", "d")
    position = aux.schema.index_of("d")
    for node in ab_cluster.nodes:
        for row in node.scan(aux.name):
            assert stable_hash(row[position]) % 4 == node.node_id


def test_auxiliary_relation_trimmed_projection(ab_cluster):
    aux = ab_cluster.create_auxiliary_relation("B", "d", columns=["f"])
    assert aux.schema.column_names == ("d", "f")
    rows = ab_cluster.scan_relation(aux.name)
    assert all(len(row) == 2 for row in rows)


def test_auxiliary_relation_with_predicate(ab_cluster):
    aux = ab_cluster.create_auxiliary_relation(
        "B", "d", predicate=lambda row: row[0] < 10
    )
    assert len(ab_cluster.scan_relation(aux.name)) == 10


def test_auxiliary_on_partition_column_rejected(ab_cluster):
    with pytest.raises(ValueError, match="already partitioned"):
        ab_cluster.create_auxiliary_relation("B", "b")


def test_auxiliary_co_update_on_insert_and_delete(ab_cluster):
    ab_cluster.create_auxiliary_relation("A", "c")
    ab_cluster.insert("A", [(1, 2, "x")])
    assert ab_cluster.scan_relation("AR_A_c") == [(1, 2, "x")]
    ab_cluster.delete("A", [(1, 2, "x")])
    assert ab_cluster.scan_relation("AR_A_c") == []


def test_auxiliary_co_update_charged_as_maintenance(ab_cluster):
    ab_cluster.create_auxiliary_relation("A", "c")
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    # One redistribution send (free) plus one AR insert (2 I/Os).
    assert snapshot.maintenance_workload() == 2.0


def test_global_index_backfilled(ab_cluster):
    gi = ab_cluster.create_global_index("B", "d")
    total = sum(len(node.gi_partition(gi.name)) for node in ab_cluster.nodes)
    assert total == 20


def test_global_index_co_update(ab_cluster):
    gi = ab_cluster.create_global_index("A", "c")
    ab_cluster.insert("A", [(1, 2, "x")])
    home = gi.home_node(2)
    assert ab_cluster.nodes[home].gi_partition(gi.name).search(2) != []
    ab_cluster.delete("A", [(1, 2, "x")])
    assert ab_cluster.nodes[home].gi_partition(gi.name).search(2) == []


def test_global_index_on_partition_column_rejected(ab_cluster):
    with pytest.raises(ValueError, match="already partitioned"):
        ab_cluster.create_global_index("B", "b")


def test_distributed_clustered_gi_requires_clustered_base(ab_cluster):
    with pytest.raises(ValueError, match="clustered"):
        ab_cluster.create_global_index("B", "d", distributed_clustered=True)
    ab_cluster.create_index("B", "d", clustered=True)
    gi = ab_cluster.create_global_index("B", "d", distributed_clustered=True)
    assert gi.distributed_clustered


def test_storage_tuples_accounts_everything(ab_cluster):
    ab_cluster.create_auxiliary_relation("B", "d")
    ab_cluster.create_global_index("A", "c")
    usage = ab_cluster.storage_tuples()
    assert usage["B"] == 20
    assert usage["AR_B_d"] == 20
    assert usage["GI_A_c"] == 0  # A is empty


def test_fragment_sizes_and_pages(ab_cluster):
    sizes = ab_cluster.fragment_sizes("B")
    assert sum(sizes.values()) == 20
    assert ab_cluster.relation_pages("B") >= 1


def test_view_rows_requires_view(ab_cluster):
    with pytest.raises(KeyError):
        ab_cluster.view_rows("nope")


def test_duplicate_catalog_names_rejected(ab_cluster):
    with pytest.raises(ValueError):
        ab_cluster.create_relation(Schema.of("A", "x"), partitioned_on="x")


def test_base_writes_tagged_base(ab_cluster):
    snapshot = ab_cluster.insert("A", [(1, 2, "x")])
    assert snapshot.total_workload([Tag.BASE]) == 2.0
    assert snapshot.maintenance_workload() == 0.0  # no views, no structures
