"""Schedule-permutation race detector tests (repro.analysis.interleave).

Three layers: schedule mechanics (seeded determinism, replay alignment),
the clean-engine equivalence sweep, and the teeth test — a seeded
merge-order bug (folding worker ledger deltas in arrival order instead of
canonical ``(node, op, tag)`` order) must be caught and delta-debugged to
a witness of at most three reordered events.
"""

import pytest

from repro.analysis.interleave import (
    DetectorReport,
    ReplaySchedule,
    SeededSchedule,
    ddmin,
    run_config,
    run_detector,
)
from repro.cluster.parallel import fork_available
from repro.costs.ledger import CostLedger

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)


# ---------------------------------------------------------------- schedules


def test_seeded_schedule_is_deterministic_and_records_non_identity():
    first = SeededSchedule(5)
    second = SeededSchedule(5)
    items = list("abcdef")
    for step in range(6):
        assert first.permute("reply", (step, -1), list(items)) == (
            second.permute("reply", (step, -1), list(items))
        )
    assert first.events == second.events
    assert first.events, "six 6-item decisions should not all be identity"
    for kind, _key, perm in first.events:
        assert kind == "reply"
        assert sorted(perm) == list(range(len(perm)))
        assert list(perm) != sorted(perm)


def test_seeded_schedule_leaves_short_lists_alone():
    schedule = SeededSchedule(1)
    assert schedule.permute("merge", (0, -1), []) == []
    assert schedule.permute("merge", (1, -1), ["x"]) == ["x"]
    assert schedule.events == []


def test_replay_schedule_applies_only_matching_decisions():
    replay = ReplaySchedule([("merge", (2, -1), (1, 0))])
    assert replay.permute("merge", (2, -1), ["a", "b"]) == ["b", "a"]
    # Different key, different kind, or mismatched length: identity.
    assert replay.permute("merge", (3, -1), ["a", "b"]) == ["a", "b"]
    assert replay.permute("reply", (2, -1), ["a", "b"]) == ["a", "b"]
    assert replay.permute("merge", (2, -1), ["a", "b", "c"]) == ["a", "b", "c"]


def test_ddmin_minimizes_to_the_failing_core():
    events = [("reply", (i, -1), (1, 0)) for i in range(8)]
    culprits = {events[2], events[5]}

    def still_fails(subset):
        return culprits <= set(subset)

    minimal = ddmin(events, still_fails)
    assert set(minimal) == culprits


# -------------------------------------------------------------- equivalence


def test_clean_engine_is_bit_identical_under_permutation():
    report = run_detector(
        methods=("auxiliary",),
        modes=("eager",),
        workers=(2,),
        seeds=range(3),
        steps=10,
    )
    assert isinstance(report, DetectorReport)
    assert report.ok, report.summary()
    assert report.schedules_run == 3
    assert report.distinct_schedules == 3
    assert "all bit-identical" in report.summary()


def test_deferred_mode_equivalence():
    report = run_detector(
        methods=("global_index",),
        modes=("deferred",),
        workers=(2,),
        seeds=range(2),
        steps=10,
    )
    assert report.ok, report.summary()


# -------------------------------------------------------------------- teeth


def _unsorted_absorb(self, deltas):
    """The seeded bug: fold worker cell deltas in arrival order.  Cell
    *values* stay equal (sums commute) but the coordinator ledger's cell
    insertion order now depends on reply/merge order."""
    target = self._cells
    for cells in deltas:
        for cell, count in cells.items():
            target[cell] += count


def test_unsorted_merge_bug_is_caught_and_shrunk(monkeypatch):
    monkeypatch.setattr(CostLedger, "absorb", _unsorted_absorb)
    report = run_detector(
        methods=("auxiliary",),
        modes=("eager",),
        workers=(2,),
        seeds=range(6),
        steps=14,
    )
    assert not report.ok, "detector missed the seeded merge-order bug"
    divergence = report.divergences[0]
    assert divergence.component == "cell_stream"
    assert divergence.witness, "shrinker returned an empty witness"
    assert len(divergence.witness) <= 3
    assert set(divergence.witness) <= set(divergence.events)
    # The witness names only order decisions that can move cell deltas.
    for kind, _key, _perm in divergence.witness:
        assert kind in ("envelope", "refresh", "reply", "merge")
    assert "minimal witness" in divergence.describe()


def test_values_still_match_serial_under_the_seeded_bug(monkeypatch):
    """The bug is order-only: totals remain correct, which is exactly why
    the canonical cell stream (not value comparison) must catch it."""
    monkeypatch.setattr(CostLedger, "absorb", _unsorted_absorb)
    serial = run_config("auxiliary", "eager", None, steps=10)
    schedule = SeededSchedule(1)
    permuted = run_config("auxiliary", "eager", 2, schedule, steps=10)
    assert permuted.diff_label(serial) is None
