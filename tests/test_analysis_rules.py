"""Unit tests for the six reprolint rules (repro.analysis.rules).

Each rule gets a seeded violation (detected), a clean counterpart (not
detected), and its suppression forms (``# repro: noqa=REPxxx`` and the
rule's domain annotation where it has one), exercised over synthetic
module trees laid out like the real package (``cluster/``, ``core/``…).
"""

import textwrap

from repro.analysis import analyze_paths


def run_tree(tmp_path, files, only=None):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], only_rules=only)


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ------------------------------------------------------------------ REP001


def test_rep001_flags_non_network_send(tmp_path):
    result = run_tree(tmp_path, {
        "cluster/engine.py": """
            def go(pipe, payload):
                pipe.send(payload)
        """,
    }, only=["REP001"])
    assert rules_of(result) == ["REP001"]
    assert "bypasses the charging Network wrapper" in result.findings[0].message


def test_rep001_flags_direct_send_charge(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(ledger, node, Op, tag):
                ledger.charge(node, Op.SEND, tag)
        """,
    }, only=["REP001"])
    assert rules_of(result) == ["REP001"]
    assert "diverge" in result.findings[0].message


def test_rep001_network_wrapper_calls_are_clean(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(self, src, dst, tag):
                self.network.send(src, dst, tag)
                self.cluster.network.broadcast_many(src, 3, tag)
        """,
    }, only=["REP001"])
    assert result.findings == []


def test_rep001_annotation_and_noqa(tmp_path):
    result = run_tree(tmp_path, {
        "cluster/engine.py": """
            def go(pipe, other, payload):
                pipe.send(payload)  # repro: uncharged-mirror=IPC reply only
                other.send(payload)  # repro: noqa=REP001
        """,
    }, only=["REP001"])
    assert result.findings == []
    assert result.suppressed == 1  # the noqa; annotations silence in-rule


def test_rep001_out_of_scope_dirs_ignored(tmp_path):
    result = run_tree(tmp_path, {
        "bench/engine.py": "def go(pipe):\n    pipe.send(1)\n",
    }, only=["REP001"])
    assert result.findings == []


# ------------------------------------------------------------------ REP002


def test_rep002_flags_clocks_and_rng(tmp_path):
    result = run_tree(tmp_path, {
        "costs/engine.py": """
            import random
            import time

            def go():
                a = time.time()
                b = random.random()
                c = random.Random()
                return a, b, c
        """,
    }, only=["REP002"])
    assert rules_of(result) == ["REP002", "REP002", "REP002"]


def test_rep002_flags_raw_set_iteration(tmp_path):
    result = run_tree(tmp_path, {
        "costs/engine.py": """
            def go(a, b):
                out = {}
                for cell in set(a) | set(b):
                    out[cell] = 1
                return out
        """,
    }, only=["REP002"])
    assert rules_of(result) == ["REP002"]
    assert "sorted" in result.findings[0].message


def test_rep002_sorted_sets_and_seeded_rng_clean(tmp_path):
    result = run_tree(tmp_path, {
        "costs/engine.py": """
            import random

            def go(a, b):
                rng = random.Random(17)
                return [rng.random()] + [c for c in sorted(set(a) | set(b))]
        """,
    }, only=["REP002"])
    assert result.findings == []


def test_rep002_wall_clock_annotation(tmp_path):
    result = run_tree(tmp_path, {
        "cluster/engine.py": """
            import time

            def go():
                return time.perf_counter_ns()  # repro: wall-clock=telemetry only
        """,
    }, only=["REP002"])
    assert result.findings == []


# ------------------------------------------------------------------ REP003


def test_rep003_flags_direct_tracer_and_unguarded_access(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(obs):
                t = Tracer()
                obs.metrics.counter("x").inc()
                return t
        """,
    }, only=["REP003"])
    assert rules_of(result) == ["REP003", "REP003"]


def test_rep003_flags_facade_mutation(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(cluster, registry):
                cluster.obs.metrics = registry
        """,
    }, only=["REP003"])
    assert rules_of(result) == ["REP003"]
    assert "mutates the observability facade" in result.findings[0].message


def test_rep003_guarded_access_and_span_clean(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(obs):
                with obs.span("phase", n=1):
                    pass
                if obs.enabled:
                    obs.metrics.counter("x").inc()
                    obs.event("hit")
                value = obs.metrics.gauge("y") if obs.enabled else None
                return value
        """,
    }, only=["REP003"])
    assert result.findings == []


def test_rep003_def_level_obs_guarded_annotation(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def emit(obs, n):  # repro: obs-guarded=caller tests obs.enabled
                obs.metrics.counter("x").inc(n)
                obs.event("emit", n=n)
        """,
    }, only=["REP003"])
    assert result.findings == []


# ------------------------------------------------------------------ REP004


def test_rep004_flags_literal_cost_parameters(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go():
                return CostParameters(insert_ios=2.0)
        """,
    }, only=["REP004"])
    assert rules_of(result) == ["REP004"]
    assert "model layer" in result.findings[0].message


def test_rep004_flags_literal_ios_keyword(tmp_path):
    result = run_tree(tmp_path, {
        "joins/engine.py": """
            def go(thing):
                thing.configure(fetch_ios=-1.5)
        """,
    }, only=["REP004"])
    assert rules_of(result) == ["REP004"]


def test_rep004_model_layer_and_bench_exempt(tmp_path):
    source = "def go():\n    return CostParameters(insert_ios=2.0)\n"
    result = run_tree(tmp_path, {
        "costs/model.py": source,
        "model/params.py": source,
        "bench/sweeps.py": source,
    }, only=["REP004"])
    assert result.findings == []


def test_rep004_derived_weights_and_annotation_clean(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(base, scale):
                a = CostParameters(insert_ios=base.insert_ios * scale)
                b = CostParameters(insert_ios=4.0)  # repro: cost-literal=sensitivity probe
                return a, b
        """,
    }, only=["REP004"])
    assert result.findings == []


# ------------------------------------------------------------------ REP005


def test_rep005_flags_unregistered_construction_kind(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(engine, ops):
                ops.append(("bogus_kind", 0, "A"))
                engine.run_ops([("also_bogus", 1, "B")])
                return engine.run_ops([
                    ("another", node, "C") for node in range(2)
                ])
        """,
    }, only=["REP005"])
    assert rules_of(result) == ["REP005", "REP005", "REP005"]
    assert "unregistered kind" in result.findings[0].message


def test_rep005_registered_kinds_clean(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(engine, ops):
                ops.append(("ins", 0, "A", [(1,)], "tag"))
                ops.append(("charge", 1, "SEARCH", "tag", 2))
                return engine.run_ops(ops)
        """,
    }, only=["REP005"])
    assert result.findings == []


def test_rep005_handler_exhaustiveness(tmp_path):
    # A fake engine file missing the "merge" branch in _execute_op, and an
    # _apply_block that skips "gi_delta" while handling a block kind the
    # registry has never heard of.
    result = run_tree(tmp_path, {
        "cluster/parallel.py": """
            def _execute_op(nodes, op):
                kind = op[0]
                if kind in ("probe", "gi_probe", "fetch", "charge"):
                    return None
                if kind == "ins" or kind == "del" or kind == "rr_del":
                    return None
                if kind == "gi_ins" or kind == "gi_del":
                    return None
                if kind in ("migrate", "handoff", "replica_apply"):
                    return None
                raise ValueError(kind)

            def _apply_block(nodes, cache, block, data=True):
                kind = block.kind
                if kind == "frag_delta":
                    return
                if kind == "view_snapshot":
                    return
                raise ValueError(kind)
        """,
    }, only=["REP005"])
    messages = [finding.message for finding in result.findings]
    assert any("no branch for envelope kind 'merge'" in m for m in messages)
    assert any(
        "no branch for envelope kind 'gi_delta'" in m for m in messages
    )
    assert any(
        "handles kind 'view_snapshot' which is outside BLOCK_KINDS" in m
        for m in messages
    )
    assert len(result.findings) == 3


def test_rep005_flags_unregistered_block_kind(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(journal):
                good = DeltaBlock("frag_delta", 0, "A")
                named = DeltaBlock(FRAG_DELTA, 0, "A")
                bad = DeltaBlock("bogus_block", 0, "A")
                also_bad = DeltaBlock(kind="view_patch", node=1, name="V")
                return good, named, bad, also_bad
        """,
    }, only=["REP005"])
    assert rules_of(result) == ["REP005", "REP005"]
    assert "unregistered kind 'bogus_block'" in result.findings[0].message
    assert "unregistered kind 'view_patch'" in result.findings[1].message


def test_rep005_real_engine_is_exhaustive():
    from repro.cluster import parallel

    result = analyze_paths([parallel.__file__], only_rules=["REP005"])
    assert result.findings == []
    assert parallel.MUTATING_KINDS == parallel.COMMAND_KINDS - parallel.READ_ONLY_KINDS


# ------------------------------------------------------------------ REP006


def test_rep006_flags_unlogged_mutation(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def fold(fragment, rowid, row):
                fragment.delete(rowid)
                fragment.insert(row)
        """,
    }, only=["REP006"])
    assert rules_of(result) == ["REP006", "REP006"]
    assert "undo" in result.findings[0].message


def test_rep006_undo_logged_function_clean(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def fold(self, fragment, rowid, row):
                stored = fragment.table.fetch(rowid)
                fragment.delete(rowid)
                self._record_undo(lambda: fragment.restore(rowid, stored))
        """,
    }, only=["REP006"])
    assert result.findings == []


def test_rep006_def_level_annotation_and_noqa(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def backfill(fragment, rows):  # repro: no-undo=offline DDL build
                for row in rows:
                    fragment.insert(row)

            def patch(fragment, row):
                fragment.insert(row)  # repro: noqa=REP006
        """,
    }, only=["REP006"])
    assert result.findings == []
    assert result.suppressed == 1


def test_rep006_node_layer_and_plain_receivers_exempt(tmp_path):
    result = run_tree(tmp_path, {
        "cluster/node.py": """
            def insert(self, name, row):
                return self.fragment(name).insert(row)
        """,
        "core/other.py": """
            def go(queue, item):
                queue.insert(0, item)
        """,
    }, only=["REP006"])
    assert result.findings == []


# ------------------------------------------------------------------ REP000


def test_rep000_malformed_suppressions_reported(tmp_path):
    result = run_tree(tmp_path, {
        "core/engine.py": """
            def go(pipe):
                pipe.send(1)  # repro: noqa
                pipe.send(2)  # repro: wall-clock=
                pipe.send(3)  # repro: wat=hello
        """,
    }, only=["REP001"])
    rep000 = [f for f in result.findings if f.rule == "REP000"]
    assert len(rep000) == 3
    # And the malformed noqa did NOT silence the REP001 findings.
    assert len([f for f in result.findings if f.rule == "REP001"]) == 3


def test_rep000_syntax_error_reported(tmp_path):
    result = run_tree(tmp_path, {"core/broken.py": "def go(:\n    pass\n"})
    assert rules_of(result) == ["REP000"]
    assert "does not parse" in result.findings[0].message


# ----------------------------------------------------------- the real tree


def test_real_source_tree_is_clean():
    """The shipped tree must satisfy every rule with an empty baseline —
    the acceptance bar of this subsystem."""
    import repro

    root = repro.__path__[0]
    result = analyze_paths([root])
    assert result.findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
