"""Time-series collector (repro.obs.timeseries): sampling, derivation,
ring-buffer bounds, and both export shapes."""

import pytest

from repro.obs.export import validate_prometheus_range
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesCollector, series_rates


def _collector(capacity: int = 240):
    registry = MetricsRegistry()
    collector = TimeSeriesCollector(lambda: registry, capacity=capacity)
    return registry, collector


def test_sample_deltas_and_rates():
    registry, collector = _collector()
    ops = registry.counter("repro_load_ops_total", "ops")
    ops.inc(3, kind="update")
    collector.sample(0.0)
    ops.inc(5, kind="update")
    ops.inc(2, kind="read")
    collector.sample(2.0)
    ops.inc(1, kind="read")
    collector.sample(3.0)

    series = collector.series()
    updates = series["repro_load_ops_total"]['{kind="update"}']
    assert updates == [3.0, 8.0, 8.0]
    reads = series["repro_load_ops_total"]['{kind="read"}']
    assert reads == [None, 2.0, 3.0]

    deltas = collector.deltas()
    assert deltas["repro_load_ops_total"]['{kind="update"}'] == [5.0, 0.0]
    assert deltas["repro_load_ops_total"]['{kind="read"}'] == [2.0, 1.0]

    rates = collector.rates()
    assert rates["repro_load_ops_total"]['{kind="update"}'] == [2.5, 0.0]
    assert rates["repro_load_ops_total"]['{kind="read"}'] == [1.0, 1.0]


def test_ring_buffer_evicts_oldest():
    registry, collector = _collector(capacity=2)
    gauge = registry.gauge("repro_arrival_rate", "rate")
    for step in range(5):
        gauge.set(float(step))
        collector.sample(float(step))
    assert len(collector) == 2
    assert collector.times == (3.0, 4.0)
    assert collector.samples_taken == 5
    values = collector.series()["repro_arrival_rate"][""]
    assert values == [3.0, 4.0]


def test_non_monotone_timestamp_rejected():
    _registry, collector = _collector()
    collector.sample(1.0)
    with pytest.raises(ValueError):
        collector.sample(0.5)
    collector.sample(1.0)  # equal timestamps are allowed


def test_capacity_below_two_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        TimeSeriesCollector(lambda: registry, capacity=1)


def test_jsonl_round_trip():
    registry, collector = _collector()
    ops = registry.counter("repro_load_ops_total", "ops")
    for step in range(3):
        ops.inc(kind="update")
        collector.sample(float(step))
    text = collector.to_jsonl()
    assert len(text.splitlines()) == 3
    rebuilt = TimeSeriesCollector.from_jsonl(text)
    assert rebuilt.times == collector.times
    assert rebuilt.series() == collector.series()
    assert rebuilt.deltas() == collector.deltas()


def test_jsonl_round_trip_respects_capacity():
    registry, collector = _collector()
    ops = registry.counter("repro_load_ops_total", "ops")
    for step in range(4):
        ops.inc()
        collector.sample(float(step))
    rebuilt = TimeSeriesCollector.from_jsonl(collector.to_jsonl(), capacity=2)
    assert rebuilt.times == (2.0, 3.0)
    assert rebuilt.samples_taken == 4


def test_prometheus_range_export_shape():
    registry, collector = _collector()
    ops = registry.counter("repro_load_ops_total", "ops")
    gauge = registry.gauge("repro_arrival_rate", "rate")
    ops.inc(2, kind="update")
    gauge.set(100.0, config="naive-eager-w0", step=0)
    collector.sample(0.0)
    ops.inc(3, kind="update")
    collector.sample(1.0)

    doc = collector.to_prometheus_range()
    assert validate_prometheus_range(doc) == []
    assert doc["status"] == "success"
    assert doc["data"]["resultType"] == "matrix"
    by_name = {}
    for result in doc["data"]["result"]:
        by_name.setdefault(result["metric"]["__name__"], []).append(result)
    ops_series = by_name["repro_load_ops_total"][0]
    assert ops_series["metric"]["kind"] == "update"
    assert ops_series["values"] == [[0.0, "2.0"], [1.0, "5.0"]]
    rate_series = by_name["repro_arrival_rate"][0]
    assert rate_series["metric"]["config"] == "naive-eager-w0"
    # The gauge existed at both samples; the value never moved.
    assert [value for _, value in rate_series["values"]] == ["100.0", "100.0"]


def test_prometheus_range_omits_gaps():
    registry, collector = _collector()
    collector.sample(0.0)  # registry empty: no series yet
    registry.counter("repro_load_ops_total", "ops").inc()
    collector.sample(1.0)
    doc = collector.to_prometheus_range()
    assert validate_prometheus_range(doc) == []
    (result,) = doc["data"]["result"]
    # The first sample predates the series: its point is omitted, exactly
    # as a real range query omits scrapes with no data.
    assert [t for t, _ in result["values"]] == [1.0]


def test_series_rates_helper():
    assert series_rates([0.0, 1.0, 3.0], [0.0, 10.0, 10.0]) == [10.0, 0.0]
    assert series_rates([0.0, 0.0], [1.0, 5.0]) == [0.0]
