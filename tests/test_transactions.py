"""Tests for repro.cluster.transactions."""

import pytest

from tests.conftest import make_view


def test_transaction_scopes_cost(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="inl")
    with ab_cluster.transaction() as txn:
        txn.insert("A", [(1, 2, "x"), (2, 3, "y")])
    report = txn.report
    assert report is not None
    assert report.statements == 1
    assert report.maintenance_workload == 6.0  # 3 I/Os per tuple
    assert report.maintenance_response_time <= report.maintenance_workload
    assert report.total_workload > report.maintenance_workload  # base+view


def test_transaction_multiple_statements(ab_cluster):
    make_view(ab_cluster, "auxiliary")
    with ab_cluster.transaction() as txn:
        txn.insert("A", [(1, 2, "x")])
        txn.update("A", [((1, 2, "x"), (1, 3, "x"))])
        txn.delete("A", [(1, 3, "x")])
    assert txn.report.statements == 3
    assert ab_cluster.scan_relation("A") == []


def test_transaction_excludes_outside_work(ab_cluster):
    make_view(ab_cluster, "auxiliary", strategy="inl")
    ab_cluster.insert("A", [(9, 4, "pre")])  # outside the transaction
    with ab_cluster.transaction() as txn:
        txn.insert("A", [(1, 2, "x")])
    assert txn.report.maintenance_workload == 3.0


def test_transaction_reenter_rejected(ab_cluster):
    txn = ab_cluster.transaction()
    with txn:
        with pytest.raises(RuntimeError):
            txn.__enter__()


def test_transaction_use_outside_context_rejected(ab_cluster):
    txn = ab_cluster.transaction()
    with pytest.raises(RuntimeError):
        txn.insert("A", [(1, 2, "x")])
    with txn:
        pass
    with pytest.raises(RuntimeError):
        txn.insert("A", [(1, 2, "x")])


def test_empty_transaction(ab_cluster):
    with ab_cluster.transaction() as txn:
        pass
    assert txn.report.statements == 0
    assert txn.report.total_workload == 0.0
