"""The AUTO strategy must switch regimes where the model says it should."""

import pytest

from repro import Op
from repro.model import MethodVariant, ModelParameters, sort_merge_crossover
from repro.storage.pages import PageLayout
from repro.workloads.uniform import UniformJoinWorkload, build_cluster

# A compact instance of the model's scenario: |B| = 320 pages at one tuple
# per page (64 keys x 5 matches), M = 100, L = 16.
LAYOUT = PageLayout(tuples_per_page=1, memory_pages=100)
NUM_NODES = 16
FANOUT = 5
NUM_KEYS = 64


def params():
    return ModelParameters(
        num_nodes=NUM_NODES, fanout=float(FANOUT),
        partner_pages=NUM_KEYS * FANOUT, memory_pages=100,
    )


def run_auto(method, clustered, batch):
    workload = UniformJoinWorkload(
        num_keys=NUM_KEYS, fanout=FANOUT, clustered=clustered
    )
    cluster = build_cluster(
        workload, num_nodes=NUM_NODES, method=method, strategy="auto",
        layout=LAYOUT,
    )
    return cluster.insert("A", workload.a_rows(batch))


def test_naive_clustered_switches_at_model_crossover():
    crossover = sort_merge_crossover(MethodVariant.NAIVE_CLUSTERED, params())
    below = run_auto("naive", True, max(1, crossover - 4))
    above = run_auto("naive", True, crossover + 4)
    # Below: per-tuple index probes; above: fragment scans, no probes.
    assert below.op_count(Op.SEARCH) > 0
    assert below.op_count(Op.SCAN_PAGE) == 0
    assert above.op_count(Op.SEARCH) == 0
    assert above.op_count(Op.SCAN_PAGE) > 0


def test_auxiliary_stays_inl_far_longer():
    naive_crossover = sort_merge_crossover(MethodVariant.NAIVE_CLUSTERED, params())
    ar_crossover = sort_merge_crossover(MethodVariant.AUXILIARY, params())
    assert ar_crossover > 5 * naive_crossover
    # At a batch where naive has long switched, AR still probes per tuple.
    batch = min(2 * naive_crossover, ar_crossover - 1)
    snapshot = run_auto("auxiliary", False, batch)
    assert snapshot.op_count(Op.SEARCH) >= batch
    assert snapshot.op_count(Op.SCAN_PAGE) == 0


def test_auto_never_changes_results():
    from collections import Counter

    from repro import recompute_view

    workload = UniformJoinWorkload(num_keys=NUM_KEYS, fanout=FANOUT, clustered=True)
    for batch in (3, 50, 400):
        cluster = build_cluster(
            workload, num_nodes=NUM_NODES, method="naive", strategy="auto",
            layout=LAYOUT,
        )
        cluster.insert("A", workload.a_rows(batch))
        assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")
