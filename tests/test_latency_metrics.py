"""Histogram quantile estimation (repro.obs.metrics.Histogram.quantile).

Pins the estimator both regimes: exact sorted-sample interpolation below
``EXACT_QUANTILE_CUTOFF`` observations, Prometheus-style cumulative-bucket
interpolation (clamped to the observed maximum) above it.
"""

import random

import pytest

from repro.obs.metrics import (
    EXACT_QUANTILE_CUTOFF,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def _latency_histogram() -> Histogram:
    return Histogram("repro_stmt_latency_seconds", buckets=LATENCY_BUCKETS)


# ------------------------------------------------------------ exact regime


def test_exact_quantiles_on_known_distribution():
    """1..100 has textbook order statistics: linear interpolation at rank
    q*(n-1) gives p50=50.5, p95=95.05, p99=99.01."""
    histogram = _latency_histogram()
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.quantile(0.50) == pytest.approx(50.5)
    assert histogram.quantile(0.95) == pytest.approx(95.05)
    assert histogram.quantile(0.99) == pytest.approx(99.01)
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 100.0
    assert histogram.max_value() == 100.0


def test_exact_quantiles_ignore_observation_order():
    shuffled = _latency_histogram()
    ordered = _latency_histogram()
    values = [float(v) for v in range(1, 101)]
    for value in values:
        ordered.observe(value)
    rng = random.Random(7)
    rng.shuffle(values)
    for value in values:
        shuffled.observe(value)
    for q in (0.5, 0.95, 0.99):
        assert shuffled.quantile(q) == ordered.quantile(q)


def test_single_sample_answers_every_quantile():
    histogram = _latency_histogram()
    histogram.observe(0.0042)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert histogram.quantile(q) == 0.0042
    assert histogram.max_value() == 0.0042


def test_empty_label_set_returns_none():
    histogram = _latency_histogram()
    assert histogram.quantile(0.99) is None
    assert histogram.max_value() is None
    histogram.observe(1.0, kind="update")
    assert histogram.quantile(0.5, kind="read") is None
    assert histogram.quantile(0.5, kind="update") == 1.0


def test_quantile_outside_unit_interval_raises():
    histogram = _latency_histogram()
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.quantile(-0.1)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


# ----------------------------------------------------------- bucket regime


def test_bucket_estimates_track_exact_quantiles():
    """Above the cutoff the estimate is bucket-interpolated; doubling
    buckets bound the relative error by 2x of the true quantile."""
    rng = random.Random(11)
    values = [rng.uniform(1e-4, 1e-1) for _ in range(4 * EXACT_QUANTILE_CUTOFF)]
    histogram = _latency_histogram()
    for value in values:
        histogram.observe(value)
    assert histogram.count() == len(values) > EXACT_QUANTILE_CUTOFF
    ordered = sorted(values)
    for q in (0.5, 0.95, 0.99):
        estimate = histogram.quantile(q)
        exact = ordered[int(q * (len(ordered) - 1))]
        assert exact / 2 <= estimate <= exact * 2
        assert estimate <= histogram.max_value()


def test_bucket_quantiles_are_monotone():
    rng = random.Random(13)
    histogram = _latency_histogram()
    for _ in range(1000):
        histogram.observe(rng.expovariate(100.0))
    p50 = histogram.quantile(0.50)
    p95 = histogram.quantile(0.95)
    p99 = histogram.quantile(0.99)
    assert p50 <= p95 <= p99 <= histogram.max_value()


def test_bucket_estimate_clamps_to_observed_max():
    """300 identical observations: interpolation inside the owning bucket
    would report above the true value; the clamp pins it to the max."""
    histogram = _latency_histogram()
    for _ in range(300):
        histogram.observe(5.0)
    assert histogram.quantile(0.99) == 5.0
    assert histogram.quantile(0.5) == 5.0


def test_overflow_bucket_reports_observed_max():
    """Values beyond the largest finite bound land in +Inf; all the
    estimator can honestly report out there is the observed maximum."""
    histogram = _latency_histogram()
    beyond = max(LATENCY_BUCKETS) * 3
    for _ in range(300):
        histogram.observe(beyond)
    assert histogram.quantile(0.99) == beyond


def test_latency_buckets_are_log_spaced():
    assert LATENCY_BUCKETS[0] == 1e-6
    for lower, upper in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]):
        assert upper == pytest.approx(2 * lower)


def test_registry_histogram_uses_latency_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_stmt_latency_seconds", "svc", buckets=LATENCY_BUCKETS
    )
    assert histogram.buckets == tuple(LATENCY_BUCKETS)
