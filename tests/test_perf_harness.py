"""Smoke tests for the wall-clock perf harness (repro.bench.perf).

These runs are deliberately tiny: they prove the harness executes end to
end, the JSON schema validates, and the CLI writes its report — they make
no assertions about speedups, which belong to the full run on quiet
hardware (BENCH_PERF.json).
"""

import json

import pytest

from repro.bench import perf
from repro.bench.perf import CaseResult, PerfConfig, validate_report


@pytest.fixture(scope="module")
def tiny_report():
    config = PerfConfig(
        num_nodes=2,
        num_keys=8,
        fanout=2,
        total_rows=24,
        statement_size=8,
        headline_rows=24,
        repeats=1,
        worker_counts=(1, 2),
        multi_view_counts=(1, 2),
        latency_ops=12,
        latency_statement_size=4,
        latency_worker_counts=(0,),
    )
    return perf.run(config, smoke=True)


def test_report_schema_valid(tiny_report):
    assert validate_report(tiny_report) == []
    assert tiny_report["schema_version"] == perf.SCHEMA_VERSION
    assert len(tiny_report["results"]) == 12  # 3 methods x 2 workloads x 2 modes


def test_report_is_timestamp_free(tiny_report):
    """Schema v6: generated_at moved to the sidecar so identical re-runs
    leave the results document byte-stable."""
    assert "generated_at" not in tiny_report
    stamped = dict(tiny_report)
    stamped["generated_at"] = "2026-01-01T00:00:00+00:00"
    assert any("sidecar" in p for p in validate_report(stamped))


def test_report_covers_latency_section(tiny_report):
    section = tiny_report["latency"]
    from repro.bench.latency import validate_latency_section

    assert validate_latency_section(section) == []
    names = {entry["name"] for entry in section["configs"]}
    assert names == {
        f"{method}-{mode}-w0"
        for method in perf.METHODS
        for mode in perf.MODES
    }
    for entry in section["configs"]:
        assert len(entry["rates"]) >= 3


def test_report_covers_full_grid(tiny_report):
    cells = {
        (case["method"], case["workload"], case["mode"])
        for case in tiny_report["results"]
    }
    assert cells == {
        (method, workload, mode)
        for method in perf.METHODS
        for workload in perf.WORKLOADS
        for mode in perf.MODES
    }
    headline = tiny_report["headline"]
    assert headline["name"] == "skewed_large_transaction"
    assert headline["mode"] == "large_transaction"
    assert headline["speedup"] > 0


def test_report_covers_worker_sweep(tiny_report):
    cells = {
        (case["method"], case["workload"], case["workers"])
        for case in tiny_report["scaling"]
    }
    assert cells == {
        (method, workload, workers)
        for method in perf.METHODS
        for workload in perf.WORKLOADS
        for workers in (1, 2)
    }
    for case in tiny_report["scaling"]:
        assert case["speedup"] > 0
    parallel = tiny_report["headline_parallel"]
    assert parallel["name"] == "skewed_large_transaction_parallel"
    assert parallel["workers"] == 2
    assert isinstance(parallel["met_target"], bool)
    assert isinstance(parallel["workers1_within_budget"], bool)
    assert tiny_report["cpus"] >= 1


def test_report_covers_multi_view_sweep(tiny_report):
    cells = {
        (cell["method"], cell["views"])
        for cell in tiny_report["multi_view"]["sweep"]
    }
    assert cells == {
        (method, views) for method in perf.METHODS for views in (1, 2)
    }
    for cell in tiny_report["multi_view"]["sweep"]:
        assert cell["speedup"] > 0
        if cell["views"] == 1:
            # Single-view clusters never enter the shared path.
            assert cell["partition_passes_per_statement"] == 0.0
            assert cell["probes_deduped"] == 0
        else:
            # Every statement took the shared path with one group.
            assert cell["partition_passes_per_statement"] == 1.0
    headline = tiny_report["multi_view"]["headline"]
    assert headline["name"] == "five_view_shared_dag"
    assert headline["views"] == perf.HEADLINE_MULTI_VIEW_COUNT
    assert headline["partition_passes_per_statement"] == 1.0
    assert headline["probes_deduped"] > 0
    assert isinstance(headline["met_target"], bool)


def test_seeds_derive_from_config_names(tiny_report):
    """Seeds are CRC-32 of the case name: stable across runs/processes."""
    assert perf.config_seed("grid/skewed/naive/eager") == perf.config_seed(
        "grid/skewed/naive/eager"
    )
    assert perf.config_seed("a") != perf.config_seed("b")
    for case in tiny_report["results"]:
        expected = perf.config_seed(
            f"grid/{case['workload']}/{case['method']}/{case['mode']}"
        )
        assert case["seed"] == expected
    for case in tiny_report["scaling"]:
        expected = perf.config_seed(
            f"scaling/{case['workload']}/{case['method']}/w{case['workers']}"
        )
        assert case["seed"] == expected
    for cell in tiny_report["multi_view"]["sweep"]:
        expected = perf.config_seed(
            f"multi_view/{cell['method']}/v{cell['views']}"
        )
        assert cell["seed"] == expected


def test_render_mentions_every_method(tiny_report):
    text = perf.render(tiny_report)
    for method in perf.METHODS:
        assert method in text
    assert "headline" in text


def test_validate_report_catches_problems(tiny_report):
    broken = dict(tiny_report)
    broken["schema_version"] = 0
    broken["results"] = tiny_report["results"][:-1]
    problems = validate_report(broken)
    assert any("schema_version" in p for p in problems)
    assert any("grid results" in p for p in problems)
    headless = dict(tiny_report)
    headless.pop("headline")
    assert any("headline" in p for p in validate_report(headless))
    truncated = dict(tiny_report)
    truncated["multi_view"] = {
        "sweep": tiny_report["multi_view"]["sweep"][:-1],
        "headline": {},
    }
    problems = validate_report(truncated)
    assert any("multi_view sweep cells" in p for p in problems)
    assert any("multi_view headline" in p for p in problems)


def test_case_result_derived_metrics():
    case = CaseResult(
        method="auxiliary", workload="skewed", mode="eager",
        rows=100, reference_seconds=2.0, batched_seconds=0.5, seed=1,
    )
    assert case.reference_tps == 50.0
    assert case.batched_tps == 200.0
    assert case.speedup == 4.0
    assert case.as_dict()["speedup"] == 4.0


def test_cli_writes_report(tmp_path, capsys, monkeypatch):
    out = tmp_path / "perf.json"
    # Shrink the smoke config further so the CLI test stays fast.
    monkeypatch.setattr(
        PerfConfig, "smoke",
        classmethod(lambda cls: cls(
            num_nodes=2, num_keys=8, fanout=2, total_rows=16,
            statement_size=8, headline_rows=16, repeats=1,
            worker_counts=(1,),
            latency_ops=12, latency_statement_size=4,
            latency_worker_counts=(0,),
        )),
    )
    assert perf.main(["--smoke", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert validate_report(report) == []
    assert report["smoke"] is True
    assert "wrote" in capsys.readouterr().out
    sidecar = json.loads((tmp_path / "perf.meta.json").read_text())
    assert sidecar["report"] == "perf.json"
    assert sidecar["schema_version"] == perf.SCHEMA_VERSION
    assert "generated_at" in sidecar


def test_default_output_path_is_repo_root():
    path = perf.default_output_path()
    assert path.name == "BENCH_PERF.json"
    assert (path.parent / "src").is_dir()
