"""Runtime sanitizer (``Cluster(sanitize=True)`` / ``REPRO_SANITIZE=1``).

Two halves, matching ISSUE 5's acceptance bar:

* **Transparency** — a sanitized run's ledger cells, network statistics,
  and fragment contents are bit-identical to an unsanitized run that
  differs only in the flag.  The sanitizer observes; it never charges.
* **Teeth** — each dynamic invariant check actually fires when its
  invariant is broken (seeded by corrupting engine state from the test,
  the runtime analogue of the seeded-source rule tests).
"""

import random

import pytest

from repro import Cluster, HashPartitioning, Schema, two_way_view
from repro.analysis.sanitizer import (
    SanitizeError,
    SendAccountingNetwork,
    StatementSanitizer,
    install,
)
from repro.cluster.network import Network
from repro.cluster.parallel import COMMAND_KINDS, validate_op
from repro.costs import Op, Tag

METHODS = ("naive", "auxiliary", "global_index", "hybrid")


def _build(method, *, sanitize, num_nodes=4, **kwargs):
    cluster = Cluster(num_nodes=num_nodes, sanitize=sanitize, **kwargs)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d", partitioning=HashPartitioning("e")),
        method=method,
    )
    return cluster


def _script(seed, steps=30, keys=7):
    rng = random.Random(seed)
    ops, serial, live = [], 0, {"A": [], "B": []}
    for _ in range(steps):
        kind = rng.choice(("ins", "ins", "del", "upd"))
        rel = rng.choice(("A", "B"))
        if kind == "ins":
            rows = []
            for _ in range(rng.randrange(1, 5)):
                rows.append((1000 + serial, rng.randrange(keys), serial))
                serial += 1
            live[rel].extend(rows)
            ops.append(("insert", rel, rows))
        elif kind == "del" and live[rel]:
            ops.append(
                ("delete", rel, [live[rel].pop(rng.randrange(len(live[rel])))])
            )
        elif kind == "upd" and live[rel]:
            old = live[rel].pop(rng.randrange(len(live[rel])))
            new = (1000 + serial, rng.randrange(keys), serial)
            serial += 1
            live[rel].append(new)
            ops.append(("update", rel, [(old, new)]))
    return ops


def _run(cluster, ops):
    for kind, rel, payload in ops:
        if kind == "insert":
            cluster.insert(rel, payload)
        elif kind == "delete":
            cluster.delete(rel, payload)
        else:
            cluster.update(rel, payload)


def _network_state(cluster):
    stats = cluster.network.stats
    return (stats.messages, stats.local_deliveries, dict(stats.by_link))


def _fragments(cluster, name):
    return {
        node.node_id: node.scan(name)
        for node in cluster.nodes
        if node.has_fragment(name)
    }


# ------------------------------------------------------------- transparency


@pytest.mark.parametrize("method", METHODS)
def test_sanitized_run_is_bit_identical(method):
    plain = _build(method, sanitize=False)
    sanitized = _build(method, sanitize=True)
    ops = _script(seed=hash(method) & 0xFFFF)
    _run(plain, ops)
    _run(sanitized, ops)
    assert not sanitized.ledger.diff(plain.ledger)
    assert _network_state(sanitized) == _network_state(plain)
    for name in ("A", "B", "JV"):
        assert _fragments(sanitized, name) == _fragments(plain, name)
    assert sanitized._sanitizer is not None
    assert sanitized._sanitizer.checks_run > 0


def test_sanitized_parallel_inline_engine_is_bit_identical():
    plain = _build("auxiliary", sanitize=False, workers=1)
    sanitized = _build("auxiliary", sanitize=True, workers=1)
    try:
        ops = _script(seed=99)
        _run(plain, ops)
        _run(sanitized, ops)
        assert not sanitized.ledger.diff(plain.ledger)
        assert _fragments(sanitized, "JV") == _fragments(plain, "JV")
    finally:
        plain.close()
        sanitized.close()


def test_sanitized_transaction_rollback_still_clean():
    cluster = _build("auxiliary", sanitize=True)
    before = _fragments(cluster, "JV")
    txn = cluster.transaction()
    with txn:
        txn.insert("A", [(5000, 1, "x"), (5001, 2, "y")])
        txn.rollback()
    assert _fragments(cluster, "JV") == before


def test_sanitize_with_fault_injector_disarms_parity():
    from repro.faults import FaultPlan, attach_faults

    cluster = _build("auxiliary", sanitize=True)
    attach_faults(cluster, plan=FaultPlan().drop(times=3), seed=7)
    # Unreliable sends make charge counts fate-dependent; the parity
    # counter must disarm instead of raising spurious errors.
    _run(cluster, _script(seed=3, steps=15))
    assert not cluster.network.parity_armed


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = Cluster(num_nodes=2)
    assert cluster.sanitize
    assert isinstance(cluster.network, SendAccountingNetwork)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not Cluster(num_nodes=2).sanitize
    monkeypatch.delenv("REPRO_SANITIZE")
    off = Cluster(num_nodes=2)
    assert not off.sanitize and off._sanitizer is None
    assert type(off.network) is Network  # no accounting subclass when off


# -------------------------------------------------------------------- teeth


def _sanitized():
    cluster = _build("auxiliary", sanitize=True)
    cluster.insert("A", [(0, 0, "seed")])
    return cluster


def test_parity_check_catches_uncharged_send():
    cluster = _sanitized()
    # A message that reaches the stats counters without a ledger charge:
    # exactly the drift REP001 bans at source level.
    cluster.network.expected_send_charges += 1
    with pytest.raises(SanitizeError, match="SEND charge parity"):
        cluster._sanitizer.check("seeded")


def test_parity_check_catches_out_of_band_charge():
    cluster = _sanitized()
    cluster.ledger.charge(0, Op.SEND, Tag.MAINTAIN)  # bypasses the wrapper
    with pytest.raises(SanitizeError, match="SEND charge parity"):
        cluster._sanitizer.check("seeded")


def test_ledger_cell_check_catches_out_of_range_node():
    cluster = _sanitized()
    cluster.ledger.charge(99, Op.INSERT, Tag.BASE)
    with pytest.raises(SanitizeError, match="outside"):
        cluster._sanitizer.check("seeded")


def test_network_stats_check_catches_bypassed_counter():
    cluster = _sanitized()
    cluster.network.stats.messages += 3
    with pytest.raises(SanitizeError, match="bypassed"):
        cluster._sanitizer.check("seeded")


def test_row_count_check_catches_unaccounted_mutation():
    cluster = _sanitized()
    info = cluster.catalog.relations["A"]
    node = next(n for n in cluster.nodes if n.has_fragment("A"))
    node.fragment("A").insert((777, 7, "stray"))  # repro: no-undo=test seeds a deliberate bypass
    assert info.row_count != sum(
        len(n.fragment("A").table) for n in cluster.nodes if n.has_fragment("A")
    )
    with pytest.raises(SanitizeError, match="bypassed the accounting"):
        cluster._sanitizer.check("seeded")


def test_disabled_facade_check_catches_pollution(monkeypatch):
    from repro.obs.collect import DISABLED

    cluster = _sanitized()
    monkeypatch.setitem(DISABLED.metrics._metrics, "oops_total", object())
    with pytest.raises(SanitizeError, match="DISABLED observability facade"):
        cluster._sanitizer.check("seeded")


def test_validate_op_rejects_unknown_and_malformed_kinds():
    with pytest.raises(AssertionError, match="unknown envelope op kind"):
        validate_op(("bogus_kind", 1, 2))
    with pytest.raises(AssertionError, match="non-empty tuple"):
        validate_op(())
    with pytest.raises(AssertionError, match="non-empty tuple"):
        validate_op(["probe"])
    for kind in COMMAND_KINDS:
        validate_op((kind,))  # registered vocabulary passes


def test_install_refuses_cluster_with_traffic():
    cluster = _build("auxiliary", sanitize=False)
    cluster.insert("A", [(1, 1, "x")])  # cross-node maintenance traffic
    assert cluster.network.stats.messages > 0
    with pytest.raises(RuntimeError, match="before any traffic"):
        install(cluster)


def test_statement_hook_runs_per_statement():
    cluster = _build("naive", sanitize=True)
    sanitizer = cluster._sanitizer
    assert isinstance(sanitizer, StatementSanitizer)
    ran = sanitizer.checks_run
    cluster.insert("A", [(1, 1, "x")])
    assert sanitizer.checks_run == ran + 1
