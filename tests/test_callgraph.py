"""Unit tests for the project call graph (repro.analysis.callgraph).

Each resolution tier gets a positive case; the documented limits (calls
through values produce no edge, unknown receivers fall back by name) are
pinned explicitly so the flow rules' soundness story stays honest.
"""

import ast
import textwrap

from repro.analysis.callgraph import build_callgraph, module_name


def build(files):
    parsed = [
        (path, ast.parse(textwrap.dedent(source)))
        for path, source in sorted(files.items())
    ]
    return build_callgraph(parsed)


def edge_set(graph, caller):
    return {(e.callee, e.via) for e in graph.callees(caller)}


# ------------------------------------------------------------- module names


def test_module_name_maps_paths_to_dotted():
    assert module_name("cluster/network.py") == "cluster.network"
    assert module_name("costs/__init__.py") == "costs"
    assert module_name("uniform.py") == "uniform"


# --------------------------------------------------------------- resolution


def test_module_local_and_nested_resolution():
    graph = build({
        "core/a.py": """
            def helper():
                pass

            def outer():
                def inner():
                    helper()
                inner()
        """,
    })
    assert edge_set(graph, "core.a.outer") == {("core.a.outer.inner", "direct")}
    assert edge_set(graph, "core.a.outer.inner") == {("core.a.helper", "direct")}


def test_relative_and_absolute_imports_resolve():
    graph = build({
        "core/util.py": """
            def shared():
                pass
        """,
        "core/x.py": """
            from .util import shared

            def go():
                shared()
        """,
        "cluster/y.py": """
            from repro.core.util import shared as s

            def run():
                s()
        """,
    })
    assert edge_set(graph, "core.x.go") == {("core.util.shared", "direct")}
    assert edge_set(graph, "cluster.y.run") == {("core.util.shared", "direct")}


def test_reexport_hop_through_package_init():
    graph = build({
        "costs/__init__.py": """
            from .ledger import charge_all
        """,
        "costs/ledger.py": """
            def charge_all():
                pass
        """,
        "core/z.py": """
            from ..costs import charge_all

            def go():
                charge_all()
        """,
    })
    assert edge_set(graph, "core.z.go") == {("costs.ledger.charge_all", "direct")}


def test_self_method_and_inherited_method_resolution():
    graph = build({
        "cluster/c.py": """
            class Base:
                def helper(self):
                    pass

            class Impl(Base):
                def run(self):
                    self.helper()
                    self.local()

                def local(self):
                    pass
        """,
    })
    assert edge_set(graph, "cluster.c.Impl.run") == {
        ("cluster.c.Base.helper", "self"),
        ("cluster.c.Impl.local", "self"),
    }


def test_constructor_links_to_init():
    graph = build({
        "core/k.py": """
            class Thing:
                def __init__(self):
                    pass

            def make():
                return Thing()
        """,
    })
    assert edge_set(graph, "core.k.make") == {("core.k.Thing.__init__", "direct")}


def test_by_name_fallback_links_every_candidate_sorted():
    graph = build({
        "cluster/a.py": """
            class Node:
                def apply(self):
                    pass
        """,
        "core/b.py": """
            class Maintainer:
                def apply(self):
                    pass

            def drive(target):
                target.apply()
        """,
    })
    edges = graph.callees("core.b.drive")
    assert [(e.callee, e.via) for e in edges] == [
        ("cluster.a.Node.apply", "name"),
        ("core.b.Maintainer.apply", "name"),
    ]


def test_calls_through_values_produce_no_edge():
    graph = build({
        "core/cb.py": """
            def worker():
                pass

            def spawn(run):
                run(target=worker)
        """,
    })
    # ``worker`` is referenced, never called: the documented limit.
    assert graph.callers("core.cb.worker") == []


# ----------------------------------------------------------------- queries


def test_reachability_and_path_finding():
    graph = build({
        "core/p.py": """
            def entry():
                middle()

            def middle():
                sink()

            def sink():
                pass

            def island():
                pass
        """,
    })
    reached = graph.reachable_from(["core.p.entry"])
    assert reached == {"core.p.entry", "core.p.middle", "core.p.sink"}
    path = graph.find_path(["core.p.entry"], "core.p.sink")
    assert [e.caller for e in path] == ["core.p.entry", "core.p.middle"]
    assert graph.find_path(["core.p.entry"], "core.p.island") is None
    assert graph.find_path(["core.p.entry"], "core.p.entry") == []


# ------------------------------------------------------------------- export


def test_dot_export_is_deterministic_and_marks_name_edges():
    files = {
        "core/d.py": """
            def a():
                b()

            def b(x=None):
                x.mystery()

            def mystery():
                pass
        """,
    }
    dot = build(files).to_dot()
    assert dot == build(files).to_dot()
    assert '"core.d.a" -> "core.d.b";' in dot
    assert '"core.d.b" -> "core.d.mystery" [style=dashed, color=gray50];' in dot
    assert dot.startswith("digraph repro_callgraph {")
