"""repro — a reproduction of Luo, Naughton, Ellmann & Watzke,
"A Comparison of Three Methods for Join View Maintenance in Parallel
RDBMS" (ICDE 2003).

The library provides:

* a shared-nothing parallel RDBMS substrate with the paper's cost
  accounting (:mod:`repro.cluster`, :mod:`repro.storage`,
  :mod:`repro.costs`);
* the three join-view maintenance methods — naive, auxiliary relation,
  global index — for two-way and multi-way views (:mod:`repro.core`);
* the paper's analytical model in closed form (:mod:`repro.model`);
* TPC-R-style workload generators (:mod:`repro.workloads`);
* a SQLite-partition backend standing in for the commercial parallel
  RDBMS of the paper's validation experiments (:mod:`repro.backends`);
* a benchmark harness regenerating every table and figure
  (:mod:`repro.bench` plus the ``benchmarks/`` tree).

Quickstart::

    from repro import Cluster, HashPartitioning, Schema, two_way_view

    cluster = Cluster(num_nodes=8)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d"), partitioned_on="b")
    view = cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method="auxiliary",
    )
    report = cluster.insert("A", [(1, 100, "x")])
    print(report.maintenance_workload())
"""

from .storage import Column, PageLayout, Row, Schema
from .costs import (
    CostLedger,
    CostParameters,
    CostSnapshot,
    Op,
    PAPER_COSTS,
    Tag,
)
from .cluster import (
    Cluster,
    HashPartitioning,
    RoundRobinPartitioning,
    Transaction,
    TransactionReport,
)
from .core import (
    JoinCondition,
    JoinStrategy,
    JoinViewDefinition,
    MaintenanceMethod,
    MethodAdvisor,
    define_join_view,
    recompute_view,
    two_way_view,
)
from .faults import (
    ConsistencyAuditor,
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
    attach_faults,
    detach_faults,
)
from .model import MethodVariant, ModelParameters, paper_scenario

__version__ = "1.0.0"

__all__ = [
    "Schema",
    "Column",
    "Row",
    "PageLayout",
    "CostParameters",
    "CostLedger",
    "CostSnapshot",
    "Op",
    "Tag",
    "PAPER_COSTS",
    "Cluster",
    "HashPartitioning",
    "RoundRobinPartitioning",
    "Transaction",
    "TransactionReport",
    "JoinViewDefinition",
    "JoinCondition",
    "two_way_view",
    "MaintenanceMethod",
    "JoinStrategy",
    "MethodAdvisor",
    "define_join_view",
    "recompute_view",
    "MethodVariant",
    "ModelParameters",
    "paper_scenario",
    "FaultPlan",
    "FaultInjector",
    "RecoveryPolicy",
    "ConsistencyAuditor",
    "attach_faults",
    "detach_faults",
    "__version__",
]
