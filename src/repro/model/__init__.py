"""The paper's analytical model (§3.1) in closed form."""

from .params import (
    ALL_VARIANTS,
    MethodVariant,
    ModelParameters,
    paper_scenario,
)
from .total_workload import savings_vs_naive, total_workload_ios, total_workload_ops
from .response_time import (
    JoinRegime,
    ResponsePrediction,
    index_response_ios,
    predict_response,
    response_time_ios,
    sort_merge_crossover,
    sort_merge_response_ios,
)
from .multiway_model import (
    HopModel,
    JV1_HOPS,
    JV2_HOPS,
    auxiliary_response_ios,
    figure13_prediction,
    global_index_response_ios,
    naive_response_ios,
    predicted_time_units,
)
from . import figures

__all__ = [
    "MethodVariant",
    "ALL_VARIANTS",
    "ModelParameters",
    "paper_scenario",
    "total_workload_ios",
    "total_workload_ops",
    "savings_vs_naive",
    "JoinRegime",
    "ResponsePrediction",
    "index_response_ios",
    "sort_merge_response_ios",
    "predict_response",
    "response_time_ios",
    "sort_merge_crossover",
    "HopModel",
    "JV1_HOPS",
    "JV2_HOPS",
    "naive_response_ios",
    "auxiliary_response_ios",
    "global_index_response_ios",
    "predicted_time_units",
    "figure13_prediction",
    "figures",
]
