"""Series generators for every analytical figure of the paper.

Each function returns the rows of one figure exactly as the paper plots
them (one row per x-value, one column per method variant).  The benchmark
harness prints them and EXPERIMENTS.md records them against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .multiway_model import figure13_prediction
from .params import ALL_VARIANTS, MethodVariant, ModelParameters, paper_scenario
from .response_time import (
    JoinRegime,
    response_time_ios,
    sort_merge_crossover,
)
from .total_workload import total_workload_ios

#: Node counts the paper sweeps in Figures 7 and 9-10.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)

Row = Dict[str, float]


def _variant_columns(compute) -> Row:
    return {variant.value: compute(variant) for variant in ALL_VARIANTS}


def figure7_rows(node_counts: Sequence[int] = DEFAULT_NODE_COUNTS) -> List[Row]:
    """Figure 7: TW per single-tuple insert vs number of data server nodes.

    AR stays at the constant 3; naive grows linearly in L; GI plateaus at
    13 (= 3 + N) once L exceeds N.
    """
    rows: List[Row] = []
    for num_nodes in node_counts:
        params = paper_scenario(num_nodes)
        row: Row = {"nodes": float(num_nodes)}
        row.update(_variant_columns(lambda v: total_workload_ios(v, params)))
        rows.append(row)
    return rows


def figure8_rows(
    fanouts: Sequence[float] = (1, 2, 5, 10, 20, 50, 100),
    num_nodes: int = 32,
) -> List[Row]:
    """Figure 8: TW per single-tuple insert vs join fan-out N, at L = 32.

    Shows the GI method interpolating between AR (small N) and naive
    (large N) — the paper's "intermediate method" claim.
    """
    rows: List[Row] = []
    for fanout in fanouts:
        params = paper_scenario(num_nodes).with_fanout(float(fanout))
        row: Row = {"fanout": float(fanout)}
        row.update(_variant_columns(lambda v: total_workload_ios(v, params)))
        rows.append(row)
    return rows


def figure9_rows(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    num_inserted: int = 400,
) -> List[Row]:
    """Figure 9: response time of one transaction (index-join regime).

    The paper uses 400 inserted tuples: AR falls as 3·⌈A/L⌉, naive with a
    clustered index is flat at A.
    """
    rows: List[Row] = []
    for num_nodes in node_counts:
        params = paper_scenario(num_nodes)
        row: Row = {"nodes": float(num_nodes)}
        row.update(
            _variant_columns(
                lambda v: response_time_ios(
                    v, num_inserted, params, JoinRegime.INDEX_NESTED_LOOPS
                )
            )
        )
        rows.append(row)
    return rows


def figure10_rows(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    num_inserted: int = 6_500,
) -> List[Row]:
    """Figure 10: response time of one 6,500-tuple transaction (sort-merge
    regime) — the scenario where naive-with-clustered-index wins.
    """
    rows: List[Row] = []
    for num_nodes in node_counts:
        params = paper_scenario(num_nodes)
        row: Row = {"nodes": float(num_nodes)}
        row.update(
            _variant_columns(
                lambda v: response_time_ios(
                    v, num_inserted, params, JoinRegime.SORT_MERGE
                )
            )
        )
        rows.append(row)
    return rows


def figure11_rows(
    insert_counts: Sequence[int] = (
        1, 10, 100, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 40_000, 70_000
    ),
    num_nodes: int = 128,
) -> List[Row]:
    """Figure 11: response time vs inserted tuples at L = 128, with the
    regime chosen by cost — each curve flattens at its sort-merge plateau,
    naive first, GI later, AR last."""
    rows: List[Row] = []
    for num_inserted in insert_counts:
        params = paper_scenario(num_nodes)
        row: Row = {"inserted": float(num_inserted)}
        row.update(
            _variant_columns(
                lambda v: response_time_ios(v, num_inserted, params, JoinRegime.AUTO)
            )
        )
        rows.append(row)
    return rows


def figure12_rows(
    insert_counts: Sequence[int] = tuple(range(1, 301, 10)),
    num_nodes: int = 128,
) -> List[Row]:
    """Figure 12: the 1..300-tuple detail of Figure 11, exposing the AR
    method's step-wise ⌈A/L⌉ response."""
    return figure11_rows(insert_counts=insert_counts, num_nodes=num_nodes)


def figure13_rows(
    node_counts: Sequence[int] = (2, 4, 8), delta: int = 128
) -> List[Row]:
    """Figure 13: predicted JV1/JV2 maintenance time (units of 128 I/Os)."""
    return [figure13_prediction(num_nodes, delta) for num_nodes in node_counts]


def crossover_summary(num_nodes: int = 128) -> Dict[str, int]:
    """Where each variant's sort-merge regime takes over (Figure 11's
    flattening points), per method."""
    params = paper_scenario(num_nodes)
    return {
        variant.value: sort_merge_crossover(variant, params)
        for variant in ALL_VARIANTS
    }
