"""Closed-form total workload (TW) per inserted tuple — paper §3.1.1.

TW sums the differential maintenance work over all nodes:

=====================================  =============================================
variant                                TW per inserted tuple
=====================================  =============================================
naive, J_B non-clustered               (L+K)·SEND + L·SEARCH + N·FETCH
naive, J_B clustered                   (L+K)·SEND + L·SEARCH
auxiliary relation                     INSERT + 2·SEND + SEARCH
global index, distributed non-clust.   INSERT + (1+2K)·SEND + SEARCH + N·FETCH
global index, distributed clustered    INSERT + (1+2K)·SEND + SEARCH + K·FETCH
=====================================  =============================================

With the paper's weights (SEND≈0, SEARCH=1, FETCH=1, INSERT=2) these give
the plotted constants: AR = 3 for any L, GI → 13 once L > N.
"""

from __future__ import annotations

from typing import Dict

from ..costs import Op
from .params import MethodVariant, ModelParameters


def total_workload_ops(
    variant: MethodVariant, params: ModelParameters
) -> Dict[Op, float]:
    """Primitive-operation counts per inserted tuple, before weighting."""
    L = float(params.num_nodes)
    N = params.fanout
    K = params.spread
    if variant is MethodVariant.NAIVE_NONCLUSTERED:
        return {Op.SEND: L + K, Op.SEARCH: L, Op.FETCH: N}
    if variant is MethodVariant.NAIVE_CLUSTERED:
        return {Op.SEND: L + K, Op.SEARCH: L}
    if variant is MethodVariant.AUXILIARY:
        return {Op.INSERT: 1, Op.SEND: 2, Op.SEARCH: 1}
    if variant is MethodVariant.GI_NONCLUSTERED:
        return {Op.INSERT: 1, Op.SEND: 1 + 2 * K, Op.SEARCH: 1, Op.FETCH: N}
    if variant is MethodVariant.GI_CLUSTERED:
        return {Op.INSERT: 1, Op.SEND: 1 + 2 * K, Op.SEARCH: 1, Op.FETCH: K}
    raise ValueError(f"unknown variant {variant!r}")


def total_workload_ios(variant: MethodVariant, params: ModelParameters) -> float:
    """TW per inserted tuple in weighted I/Os."""
    return sum(
        count * params.costs.weight(op)
        for op, count in total_workload_ops(variant, params).items()
    )


def savings_vs_naive(variant: MethodVariant, params: ModelParameters) -> float:
    """I/Os saved per tuple relative to the matching naive scenario.

    AR and GI-distributed-clustered are compared to naive-non-clustered and
    naive-clustered respectively, per the paper's §3.1.1 discussion.
    """
    if variant in (MethodVariant.AUXILIARY, MethodVariant.GI_NONCLUSTERED):
        baseline = MethodVariant.NAIVE_NONCLUSTERED
    else:
        baseline = MethodVariant.NAIVE_CLUSTERED
    return total_workload_ios(baseline, params) - total_workload_ios(variant, params)
