"""Closed-form response time — paper §3.1.2.

Response time is the weighted work at the busiest node, with the join
algorithm chosen per regime:

* **index nested loops** — cost proportional to the tuples each node sees:
  all A of them under naive, ``⌈A/L⌉`` under AR/GI (the source of the
  step-wise behaviour Figure 12 zooms into);
* **sort merge** — cost dominated by one pass over the node's partner
  fragment: a scan (``B_i`` I/Os) when clustered on the join attribute, an
  external sort (``B_i·log_M B_i``) otherwise, plus the AR/GI update work
  that never goes away.

The crossover between the regimes produces Figure 11's flattening curves,
and in the sort-merge regime "the naive view maintenance algorithm with
clustered index actually outperforms the auxiliary relation method"
(Figure 10) — the one environment where naive wins.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .params import MethodVariant, ModelParameters


class JoinRegime(enum.Enum):
    INDEX_NESTED_LOOPS = "index"
    SORT_MERGE = "sort_merge"
    AUTO = "auto"


def _per_node_share(num_inserted: int, num_nodes: int) -> int:
    """⌈A/L⌉ — the busiest node's share under even key distribution."""
    return -(-num_inserted // num_nodes)


def index_response_ios(
    variant: MethodVariant, num_inserted: int, params: ModelParameters
) -> float:
    """Busiest-node I/Os when every delta tuple probes through indexes."""
    if num_inserted < 0:
        raise ValueError("num_inserted must be >= 0")
    costs = params.costs
    L = params.num_nodes
    N = params.fanout
    K = params.spread
    share = _per_node_share(num_inserted, L)
    if variant is MethodVariant.NAIVE_NONCLUSTERED:
        # Every node probes all A tuples; fetches for the N matches spread
        # over the nodes that hold them: A·(L·SEARCH + N·FETCH)/L.
        return num_inserted * (costs.search_ios + N * costs.fetch_ios / L)
    if variant is MethodVariant.NAIVE_CLUSTERED:
        return num_inserted * costs.search_ios
    if variant is MethodVariant.AUXILIARY:
        # ⌈A/L⌉ tuples at the busiest node, each: AR insert + probe.
        return share * (costs.insert_ios + costs.search_ios)
    if variant is MethodVariant.GI_NONCLUSTERED:
        return share * (costs.insert_ios + costs.search_ios + N * costs.fetch_ios)
    if variant is MethodVariant.GI_CLUSTERED:
        return share * (costs.insert_ios + costs.search_ios + K * costs.fetch_ios)
    raise ValueError(f"unknown variant {variant!r}")


def sort_merge_response_ios(
    variant: MethodVariant, num_inserted: int, params: ModelParameters
) -> float:
    """Busiest-node I/Os when the partner is scanned/sorted once instead."""
    if num_inserted < 0:
        raise ValueError("num_inserted must be >= 0")
    costs = params.costs
    share = _per_node_share(num_inserted, params.num_nodes)
    fragment = params.fragment_pages
    if variant is MethodVariant.NAIVE_NONCLUSTERED:
        return params.sort_pages(fragment)
    if variant is MethodVariant.NAIVE_CLUSTERED:
        return fragment
    if variant is MethodVariant.AUXILIARY:
        # The AR is clustered on the join attribute by construction: one
        # scan, plus the AR updates the method always pays.
        return fragment + share * costs.insert_ios
    if variant is MethodVariant.GI_NONCLUSTERED:
        return params.sort_pages(fragment) + share * costs.insert_ios
    if variant is MethodVariant.GI_CLUSTERED:
        return fragment + share * costs.insert_ios
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class ResponsePrediction:
    """Both regimes plus the model's choice between them."""

    variant: MethodVariant
    num_inserted: int
    index_ios: float
    sort_merge_ios: float

    @property
    def chosen_regime(self) -> JoinRegime:
        if self.sort_merge_ios < self.index_ios:
            return JoinRegime.SORT_MERGE
        return JoinRegime.INDEX_NESTED_LOOPS

    @property
    def ios(self) -> float:
        return min(self.index_ios, self.sort_merge_ios)


def predict_response(
    variant: MethodVariant, num_inserted: int, params: ModelParameters
) -> ResponsePrediction:
    return ResponsePrediction(
        variant=variant,
        num_inserted=num_inserted,
        index_ios=index_response_ios(variant, num_inserted, params),
        sort_merge_ios=sort_merge_response_ios(variant, num_inserted, params),
    )


def response_time_ios(
    variant: MethodVariant,
    num_inserted: int,
    params: ModelParameters,
    regime: JoinRegime = JoinRegime.AUTO,
) -> float:
    """Response time under a forced or cost-chosen join regime."""
    if regime is JoinRegime.INDEX_NESTED_LOOPS:
        return index_response_ios(variant, num_inserted, params)
    if regime is JoinRegime.SORT_MERGE:
        return sort_merge_response_ios(variant, num_inserted, params)
    return predict_response(variant, num_inserted, params).ios


def sort_merge_crossover(variant: MethodVariant, params: ModelParameters) -> int:
    """Smallest insert count at which sort-merge beats index nested loops.

    The paper's ordering — naive crosses first, GI later, AR much later
    ("the global index method reaches this point much later than the naive
    method, and much earlier than the auxiliary relation method") — falls
    out of these closed forms.
    """
    low, high = 1, 1
    while (
        sort_merge_response_ios(variant, high, params)
        >= index_response_ios(variant, high, params)
    ):
        high *= 2
        if high > 10**9:
            raise RuntimeError("no crossover below 1e9 inserted tuples")
    while low < high:
        mid = (low + high) // 2
        if (
            sort_merge_response_ios(variant, mid, params)
            < index_response_ios(variant, mid, params)
        ):
            high = mid
        else:
            low = mid + 1
    return low
