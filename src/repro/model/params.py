"""Parameters of the paper's analytical model (§3.1).

The OCR of the published text lost digits in "Setting B =6,4, M=1, N=1";
the values are recovered from the paper's own arithmetic:

* the auxiliary-relation TW is quoted as "a small constant 3"
  = INSERT(2) + SEARCH(1);
* the global-index TW "quickly reaches a constant 13" once L > N, and
  GI(non-clustered) TW = INSERT + SEARCH + N·FETCH = 3 + N, so **N = 10**;
* Figure 10 inserts 6,500 tuples, chosen to be "greater than the number of
  pages in base relation B", so **|B| = 6,400 pages**;
* **M = 100** memory pages makes ``log_M B_i`` just under 2 for small L,
  reproducing the relative order of the Figure 10/11 plateaus.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..costs import CostParameters, PAPER_COSTS


class MethodVariant(enum.Enum):
    """The five lines the paper plots."""

    NAIVE_NONCLUSTERED = "naive (non-clustered index)"
    NAIVE_CLUSTERED = "naive (clustered index)"
    AUXILIARY = "auxiliary relation"
    GI_NONCLUSTERED = "global index (distributed non-clustered)"
    GI_CLUSTERED = "global index (distributed clustered)"


#: All variants in the paper's legend order.
ALL_VARIANTS = (
    MethodVariant.AUXILIARY,
    MethodVariant.NAIVE_NONCLUSTERED,
    MethodVariant.NAIVE_CLUSTERED,
    MethodVariant.GI_NONCLUSTERED,
    MethodVariant.GI_CLUSTERED,
)


@dataclass(frozen=True)
class ModelParameters:
    """One scenario of the two-relation model: a view JV = A ⋈ B, tuples
    inserted into A, probing B (or its AR/GI).

    ``fanout`` is N — join tuples generated per inserted tuple;
    ``partner_pages`` is |B| in pages; ``memory_pages`` is M.
    """

    num_nodes: int
    fanout: float = 10.0
    partner_pages: int = 6_400
    memory_pages: int = 100
    costs: CostParameters = field(default_factory=lambda: PAPER_COSTS)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.fanout < 0:
            raise ValueError("fanout must be >= 0")
        if self.partner_pages < 0:
            raise ValueError("partner_pages must be >= 0")
        if self.memory_pages < 2:
            raise ValueError("memory_pages must be >= 2")

    @property
    def spread(self) -> float:
        """K: the nodes holding matches for one key — min(N, L), assumption 11."""
        return min(self.fanout, float(self.num_nodes))

    @property
    def fragment_pages(self) -> float:
        """|B_i| = |B| / L, assumption 2 (even distribution)."""
        return self.partner_pages / self.num_nodes

    def sort_pages(self, pages: float) -> float:
        """External-sort cost ``pages · log_M pages``; a single scan when the
        fragment fits in memory."""
        if pages <= 0:
            return 0.0
        if pages <= self.memory_pages:
            return float(pages)
        return pages * math.log(pages, self.memory_pages)

    def with_nodes(self, num_nodes: int) -> "ModelParameters":
        return ModelParameters(
            num_nodes=num_nodes,
            fanout=self.fanout,
            partner_pages=self.partner_pages,
            memory_pages=self.memory_pages,
            costs=self.costs,
        )

    def with_fanout(self, fanout: float) -> "ModelParameters":
        return ModelParameters(
            num_nodes=self.num_nodes,
            fanout=fanout,
            partner_pages=self.partner_pages,
            memory_pages=self.memory_pages,
            costs=self.costs,
        )


def paper_scenario(num_nodes: int) -> ModelParameters:
    """The exact setting of Figures 7-12: |B|=6,400, M=100, N=10."""
    return ModelParameters(num_nodes=num_nodes)
