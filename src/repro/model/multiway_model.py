"""Analytical model for multi-relation views — the Figure 13 predictor.

The two-relation model extends hop by hop: a delta of ``D`` tuples joins
through a chain of partners, the intermediate result growing by each hop's
fan-out.  Per hop, the busiest node's work is:

* **naive** — every node probes every intermediate tuple: ``D_h`` searches
  plus a ``1/L`` share of the ``D_h·f_h`` fetches when the probed index is
  non-clustered;
* **auxiliary relation** — the intermediate is routed by join key:
  ``⌈D_h/L⌉`` probes against a clustered AR (fetch-free), plus AR co-update
  inserts for the hops where the *updated* relation itself carries an AR;
* **global index** — ``⌈D_h/L⌉`` GI probes plus the per-key fetches at the
  K owning nodes.

The paper reports Figure 13 "scaled by a constant factor (the time unit is
128 I/Os)", i.e. normalized by the delta size; ``predicted_time_units``
reproduces exactly that normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .params import ModelParameters


@dataclass(frozen=True)
class HopModel:
    """One join hop: fan-out of the partner on the probed attribute, and
    whether the probed base index is clustered (naive method only —
    auxiliary relations are always clustered on their partitioning key)."""

    fanout: float
    clustered: bool = False


def _share(count: float, num_nodes: int) -> float:
    """⌈count/L⌉ for integral counts, continuous share otherwise."""
    if count == int(count):
        return -(-int(count) // num_nodes)
    return count / num_nodes


def naive_response_ios(
    delta: int, hops: Sequence[HopModel], params: ModelParameters
) -> float:
    """Busiest-node I/Os to propagate ``delta`` tuples the naive way."""
    costs = params.costs
    L = params.num_nodes
    total = 0.0
    current = float(delta)
    for hop in hops:
        total += current * costs.search_ios
        if not hop.clustered:
            total += current * hop.fanout * costs.fetch_ios / L
        current *= hop.fanout
    return total


def auxiliary_response_ios(
    delta: int,
    hops: Sequence[HopModel],
    params: ModelParameters,
    co_update_ars: int = 0,
) -> float:
    """Busiest-node I/Os under the AR method.

    ``co_update_ars`` counts the auxiliary relations kept *for the updated
    relation itself* (zero when it is partitioned on its only join
    attribute, as customer is in the paper's experiment)."""
    costs = params.costs
    L = params.num_nodes
    total = co_update_ars * _share(delta, L) * costs.insert_ios
    current = float(delta)
    for hop in hops:
        total += _share(current, L) * costs.search_ios
        current *= hop.fanout
    return total


def global_index_response_ios(
    delta: int,
    hops: Sequence[HopModel],
    params: ModelParameters,
    co_update_gis: int = 0,
) -> float:
    """Busiest-node I/Os under the GI method (distributed non-clustered
    unless a hop says clustered)."""
    costs = params.costs
    L = params.num_nodes
    total = co_update_gis * _share(delta, L) * costs.insert_ios
    current = float(delta)
    for hop in hops:
        spread = min(hop.fanout, float(L))
        fetches = spread if hop.clustered else hop.fanout
        total += _share(current, L) * (costs.search_ios + fetches * costs.fetch_ios)
        current *= hop.fanout
    return total


def predicted_time_units(ios: float, delta: int) -> float:
    """Figure 13's normalization: time in units of ``delta`` I/Os."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return ios / delta


# --------------------------------------------------------------- Figure 13


#: The paper's TPC-R fan-outs: one orders tuple per customer, four lineitem
#: tuples per orders (§3.3).
JV1_HOPS: Tuple[HopModel, ...] = (HopModel(fanout=1.0),)
JV2_HOPS: Tuple[HopModel, ...] = (HopModel(fanout=1.0), HopModel(fanout=4.0))


def figure13_prediction(num_nodes: int, delta: int = 128) -> dict:
    """Predicted maintenance time (in units of ``delta`` I/Os) for the four
    Figure 13 lines at one node count."""
    params = ModelParameters(num_nodes=num_nodes)
    return {
        "nodes": num_nodes,
        "AR method for JV1": predicted_time_units(
            auxiliary_response_ios(delta, JV1_HOPS, params), delta
        ),
        "naive method for JV1": predicted_time_units(
            naive_response_ios(delta, JV1_HOPS, params), delta
        ),
        "AR method for JV2": predicted_time_units(
            auxiliary_response_ios(delta, JV2_HOPS, params), delta
        ),
        "naive method for JV2": predicted_time_units(
            naive_response_ios(delta, JV2_HOPS, params), delta
        ),
    }
