"""Observability for the simulated shared-nothing cluster.

Zero-overhead-when-disabled span tracing + metrics for every execution
path (per-tuple reference, batched, forked worker pool, fault/recovery
drain).  The package answers "*why did this statement cost what it did?*"
— hop-by-hop — without perturbing the modeled ledger: the equivalence
suites run bit-identical with tracing on and off.

Quickstart::

    from repro.obs import attach_observability, collect_cluster_metrics
    from repro.obs import render_tree, to_chrome_trace

    obs = attach_observability(cluster)
    cluster.insert("A", rows)
    print(render_tree(obs.tracer))             # human tree view
    trace = to_chrome_trace(obs.tracer)        # chrome://tracing JSON
    prom = collect_cluster_metrics(cluster).to_prometheus()

Or from the shell: ``python -m repro.obs snapshot`` (see ``--help``).
"""

from .attribution import (
    PHASES,
    attribute_roots,
    fold_phases,
    tail_attribution,
)
from .collect import (
    DISABLED,
    Observability,
    attach_observability,
    collect_cluster_metrics,
    detach_observability,
    key_digest,
)
from .export import (
    to_chrome_trace,
    validate_chrome_trace,
    validate_prometheus_range,
)
from .load import (
    build_schedule,
    execute_schedule,
    find_knee,
    latency_summary,
    open_loop_from_arrivals,
    open_loop_latencies,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    parse_prometheus,
    validate_prometheus,
)
from .render import render_chrome_trace, render_timeline, render_tree
from .timeseries import TimeSeriesCollector
from .tracer import NOOP_SPAN, NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "DISABLED",
    "Observability",
    "attach_observability",
    "detach_observability",
    "collect_cluster_metrics",
    "key_digest",
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "validate_prometheus",
    "to_chrome_trace",
    "validate_chrome_trace",
    "render_tree",
    "render_chrome_trace",
    "PHASES",
    "attribute_roots",
    "fold_phases",
    "tail_attribution",
    "validate_prometheus_range",
    "build_schedule",
    "execute_schedule",
    "find_knee",
    "latency_summary",
    "open_loop_from_arrivals",
    "open_loop_latencies",
    "LATENCY_BUCKETS",
    "parse_prometheus",
    "render_timeline",
    "TimeSeriesCollector",
]
