"""Open-loop load driver: latency percentiles, not just tuples/sec.

ROADMAP item 3's serving-layer half.  A **closed-loop** driver (issue,
wait, issue) measures service time under zero queueing and silently
self-throttles as the server slows — its percentiles flatter a saturated
system.  An **open-loop** driver arrives on its own schedule regardless of
completions, so latency includes the queueing that real clients feel and
blows up visibly past the capacity knee.

Sleeping a real client loop at the target rate would make wall-clock time
dominate the benchmark (minutes per rate step) and — worse — make the
statement *mix* depend on timing.  This driver splits the two concerns:

1. **Execute** a seeded deterministic schedule of update statements and
   mixed read queries exactly once against the cluster, measuring each
   operation's wall-clock *service time*.  The schedule is a pure function
   of its seed — measurement wraps the calls but never steers them, so
   ledger cells, network stats, and fragment contents are bit-identical
   with measurement on or off (pinned by test).
2. **Simulate** the open-loop single-server queue at each arrival rate
   over those measured service times: seeded exponential interarrivals,
   ``finish_i = max(arrival_i, finish_{i-1}) + service_i``, latency =
   sojourn time.  One execution yields the full saturation curve; the
   modeled charges are identical at every rate by construction.

Latencies land in a log-bucketed :class:`~repro.obs.metrics.Histogram`
(``repro_stmt_latency_seconds``) whose quantile estimator produces the
p50/p95/p99/max the percentile reports carry.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import LATENCY_BUCKETS, Histogram, MetricsRegistry
from .timeseries import TimeSeriesCollector

__all__ = [
    "LoadOp",
    "OpTiming",
    "build_schedule",
    "execute_schedule",
    "open_loop_from_arrivals",
    "open_loop_latencies",
    "latency_summary",
    "find_knee",
]

#: Cadence (in completed operations) of time-series sampling during a run.
DEFAULT_SAMPLE_CADENCE = 16


@dataclass(frozen=True)
class LoadOp:
    """One scheduled operation: an update statement, a read, or a refresh."""

    kind: str                       # "update" | "read" | "refresh"
    rows: Tuple = ()                # update: the A-rows of the statement
    query: Optional[object] = None  # read: a repro.query.Query


@dataclass(frozen=True)
class OpTiming:
    """One executed operation's measured wall-clock service time."""

    kind: str
    seconds: float


def build_schedule(
    workload,
    total_ops: int,
    statement_size: int,
    read_fraction: float,
    seed: int,
    deferred: bool = False,
) -> List[LoadOp]:
    """A seeded mixed schedule of update statements and read queries.

    Updates draw consecutive ``workload.a_rows`` slices (disjoint across
    the schedule, so rowids match any other driver of the same workload).
    Reads are built against rows already inserted by the schedule: half
    pin the view's partitioning attribute ``A.e`` with an equality filter
    (the single-node view-probe path), half ask the unpinned join (priced
    between view scan and base join).  ``deferred`` appends one explicit
    refresh op so queued deltas are always flushed inside the measured
    window.  Deterministic in (workload, seed, sizes) alone.
    """
    from ..query.query import Comparison, Filter, Query
    from ..core.view import JoinCondition

    if total_ops < 1:
        raise ValueError("total_ops must be >= 1")
    rng = random.Random(seed)
    ops: List[LoadOp] = []
    inserted_e: List[object] = []
    next_row_start = 0
    join = (JoinCondition("A", "c", "B", "d"),)
    for _ in range(total_ops):
        if inserted_e and rng.random() < read_fraction:
            if rng.random() < 0.5:
                pinned = inserted_e[rng.randrange(len(inserted_e))]
                query = Query(
                    relations=("A", "B"),
                    select=(("A", "a"), ("A", "e"), ("B", "f")),
                    conditions=join,
                    filters=(Filter("A", "e", Comparison.EQ, pinned),),
                )
            else:
                query = Query(
                    relations=("A", "B"),
                    select=(("A", "e"), ("B", "f")),
                    conditions=join,
                )
            ops.append(LoadOp(kind="read", query=query))
        else:
            rows = tuple(workload.a_rows(statement_size, starting_at=next_row_start))
            next_row_start += statement_size
            inserted_e.extend(row[2] for row in rows)
            ops.append(LoadOp(kind="update", rows=rows))
    if deferred:
        ops.append(LoadOp(kind="refresh"))
    return ops


def execute_schedule(
    cluster,
    ops: Sequence[LoadOp],
    refresh: Optional[Callable[[], object]] = None,
    measure: bool = True,
    registry: Optional[MetricsRegistry] = None,
    collector: Optional[TimeSeriesCollector] = None,
    cadence: int = DEFAULT_SAMPLE_CADENCE,
    **labels: object,
) -> List[OpTiming]:
    """Run every op once, in order, optionally measuring service times.

    ``measure=False`` executes the identical op sequence with no clock
    reads and no metric writes — the bit-identity control.  ``registry``
    (measurement only) receives ``repro_stmt_latency_seconds`` histogram
    observations and ``repro_load_ops_total`` counts, labelled by op kind
    plus any extra ``labels``; ``collector`` is sampled every ``cadence``
    completed ops on the cumulative-service-time clock, so timeline
    exports are deterministic in op count, not in wall time.
    """
    from ..query.engine import QueryEngine

    engine = QueryEngine(cluster)
    histogram = counter = None
    if measure and registry is not None:
        histogram = registry.histogram(
            "repro_stmt_latency_seconds",
            "Per-operation wall-clock service time",
            buckets=LATENCY_BUCKETS,
        )
        counter = registry.counter(
            "repro_load_ops_total", "Operations executed by the load driver"
        )
    timings: List[OpTiming] = []
    clock = 0.0
    for index, op in enumerate(ops):
        start = time.perf_counter_ns() if measure else 0
        if op.kind == "update":
            cluster.insert("A", list(op.rows))
        elif op.kind == "read":
            engine.answer(op.query)
        elif op.kind == "refresh":
            if refresh is None:
                raise ValueError("schedule contains a refresh op but no refresh hook")
            refresh()
        else:  # pragma: no cover - schedule builder emits known kinds
            raise ValueError(f"unknown op kind {op.kind!r}")
        seconds = (time.perf_counter_ns() - start) / 1e9 if measure else 0.0
        timings.append(OpTiming(op.kind, seconds))
        clock += seconds
        if histogram is not None:
            histogram.observe(seconds, kind=op.kind, **labels)
            counter.inc(kind=op.kind, **labels)
        if collector is not None and (index + 1) % cadence == 0:
            collector.sample(clock)
    if collector is not None and len(ops) % cadence != 0:
        collector.sample(clock)  # final partial window
    return timings


# ------------------------------------------------------- open-loop queue


def open_loop_from_arrivals(
    service_seconds: Sequence[float], arrivals: Sequence[float]
) -> List[float]:
    """Sojourn times of an open-loop single-server FIFO queue.

    ``latency_i = max(arrival_i, finish_{i-1}) + service_i - arrival_i``:
    queueing delay plus service.  Pure arithmetic — exact, deterministic,
    and independent of how the arrival times were drawn.
    """
    if len(service_seconds) != len(arrivals):
        raise ValueError("service and arrival sequences must align")
    latencies: List[float] = []
    finish = 0.0
    for arrival, service in zip(arrivals, service_seconds):
        finish = max(arrival, finish) + service
        latencies.append(finish - arrival)
    return latencies


def open_loop_latencies(
    service_seconds: Sequence[float], arrival_rate: float, seed: int
) -> List[float]:
    """Latencies under seeded Poisson arrivals at ``arrival_rate`` ops/s."""
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be > 0")
    rng = random.Random(seed)
    clock = 0.0
    arrivals: List[float] = []
    for _ in service_seconds:
        clock += rng.expovariate(arrival_rate)
        arrivals.append(clock)
    return open_loop_from_arrivals(service_seconds, arrivals)


# ------------------------------------------------------------ summaries


def latency_summary(
    latencies: Sequence[float],
    histogram: Optional[Histogram] = None,
    **labels: object,
) -> Dict[str, float]:
    """p50/p95/p99/max/mean of a latency sample, via the log-bucketed
    histogram quantile estimator (observing into ``histogram`` when given,
    else a private one)."""
    if not latencies:
        raise ValueError("latency_summary needs at least one sample")
    if histogram is None:
        histogram = Histogram(
            "repro_stmt_latency_seconds", buckets=LATENCY_BUCKETS
        )
    for value in latencies:
        histogram.observe(value, **labels)
    return {
        "p50": histogram.quantile(0.50, **labels),
        "p95": histogram.quantile(0.95, **labels),
        "p99": histogram.quantile(0.99, **labels),
        "max": histogram.max_value(**labels),
        "mean": histogram.sum(**labels) / histogram.count(**labels),
    }


def find_knee(
    rates: Sequence[float], p99s: Sequence[float], knee_factor: float
) -> Optional[float]:
    """The highest arrival rate whose p99 stays within ``knee_factor`` of
    the lowest rate's p99 — the saturation knee.  ``None`` when even the
    base rate blows past itself (degenerate) or inputs are empty."""
    if not rates or len(rates) != len(p99s):
        return None
    budget = knee_factor * p99s[0]
    knee: Optional[float] = None
    for rate, p99 in zip(rates, p99s):
        if p99 <= budget:
            knee = rate if knee is None else max(knee, rate)
    return knee
