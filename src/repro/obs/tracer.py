"""Span tracing for the simulated cluster.

A :class:`Span` covers one phase of a maintenance statement's lifecycle
(plan/compile → partition → route → probe → apply → view-write, plus
deferred refresh and recovery replay).  Spans nest: the tracer keeps an
open-span stack, so instrumented code only ever says ``with
tracer.span("hop", partner="B"):`` and nesting falls out of control flow.

Two clocks run side by side:

* a **logical sequence number** per span/event — deterministic, used by the
  reproducibility tests (identical statements must yield identical
  span/event sequences regardless of worker count); and
* **wall-clock nanoseconds** (``time.perf_counter_ns``) — exported to
  Chrome-trace/Perfetto JSON for humans.

Determinism contract: :meth:`Tracer.signature` deliberately excludes every
wall-clock field, so two runs of the same statements compare equal even
though their timestamps differ.

Zero-overhead-when-disabled contract: the disabled path goes through
:data:`NOOP_TRACER`, whose :meth:`~NoopTracer.span` returns the shared
:data:`NOOP_SPAN` singleton — **no Span object is ever allocated** (the
disabled-mode test patches ``Span.__new__`` to prove it), and no tracer
state is touched.  Instrumentation sites pay one attribute load, one call,
and one (small, constant) kwargs dict per *statement-level* site; nothing
is instrumented per tuple.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NoopTracer", "NOOP_SPAN", "NOOP_TRACER"]


class Span:
    """One timed, tagged phase.  Also its own context manager."""

    __slots__ = (
        "name", "tags", "seq", "start_ns", "end_ns", "children", "events",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.seq = tracer._next_seq()
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []
        #: (seq, name, tags) instants attached to this span
        self.events: List[Tuple[int, str, Dict[str, object]]] = []

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    # -- enrichment ------------------------------------------------------
    def tag(self, **tags: object) -> "Span":
        """Add/overwrite tags after the span opened (e.g. output sizes)."""
        self.tags.update(tags)
        return self

    def event(self, name: str, **tags: object) -> None:
        """Attach an instant event to this span."""
        self.events.append((self._tracer._next_seq(), name, tags))

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns


class Tracer:
    """Collects a forest of spans for one traced run."""

    enabled = True

    __slots__ = ("roots", "orphan_events", "_stack", "_seq", "origin_ns")

    def __init__(self) -> None:
        self.roots: List[Span] = []
        #: events emitted with no span open (rare: e.g. fault notices
        #: between statements)
        self.orphan_events: List[Tuple[int, str, Dict[str, object]]] = []
        self._stack: List[Span] = []
        self._seq = 0
        self.origin_ns = time.perf_counter_ns()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- span lifecycle --------------------------------------------------
    def span(self, name: str, **tags: object) -> Span:
        """Open a span (use as ``with tracer.span(...) as sp:``)."""
        span = Span(self, name, tags)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        # Pop up to and including the span (robust to missed exits under
        # exceptions that skipped inner __exit__ calls).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end_ns is None:
                top.end_ns = span.end_ns

    def event(self, name: str, **tags: object) -> None:
        """Attach an instant event to the innermost open span."""
        if self._stack:
            self._stack[-1].events.append((self._next_seq(), name, tags))
        else:
            self.orphan_events.append((self._next_seq(), name, tags))

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.roots = []
        self.orphan_events = []
        self._stack = []
        self._seq = 0
        self.origin_ns = time.perf_counter_ns()

    # -- introspection ---------------------------------------------------
    def walk(self) -> Iterator[Tuple[int, Span]]:
        """Depth-first (depth, span) over the whole forest."""
        stack: List[Tuple[int, Span]] = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def signature(self) -> List[Tuple]:
        """A deterministic, timestamp-free digest of the span/event forest.

        Two traced runs of the same statements — across worker counts,
        across processes — must produce equal signatures; that is the
        reproducibility bar the determinism tests enforce.
        """
        out: List[Tuple] = []
        for depth, span in self.walk():
            out.append((depth, "span", span.name, _freeze(span.tags)))
            for _seq, name, tags in span.events:
                out.append((depth + 1, "event", name, _freeze(tags)))
        for _seq, name, tags in self.orphan_events:
            out.append((0, "event", name, _freeze(tags)))
        return out


def _freeze(tags: Dict[str, object]) -> Tuple:
    return tuple(sorted((key, repr(value)) for key, value in tags.items()))


class _NoopSpan:
    """Shared do-nothing span: context manager + tag/event sinks."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: object) -> "_NoopSpan":
        return self

    def event(self, name: str, **tags: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: a stateless singleton that allocates nothing."""

    enabled = False

    __slots__ = ()

    def span(self, name: str, **tags: object) -> _NoopSpan:
        return NOOP_SPAN

    def event(self, name: str, **tags: object) -> None:
        return None

    @property
    def current(self) -> None:
        return None


NOOP_TRACER = NoopTracer()
