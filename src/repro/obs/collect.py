"""The observability facade and cluster metric collection.

:class:`Observability` bundles one tracer and one metrics registry; the
:data:`DISABLED` singleton (no-op tracer, ``enabled=False``) is what every
cluster carries until :func:`attach_observability` swaps in a live one.
Instrumentation sites read ``cluster.obs`` dynamically, so attaching and
detaching is instantaneous and touches no engine state.

:func:`collect_cluster_metrics` is deliberately *pull*-based for everything
the engine already counts — ledger cells, network statistics, catalog row
counts, probe-cache counters.  Deriving the gauges from the very structures
the equivalence suites pin means the Prometheus export **agrees with the
ledger by construction** (a test cross-checks it), and the fault-free hot
path pays nothing for them.  Only genuinely transient facts (plan-cache
hits, fault retries, superstep timings) are pushed live, each behind an
``obs.enabled`` guard.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, ContextManager, Iterable, Optional

from .metrics import LATENCY_BUCKETS, MetricsRegistry
from .tracer import NOOP_TRACER, NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster

__all__ = [
    "Observability",
    "DISABLED",
    "attach_observability",
    "detach_observability",
    "collect_cluster_metrics",
    "key_digest",
]


class Observability:
    """One tracer + one metrics registry, carried by a cluster."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(
        self,
        enabled: bool,
        tracer: "Tracer | NoopTracer",
        metrics: MetricsRegistry,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer
        self.metrics = metrics

    def span(self, name: str, **tags: object) -> "ContextManager[Any]":
        return self.tracer.span(name, **tags)

    def event(self, name: str, **tags: object) -> None:
        self.tracer.event(name, **tags)

    def observe_span_latency(self, span, kind: str, **labels: object) -> None:
        """Fold a finished span's wall-clock duration into the
        ``repro_stmt_latency_seconds`` histogram.

        The latency hook points (statement close in ``Cluster``, deferred
        refresh, query answer) call this instead of reading a clock
        themselves: the duration comes from the timestamps the tracer
        already recorded, so engine code stays clock-free (REP002) and the
        disabled facade pays one ``enabled`` check and nothing else.
        """
        if not self.enabled:
            return
        start_ns = getattr(span, "start_ns", None)
        end_ns = getattr(span, "end_ns", None)
        if start_ns is None or end_ns is None:  # NOOP_SPAN or still open
            return
        self.metrics.histogram(
            "repro_stmt_latency_seconds",
            "Wall-clock latency of statements, deferred refreshes, and "
            "read queries",
            buckets=LATENCY_BUCKETS,
        ).observe((end_ns - start_ns) / 1e9, kind=kind, **labels)


#: The shared disabled facade.  Its registry exists but is never written
#: to: every live-metric site is guarded by ``obs.enabled``.
DISABLED = Observability(False, NOOP_TRACER, MetricsRegistry())


def attach_observability(cluster: "Cluster") -> Observability:
    """Arm tracing + metrics on a cluster; returns the live facade.

    Instrumentation never perturbs the modeled ledger — the equivalence
    suites run with tracing on and off and assert bit-identical cells —
    so attaching mid-stream is always safe.
    """
    obs = Observability(True, Tracer(), MetricsRegistry())
    cluster.obs = obs
    cluster.network.obs = obs
    return obs


def detach_observability(cluster: "Cluster") -> None:
    """Restore the zero-overhead disabled facade."""
    cluster.obs = DISABLED
    cluster.network.obs = DISABLED


def key_digest(keys: Iterable[object]) -> int:
    """A deterministic CRC-32 digest of a join-key set.

    Traces tag hops with this instead of raw key values: compact, stable
    across processes (unlike ``hash``), and free of payload data.
    """
    crc = 0
    for key in sorted(keys, key=repr):
        crc = zlib.crc32(repr(key).encode("utf-8"), crc)
    return crc & 0xFFFFFFFF


# --------------------------------------------------------------- collection


def collect_cluster_metrics(
    cluster: "Cluster", registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Snapshot a cluster's accounted state into a metrics registry.

    Populates (all labelled, all derived from engine-pinned structures):

    * ``repro_ledger_ops_total{node,op,tag}`` — the cost ledger, cell by
      cell, plus ``repro_ledger_weighted_ios{node,tag}``, the paper's
      TW/RT inputs;
    * ``repro_workload_total_ios{tag}`` / ``repro_response_time_ios{tag}``;
    * ``repro_network_messages_total{src,dst}`` per link and the scalar
      delivery/fault counters (drops, retries, duplicates, backoff);
    * ``repro_catalog_rows{kind,name}`` — relations, views, and per-node
      ``repro_fragment_tuples{node,name}`` / ``repro_fragment_pages``;
    * ``repro_probe_cache_*{worker}`` — per-worker heavy-hitter cache
      counters (incl. totals flushed at catalog-epoch clears) when a
      worker pool is running.

    When the cluster has a live :class:`Observability` attached its own
    registry is used by default, so pushed metrics (plan-cache hits, fault
    retries, superstep timings) and pulled gauges export together.
    """
    if registry is None:
        obs = getattr(cluster, "obs", DISABLED)
        registry = obs.metrics if obs.enabled else MetricsRegistry()

    # -- ledger ----------------------------------------------------------
    ops = registry.gauge(
        "repro_ledger_ops_total", "Operations charged per (node, op, tag) cell"
    )
    weighted = registry.gauge(
        "repro_ledger_weighted_ios", "Weighted I/Os charged per node and tag"
    )
    params = cluster.ledger.params
    for (node, op, tag), count in cluster.ledger._cells.items():
        ops.set(count, node=node, op=op.value, tag=tag.value)
        weighted.inc(count * params.weight(op), node=node, tag=tag.value)
    snapshot = cluster.ledger.snapshot()
    tw = registry.gauge(
        "repro_workload_total_ios", "Total workload (weighted I/Os) per tag"
    )
    rt = registry.gauge(
        "repro_response_time_ios", "Busiest-node weighted I/Os per tag"
    )
    tags_seen = {tag for (_n, _o, tag) in cluster.ledger._cells}
    for tag in sorted(tags_seen, key=lambda t: t.value):
        tw.set(snapshot.total_workload(tags=[tag]), tag=tag.value)
        rt.set(snapshot.response_time(tags=[tag]), tag=tag.value)

    # -- network ---------------------------------------------------------
    stats = cluster.network.stats
    link_gauge = registry.gauge(
        "repro_network_messages_total", "Delivered cross-node messages per link"
    )
    for (src, dst), count in stats.by_link.items():
        link_gauge.set(count, src=src, dst=dst)
    scalars = registry.gauge(
        "repro_network_events_total", "Network delivery and fault event counters"
    )
    scalars.set(stats.messages, kind="messages")
    scalars.set(stats.local_deliveries, kind="local_deliveries")
    scalars.set(stats.drops, kind="drops")
    scalars.set(stats.duplicates, kind="duplicates")
    scalars.set(stats.retries, kind="retries")
    scalars.set(stats.backoff_slots, kind="backoff_slots")

    # -- catalog / storage ----------------------------------------------
    rows = registry.gauge("repro_catalog_rows", "Row counts per catalog object")
    for name, info in cluster.catalog.relations.items():
        rows.set(info.row_count, kind="relation", name=name)
    for name, view in cluster.catalog.views.items():
        rows.set(view.row_count, kind="view", name=name)
    fragment_tuples = registry.gauge(
        "repro_fragment_tuples", "Stored tuples per node fragment"
    )
    fragment_pages = registry.gauge(
        "repro_fragment_pages", "Heap pages per node fragment"
    )
    for node in cluster.nodes:
        for name, tuples, pages in node.storage_profile():
            fragment_tuples.set(tuples, node=node.node_id, name=name)
            fragment_pages.set(pages, node=node.node_id, name=name)

    # -- membership / replication ---------------------------------------
    membership = getattr(cluster, "membership", None)
    if membership is not None:
        topology = registry.gauge(
            "repro_membership", "Cluster topology state (nodes, epoch, K)"
        )
        topology.set(cluster.num_nodes, kind="nodes")
        topology.set(
            getattr(cluster, "peak_num_nodes", cluster.num_nodes),
            kind="peak_nodes",
        )
        topology.set(membership.epoch, kind="epoch")
        topology.set(membership.replication, kind="replication")
        replica_tuples = registry.gauge(
            "repro_replica_tuples",
            "Replicated tuples held per (target node, owner, fragment)",
        )
        for node in cluster.nodes:
            for owner, name in node.replica_slots():
                replica_tuples.set(
                    sum(node.replica_bag(owner, name).values()),
                    node=node.node_id, owner=owner, name=name,
                )
    node_load = registry.gauge(
        "repro_node_load_ios",
        "Weighted I/Os charged per node over the cluster's lifetime — the "
        "rebalancer's primary load signal",
    )
    per_node = snapshot.per_node_ios()
    for node_id in range(cluster.num_nodes):
        node_load.set(per_node.get(node_id, 0.0), node=node_id)

    # -- probe cache -----------------------------------------------------
    engine = cluster._parallel_engine
    if engine is not None:
        busy = registry.gauge(
            "repro_worker_busy_ns",
            "Cumulative busy nanoseconds per pool worker (skew feeds the "
            "rebalancer's secondary signal)",
        )
        for worker_id, busy_ns in enumerate(engine.worker_busy_ns):
            busy.set(busy_ns, worker=worker_id)
        # Transport telemetry (framed step envelopes only): never modeled
        # costs — the wire is an uncharged mirror of already-charged work.
        ipc_bytes = registry.gauge(
            "repro_ipc_bytes_total",
            "Framed envelope bytes shipped per pool worker and direction",
        )
        envelopes = registry.gauge(
            "repro_ipc_envelopes_total",
            "Step envelopes shipped per pool worker",
        )
        for worker_id in range(engine.workers):
            ipc_bytes.set(
                engine.ipc_tx_bytes[worker_id], worker=worker_id, direction="tx"
            )
            ipc_bytes.set(
                engine.ipc_rx_bytes[worker_id], worker=worker_id, direction="rx"
            )
            envelopes.set(engine.envelopes[worker_id], worker=worker_id)
        transport = registry.gauge(
            "repro_parallel_transport",
            "Pool-wide transport counters (statements, supersteps/barriers)",
        )
        transport.set(engine.statements, kind="statements")
        transport.set(engine.supersteps, kind="supersteps")
        # Live when the pool runs; the final drain snapshot otherwise —
        # either way the flushed_* accumulators keep epoch-cleared history.
        worker_stats_list = engine.probe_cache_stats()
        if worker_stats_list:
            cache_gauge = registry.gauge(
                "repro_probe_cache_events_total",
                "Per-worker heavy-hitter probe cache counters "
                "(incl. totals flushed at catalog-epoch clears)",
            )
            for worker_id, worker_stats in enumerate(worker_stats_list):
                for key, value in worker_stats.items():
                    cache_gauge.set(value, worker=worker_id, kind=key)
    return registry
