"""Span-level latency attribution: where did a statement's time go?

PR 4's tracer records the full lifecycle of every maintained statement as
a span tree (``statement`` → ``base_writes`` / ``co_update_*`` /
``maintain`` → ``hop`` → ``view_write`` …).  This module folds that tree
into a small fixed set of **phases** so a percentile report can say "the
p99 statement spent 62% of its time in maintenance hops and 20% writing
view fragments" instead of pointing at a trace file.

Attribution is *exclusive*: each span contributes ``duration − Σ(direct
children durations)`` to its own phase, so the phase totals of one root
sum to that root's duration with nothing double-counted (``view_write``
nests inside ``maintain``; counting both inclusively would tally the view
write twice).  Spans without a phase mapping inherit the nearest mapped
ancestor's phase; anything left over lands in ``other``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from .tracer import Span, Tracer

__all__ = [
    "PHASES",
    "SPAN_PHASES",
    "RootAttribution",
    "attribute_roots",
    "fold_phases",
    "tail_attribution",
]

#: The reporting phases, in lifecycle order.
PHASES = (
    "plan_compile",
    "base_writes",
    "co_updates",
    "maintain",
    "view_write",
    "deferred_refresh",
    "query",
    "other",
)

#: Span name → phase.  Unmapped spans inherit their parent's phase.
SPAN_PHASES: Dict[str, str] = {
    "plan_compile": "plan_compile",
    "base_writes": "base_writes",
    "co_update_ars": "co_updates",
    "co_update_gis": "co_updates",
    "maintain": "maintain",
    "maintain_shared": "maintain",
    "hop": "maintain",
    "superstep": "maintain",
    "view_write": "view_write",
    "deferred_refresh": "deferred_refresh",
    "query": "query",
    "base_join": "query",
    "view_probe": "query",
    "view_scan": "query",
}

#: Root span names that count as one "statement" for percentile purposes.
ROOT_NAMES = frozenset({"statement", "deferred_refresh", "query"})


class RootAttribution(NamedTuple):
    """One root span folded to (name, duration, per-phase seconds)."""

    name: str
    seconds: float
    phases: Dict[str, float]


def _span_seconds(span: Span) -> float:
    end = span.end_ns if span.end_ns is not None else span.start_ns
    return max(0.0, (end - span.start_ns) / 1e9)


def _fold_span(span: Span, inherited: str, into: Dict[str, float]) -> None:
    phase = SPAN_PHASES.get(span.name, inherited)
    exclusive = _span_seconds(span) - sum(
        _span_seconds(child) for child in span.children
    )
    into[phase] = into.get(phase, 0.0) + max(0.0, exclusive)
    for child in span.children:
        _fold_span(child, phase, into)


def attribute_roots(
    tracer: Tracer, names: Optional[frozenset] = None
) -> List[RootAttribution]:
    """Fold each matching root span of ``tracer`` into phase seconds.

    ``names`` restricts which roots count (default: statements, deferred
    refreshes, and queries).  Every returned record's phases sum to its
    root duration (up to clock jitter clamped at zero).
    """
    wanted = ROOT_NAMES if names is None else names
    out: List[RootAttribution] = []
    for root in tracer.roots:
        if root.name not in wanted:
            continue
        phases: Dict[str, float] = {}
        # The root's own name maps to a phase too; "statement" does not,
        # so its envelope time (dispatch, deferred flush checks) lands
        # in "other" — which is exactly what it is.
        _fold_span(root, SPAN_PHASES.get(root.name, "other"), phases)
        out.append(RootAttribution(root.name, _span_seconds(root), phases))
    return out


def fold_phases(records: Sequence[RootAttribution]) -> Dict[str, float]:
    """Total seconds per phase over many roots, keyed in PHASES order."""
    totals: Dict[str, float] = {}
    for record in records:
        for phase, seconds in record.phases.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return {
        phase: totals[phase]
        for phase in (*PHASES, *sorted(set(totals) - set(PHASES)))
        if phase in totals
    }


def tail_attribution(
    records: Sequence[RootAttribution], threshold_seconds: float
) -> Dict[str, float]:
    """Phase breakdown of the roots at or above a latency threshold —
    the "where did the p99 go" view.  Falls back to the single slowest
    root when nothing reaches the threshold (clock-resolution ties)."""
    tail = [record for record in records if record.seconds >= threshold_seconds]
    if not tail and records:
        tail = [max(records, key=lambda record: record.seconds)]
    return fold_phases(tail)
