"""A small labelled metrics registry with Prometheus text export.

Counters, gauges, and histograms, each keyed by a sorted label tuple so
exports are deterministic.  The registry is deliberately dependency-free
(the container has no ``prometheus_client``) and covers exactly the subset
of the Prometheus exposition format the CI schema check validates:

    # HELP repro_ledger_ops_total Operations charged per ledger cell
    # TYPE repro_ledger_ops_total counter
    repro_ledger_ops_total{node="0",op="search",tag="maintain"} 12

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts;
:func:`diff_snapshots` subtracts two of them so ``python -m repro.obs
diff`` can compare runs.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "validate_prometheus",
    "parse_prometheus",
    "LATENCY_BUCKETS",
    "EXACT_QUANTILE_CUTOFF",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    kind = "untyped"

    __slots__ = ("name", "help")

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help


class Counter(_Metric):
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    __slots__ = ("_samples",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._samples: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value

    def get(self, **labels: object) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._samples.values())

    def samples(self) -> Dict[LabelKey, float]:
        return dict(self._samples)

    def render(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in sorted(self._samples.items())
        ]

    def snapshot_value(self) -> Dict[str, float]:
        return {_render_labels(key): value for key, value in self._samples.items()}


class Gauge(Counter):
    """Point-in-time values (may go up or down, may be ``set``)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        self._samples[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value


DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed log-spaced latency bounds: 1 µs doubling up to ~16.8 s.  Statement
#: latencies span four-plus decades between a cached eager insert and a
#: saturated deferred refresh, so the relative (not absolute) resolution of
#: geometric buckets is the right shape for p99 estimation.
LATENCY_BUCKETS = tuple(1e-6 * (2.0 ** exp) for exp in range(25))

#: Up to this many observations per label set, quantiles are answered
#: exactly from retained samples; beyond it, by cumulative-bucket
#: interpolation (the retained prefix is kept — it costs a bounded amount
#: of memory and keeps small-sample answers exact forever).
EXACT_QUANTILE_CUTOFF = 256


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics) with quantiles.

    :meth:`quantile` is exact (linear interpolation between order
    statistics) while a label set has at most :data:`EXACT_QUANTILE_CUTOFF`
    observations, and falls back to Prometheus-style interpolation inside
    the owning bucket above that, clamped to the observed maximum.
    """

    kind = "histogram"

    __slots__ = ("buckets", "_counts", "_sums", "_totals", "_samples", "_maxes")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(set(buckets)))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}
        self._samples: Dict[LabelKey, List[float]] = {}
        self._maxes: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
            self._sums[key] = 0.0
            self._totals[key] = 0
            self._samples[key] = []
            self._maxes[key] = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        self._sums[key] += value
        self._totals[key] += 1
        if len(self._samples[key]) < EXACT_QUANTILE_CUTOFF:
            self._samples[key].append(value)
        if value > self._maxes[key]:
            self._maxes[key] = value

    def count(self, **labels: object) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def max_value(self, **labels: object) -> Optional[float]:
        """Largest observation for a label set (None when empty)."""
        return self._maxes.get(_label_key(labels))

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        """The q-quantile (0 <= q <= 1) of one label set's observations.

        Returns ``None`` for an empty label set.  Exact while the label
        set is small (every sample retained); bucket-interpolated above
        the cutoff, clamped to the observed maximum so an overflowing
        tail never reports a bound the data never reached.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        key = _label_key(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return None
        samples = self._samples[key]
        if total <= len(samples):
            ordered = sorted(samples)
            rank = q * (len(ordered) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(ordered) - 1)
            fraction = rank - lower
            return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction
        counts = self._counts[key]
        observed_max = self._maxes[key]
        target = q * total
        previous_cumulative = 0
        lower_bound = 0.0
        for bound, cumulative in zip(self.buckets, counts):
            if cumulative >= target:
                in_bucket = cumulative - previous_cumulative
                if in_bucket <= 0:  # pragma: no cover - cumulative monotone
                    return min(bound, observed_max)
                fraction = (target - previous_cumulative) / in_bucket
                value = lower_bound + (bound - lower_bound) * fraction
                return min(value, observed_max)
            previous_cumulative = cumulative
            lower_bound = bound
        # Target falls in the +Inf overflow bucket: all we know beyond the
        # largest finite bound is the observed maximum.
        return observed_max

    def render(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            for bound, cumulative in zip(self.buckets, counts):
                bucket_key = key + (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(bucket_key)} {cumulative}"
                )
            inf_key = key + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_render_labels(inf_key)} {self._totals[key]}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(self._sums[key])}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {self._totals[key]}"
            )
        return lines

    def snapshot_value(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key in self._counts:
            out[_render_labels(key) + ":count"] = self._totals[key]
            out[_render_labels(key) + ":sum"] = self._sums[key]
        return out


class MetricsRegistry:
    """Named metric families; one per traced run (or per cluster)."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    # -- exports ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-able {metric: {label-string: value}} for diffing runs."""
        return {
            name: metric.snapshot_value()
            for name, metric in sorted(self._metrics.items())
        }


def diff_snapshots(
    before: Dict[str, Dict[str, float]],
    after: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Per-sample ``after - before`` deltas, omitting exact zeros."""
    out: Dict[str, Dict[str, float]] = {}
    names = set(before) | set(after)
    for name in sorted(names):
        old = before.get(name, {})
        new = after.get(name, {})
        deltas: Dict[str, float] = {}
        for key in sorted(set(old) | set(new)):
            delta = new.get(key, 0.0) - old.get(key, 0.0)
            if delta:
                deltas[key] = delta
        if deltas:
            out[name] = deltas
    return out


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prometheus(text: str) -> List[str]:
    """Schema-check a text exposition; returns the problems found.

    Enforced: every sample line parses, every sampled family has a
    preceding ``# TYPE``, label pairs are well-formed, and histogram
    families carry ``_bucket``/``_sum``/``_count`` series.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    histogram_parts: Dict[str, set] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                histogram_parts.setdefault(family, set()).add(suffix)
        if family not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            if body:
                for pair in _split_label_pairs(body):
                    if not _LABEL_PAIR_RE.match(pair):
                        problems.append(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
    for family, kind in typed.items():
        if kind == "histogram":
            parts = histogram_parts.get(family, set())
            missing = {"_bucket", "_sum", "_count"} - parts
            if missing:
                problems.append(
                    f"histogram {family!r} missing series {sorted(missing)}"
                )
    return problems


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse a text exposition back into ``{sample_name: {labels: value}}``.

    The inverse of :meth:`MetricsRegistry.to_prometheus` for round-trip
    tests: sample names keep their ``_bucket``/``_sum``/``_count``
    suffixes, label strings keep their rendered ``{a="x",b="y"}`` form
    (empty string when unlabelled), ``+Inf``/``-Inf`` parse to floats.
    Raises ``ValueError`` on an unparsable sample line — schema problems
    belong to :func:`validate_prometheus`; this is for text already known
    to be valid.
    """
    out: Dict[str, Dict[str, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        raw = match.group("value")
        if raw.endswith("Inf"):
            value = math.inf if not raw.startswith("-") else -math.inf
        else:
            value = float(raw)
        out.setdefault(match.group("name"), {})[
            match.group("labels") or ""
        ] = value
    return out


def _split_label_pairs(body: str) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs: List[str] = []
    current: List[str] = []
    in_string = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\" and in_string:
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_string = not in_string
            current.append(char)
            continue
        if char == "," and not in_string:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
