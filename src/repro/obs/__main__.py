"""``python -m repro.obs`` — snapshot, diff, or render observability data.

Subcommands::

    snapshot   run a traced maintenance workload and write trace.json,
               metrics.prom, and metrics.json into --out
    diff       per-sample deltas between two metrics.json snapshots
    render     tree view of an exported Chrome-trace JSON file
    timeline   run the open-loop load driver sampling metrics on a fixed
               cadence; write timeline.jsonl + timeline-range.json and
               print a sparkline view

Examples::

    PYTHONPATH=src python -m repro.obs snapshot --smoke --out obs-artifacts
    PYTHONPATH=src python -m repro.obs snapshot --method global_index --workers 2
    PYTHONPATH=src python -m repro.obs diff run-a/metrics.json run-b/metrics.json
    PYTHONPATH=src python -m repro.obs render obs-artifacts/trace.json
    PYTHONPATH=src python -m repro.obs timeline --smoke --out obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from .collect import attach_observability, collect_cluster_metrics
from .export import (
    to_chrome_trace,
    validate_chrome_trace,
    validate_prometheus_range,
)
from .metrics import diff_snapshots, validate_prometheus
from .render import render_chrome_trace, render_timeline, render_tree


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from ..workloads.skewed import SkewedJoinWorkload, build_skewed_cluster

    rows_total = 240 if args.smoke else args.rows
    num_nodes = 4 if args.smoke else args.nodes
    workload = SkewedJoinWorkload(
        num_keys=16 if args.smoke else 64, fanout=4, skew=1.2
    )
    workload = replace(workload, seed=args.seed)
    cluster = build_skewed_cluster(
        workload, num_nodes=num_nodes, method=args.method, strategy="inl"
    )
    if args.workers:
        cluster.workers = args.workers
    obs = attach_observability(cluster)
    try:
        rows = workload.a_rows(rows_total)
        size = max(1, args.statement_size)
        for start in range(0, len(rows), size):
            cluster.insert("A", rows[start : start + size])
        registry = collect_cluster_metrics(cluster)
    finally:
        cluster.close()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace = to_chrome_trace(obs.tracer, process_name=f"repro/{args.method}")
    problems = validate_chrome_trace(trace) + validate_prometheus(
        registry.to_prometheus()
    )
    (out_dir / "trace.json").write_text(json.dumps(trace, indent=2) + "\n")
    (out_dir / "metrics.prom").write_text(registry.to_prometheus())
    (out_dir / "metrics.json").write_text(
        json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    print(render_tree(obs.tracer, max_spans=args.max_spans))
    print()
    print(
        f"method={args.method} workers={args.workers or 'serial'} "
        f"rows={rows_total} spans={obs.tracer.span_count()}"
    )
    print(f"wrote {out_dir}/trace.json, metrics.prom, metrics.json")
    if problems:  # pragma: no cover - self-check of freshly built exports
        for problem in problems:
            print(f"export problem: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from ..core.deferred import defer_view
    from ..workloads.skewed import SkewedJoinWorkload, build_skewed_cluster
    from .load import build_schedule, execute_schedule
    from .timeseries import TimeSeriesCollector

    total_ops = 30 if args.smoke else args.ops
    num_nodes = 4 if args.smoke else args.nodes
    workload = SkewedJoinWorkload(
        num_keys=16 if args.smoke else 64, fanout=4, skew=1.2
    )
    workload = replace(workload, seed=args.seed)
    cluster = build_skewed_cluster(
        workload, num_nodes=num_nodes, method=args.method, strategy="inl"
    )
    if args.workers:
        cluster.workers = args.workers
    attach_observability(cluster)
    deferred = args.mode == "deferred"
    wrapper = (
        defer_view(cluster, "JV", flush_threshold=4 * args.statement_size)
        if deferred
        else None
    )
    schedule = build_schedule(
        workload,
        total_ops=total_ops,
        statement_size=args.statement_size,
        read_fraction=args.read_fraction,
        seed=args.seed,
        deferred=deferred,
    )
    collector = TimeSeriesCollector(
        lambda: collect_cluster_metrics(cluster), capacity=args.capacity
    )
    try:
        execute_schedule(
            cluster,
            schedule,
            refresh=wrapper.refresh if wrapper is not None else None,
            registry=cluster.obs.metrics,
            collector=collector,
            cadence=args.cadence,
            method=args.method,
            mode=args.mode,
        )
        registry = collect_cluster_metrics(cluster)
    finally:
        cluster.close()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    range_doc = collector.to_prometheus_range()
    problems = validate_prometheus_range(range_doc) + validate_prometheus(
        registry.to_prometheus()
    )
    (out_dir / "timeline.jsonl").write_text(collector.to_jsonl())
    (out_dir / "timeline-range.json").write_text(
        json.dumps(range_doc, indent=2, sort_keys=True) + "\n"
    )
    (out_dir / "metrics.prom").write_text(registry.to_prometheus())
    print(render_timeline(collector, metrics=args.metric or None))
    print()
    print(
        f"method={args.method} mode={args.mode} ops={len(schedule)} "
        f"samples={len(collector)}"
    )
    print(f"wrote {out_dir}/timeline.jsonl, timeline-range.json, metrics.prom")
    if problems:  # pragma: no cover - self-check of freshly built exports
        for problem in problems:
            print(f"export problem: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = json.loads(Path(args.before).read_text())
    after = json.loads(Path(args.after).read_text())
    deltas = diff_snapshots(before, after)
    if not deltas:
        print("no metric differences")
        return 0
    for name, samples in deltas.items():
        print(name)
        for labels, delta in sorted(samples.items()):
            sign = "+" if delta > 0 else ""
            print(f"  {labels or '(no labels)'}: {sign}{delta:g}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    doc = json.loads(Path(args.trace).read_text())
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    print(render_chrome_trace(doc, max_spans=args.max_spans))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace, meter, and inspect the simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snapshot = sub.add_parser(
        "snapshot", help="run a traced workload and write trace + metrics"
    )
    snapshot.add_argument("--method", default="auxiliary",
                          choices=("naive", "auxiliary", "global_index", "hybrid"))
    snapshot.add_argument("--workers", type=int, default=0,
                          help="fork-based worker pool size (0 = serial)")
    snapshot.add_argument("--rows", type=int, default=960)
    snapshot.add_argument("--nodes", type=int, default=8)
    snapshot.add_argument("--statement-size", type=int, default=40)
    snapshot.add_argument("--seed", type=int, default=42)
    snapshot.add_argument("--smoke", action="store_true",
                          help="tiny CI-sized configuration")
    snapshot.add_argument("--out", default="obs-artifacts")
    snapshot.add_argument("--max-spans", type=int, default=60)
    snapshot.set_defaults(func=_cmd_snapshot)

    timeline = sub.add_parser(
        "timeline", help="run the load driver sampling metrics on a cadence"
    )
    timeline.add_argument("--method", default="auxiliary",
                          choices=("naive", "auxiliary", "global_index", "hybrid"))
    timeline.add_argument("--mode", default="eager",
                          choices=("eager", "deferred"))
    timeline.add_argument("--workers", type=int, default=0,
                          help="fork-based worker pool size (0 = serial)")
    timeline.add_argument("--ops", type=int, default=120,
                          help="scheduled operations (updates + reads)")
    timeline.add_argument("--nodes", type=int, default=8)
    timeline.add_argument("--statement-size", type=int, default=8)
    timeline.add_argument("--read-fraction", type=float, default=0.25)
    timeline.add_argument("--cadence", type=int, default=8,
                          help="sample the registry every N completed ops")
    timeline.add_argument("--capacity", type=int, default=240,
                          help="ring buffer size (oldest samples evicted)")
    timeline.add_argument("--seed", type=int, default=42)
    timeline.add_argument("--smoke", action="store_true",
                          help="tiny CI-sized configuration")
    timeline.add_argument("--out", default="obs-artifacts")
    timeline.add_argument("--metric", action="append", default=[],
                          help="restrict the rendered view to these "
                          "metric-name prefixes (repeatable)")
    timeline.set_defaults(func=_cmd_timeline)

    diff = sub.add_parser("diff", help="delta between two metrics.json files")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.set_defaults(func=_cmd_diff)

    render = sub.add_parser("render", help="tree view of a Chrome-trace file")
    render.add_argument("trace")
    render.add_argument("--max-spans", type=int, default=200)
    render.set_defaults(func=_cmd_render)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
