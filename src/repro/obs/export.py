"""Trace exports: Chrome-trace/Perfetto JSON (plus its schema check).

The Chrome trace event format is the JSON-array-of-events flavor accepted
by ``chrome://tracing`` and https://ui.perfetto.dev: complete spans are
``"ph": "X"`` events with microsecond ``ts``/``dur``, instants are
``"ph": "i"``.  We emit the object form (``{"traceEvents": [...]}``) so a
metadata block can ride along.
"""

from __future__ import annotations

from typing import Dict, List

from .tracer import Tracer

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_prometheus_range",
]

#: required keys per event phase
_REQUIRED = {"name", "ph", "ts", "pid", "tid"}


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict:
    """Export a tracer's span forest as a Chrome-trace JSON document.

    Spans whose tags carry an integer ``node`` land on that node's track
    (``tid = node + 1``); untargeted spans (statement envelopes, planner
    work) go to track 0.  Timestamps are microseconds relative to the
    tracer's origin, durations likewise — exactly what Perfetto expects.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    origin = tracer.origin_ns
    for _depth, span in tracer.walk():
        tid = _track_of(span.tags)
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_ns - origin) / 1000.0,
                "dur": max(0.0, (end_ns - span.start_ns) / 1000.0),
                "pid": 0,
                "tid": tid,
                "args": {key: _jsonable(value) for key, value in span.tags.items()},
            }
        )
        for _seq, name, tags in span.events:
            events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": (span.start_ns - origin) / 1000.0,
                    "pid": 0,
                    "tid": _track_of(tags, default=tid),
                    "args": {k: _jsonable(v) for k, v in tags.items()},
                }
            )
    for _seq, name, tags in tracer.orphan_events:
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "i",
                "s": "g",
                "ts": 0,
                "pid": 0,
                "tid": _track_of(tags),
                "args": {k: _jsonable(v) for k, v in tags.items()},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": process_name, "spans": tracer.span_count()},
    }


def _track_of(tags: Dict[str, object], default: int = 0) -> int:
    node = tags.get("node")
    if isinstance(node, int) and not isinstance(node, bool) and node >= 0:
        return node + 1
    return default


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def validate_prometheus_range(doc: object) -> List[str]:
    """Schema-check a Prometheus ``query_range`` response document
    (:meth:`repro.obs.timeseries.TimeSeriesCollector.to_prometheus_range`).

    Enforced: the ``status``/``data``/``resultType: matrix`` envelope,
    per-series ``metric`` objects carrying ``__name__``, and ``values``
    as ``[timestamp, string]`` pairs with non-decreasing timestamps.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("status") != "success":
        problems.append("status != 'success'")
    data = doc.get("data")
    if not isinstance(data, dict):
        return problems + ["missing or non-object 'data'"]
    if data.get("resultType") != "matrix":
        problems.append("data.resultType != 'matrix'")
    result = data.get("result")
    if not isinstance(result, list):
        return problems + ["missing or non-list 'data.result'"]
    for index, series in enumerate(result):
        if not isinstance(series, dict):
            problems.append(f"series {index} is not an object")
            continue
        metric = series.get("metric")
        if not isinstance(metric, dict) or "__name__" not in metric:
            problems.append(f"series {index} metric lacks '__name__'")
        values = series.get("values")
        if not isinstance(values, list):
            problems.append(f"series {index} has no 'values' list")
            continue
        last_ts = None
        for position, pair in enumerate(values):
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not isinstance(pair[0], (int, float))
                or not isinstance(pair[1], str)
            ):
                problems.append(
                    f"series {index} value {position} is not [ts, 'v']"
                )
                continue
            if last_ts is not None and pair[0] < last_ts:
                problems.append(
                    f"series {index} timestamps decrease at {position}"
                )
            last_ts = pair[0]
    return problems


def validate_chrome_trace(doc: object) -> List[str]:
    """Schema-check a Chrome-trace document; returns the problems found."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        missing = _REQUIRED - set(event)
        if missing:
            problems.append(f"event {index} missing keys {sorted(missing)}")
            continue
        phase = event["ph"]
        if phase not in ("X", "B", "E", "i", "I", "M", "C"):
            problems.append(f"event {index} has unknown phase {phase!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"event {index} has invalid ts {event['ts']!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index} ('X') has invalid dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"event {index} has non-object args")
    return problems
