"""Human-readable views: span trees and metric timelines."""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracer import Tracer

__all__ = ["render_tree", "render_chrome_trace", "render_timeline"]

_SKIP_TAGS = frozenset({"error"})


def _format_tags(tags: Dict[str, object], limit: int = 6) -> str:
    shown = [
        f"{key}={value}"
        for key, value in tags.items()
        if key not in _SKIP_TAGS
    ][:limit]
    error = tags.get("error")
    if error:
        shown.append(f"error={error}")
    return " ".join(shown)


def render_tree(tracer: Tracer, max_spans: int = 400) -> str:
    """ASCII tree of the tracer's span forest with durations and tags.

    >>> tracer = Tracer()
    >>> with tracer.span("statement", relation="A"):
    ...     with tracer.span("hop", partner="B"):
    ...         pass
    >>> print(render_tree(tracer))  # doctest: +ELLIPSIS
    statement ... relation=A
      hop ... partner=B
    """
    lines: List[str] = []
    shown = 0
    for depth, span in tracer.walk():
        if shown >= max_spans:
            lines.append(f"... ({tracer.span_count() - shown} more spans)")
            break
        shown += 1
        duration_ms = span.duration_ns / 1e6
        indent = "  " * depth
        tags = _format_tags(span.tags)
        lines.append(
            f"{indent}{span.name} [{duration_ms:.3f} ms]"
            + (f" {tags}" if tags else "")
        )
        for _seq, name, event_tags in span.events[:20]:
            etags = _format_tags(event_tags)
            lines.append(
                f"{indent}  * {name}" + (f" {etags}" if etags else "")
            )
        hidden = len(span.events) - 20
        if hidden > 0:
            lines.append(f"{indent}  * ... ({hidden} more events)")
    return "\n".join(lines)


_SPARK_BLOCKS = " .:-=+*#%@"


def _sparkline(values: List[Optional[float]], width: int) -> str:
    """ASCII sparkline (pure-ASCII ramp so terminals never mangle it)."""
    window = values[-width:]
    present = [value for value in window if value is not None]
    if not present:
        return " " * len(window)
    low, high = min(present), max(present)
    span = high - low
    chars: List[str] = []
    for value in window:
        if value is None:
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_BLOCKS[1])
        else:
            index = 1 + int((value - low) / span * (len(_SPARK_BLOCKS) - 2))
            chars.append(_SPARK_BLOCKS[min(index, len(_SPARK_BLOCKS) - 1)])
    return "".join(chars)


def render_timeline(
    collector,
    metrics: Optional[List[str]] = None,
    width: int = 48,
    max_series: int = 40,
) -> str:
    """Sparkline table of a :class:`~repro.obs.timeseries.TimeSeriesCollector`.

    One row per (metric, label set): the series' recent shape over the
    ring window plus its first and last values.  ``metrics`` restricts to
    the named families (prefix match, so ``repro_load`` covers the
    driver's counters).
    """
    series = collector.series()
    times = collector.times
    if not times:
        return "(no samples)"
    header = (
        f"{len(times)} sample(s) over "
        f"[{times[0]:.3f}s .. {times[-1]:.3f}s] "
        f"({collector.samples_taken} taken, ring capacity {collector.capacity})"
    )
    lines = [header]
    shown = 0
    for metric in sorted(series):
        if metrics is not None and not any(
            metric.startswith(prefix) for prefix in metrics
        ):
            continue
        for labels, values in series[metric].items():
            if shown >= max_series:
                lines.append("... (more series)")
                return "\n".join(lines)
            shown += 1
            present = [value for value in values if value is not None]
            first = present[0] if present else 0.0
            last = present[-1] if present else 0.0
            name = f"{metric}{labels}"
            lines.append(
                f"  {name:<60.60} |{_sparkline(values, width)}| "
                f"{first:g} -> {last:g}"
            )
    if shown == 0:
        lines.append("(no matching series)")
    return "\n".join(lines)


def render_chrome_trace(doc: Dict, max_spans: int = 400) -> str:
    """Rebuild a tree view from an exported Chrome-trace document.

    Nesting is reconstructed per track from ``ts``/``dur`` containment,
    which is exactly how the trace viewers draw it.
    """
    events = [
        event
        for event in doc.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    events.sort(key=lambda e: (e.get("tid", 0), e["ts"], -e.get("dur", 0)))
    lines: List[str] = []
    stack: List[Dict] = []
    last_tid = None
    shown = 0
    for event in events:
        tid = event.get("tid", 0)
        if tid != last_tid:
            stack = []
            last_tid = tid
            lines.append(f"track {tid}:")
        while stack and event["ts"] >= stack[-1]["ts"] + stack[-1].get("dur", 0):
            stack.pop()
        depth = len(stack)
        args = event.get("args", {})
        tags = _format_tags(args)
        lines.append(
            "  " * (depth + 1)
            + f"{event['name']} [{event.get('dur', 0) / 1000.0:.3f} ms]"
            + (f" {tags}" if tags else "")
        )
        stack.append(event)
        shown += 1
        if shown >= max_spans:
            lines.append(f"... ({len(events) - shown} more spans)")
            break
    return "\n".join(lines)
