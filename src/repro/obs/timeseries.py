"""Time-series collection over the Prometheus export (``repro.obs``).

The metrics registry answers "what are the totals *now*"; this module
answers "how did they move".  A :class:`TimeSeriesCollector` snapshots a
registry on a fixed cadence into a bounded ring buffer and derives deltas
and rates between adjacent samples.  Two exports:

* **JSONL** — one ``{"t": ..., "samples": {...}}`` object per line, the
  diff-friendly artifact CI uploads; round-trips via :meth:`from_jsonl`;
* **Prometheus range** — the ``query_range`` response shape
  (``resultType: "matrix"``, per-series ``values: [[ts, "v"], ...]``)
  that Grafana and ``promtool`` already understand.

Cadence is the *caller's* clock: the load driver samples every K
operations (deterministic), interactive use samples on wall time.  The
collector itself never sleeps or schedules — it only records what it is
handed, so tests can drive it with synthetic timestamps.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry

__all__ = ["TimeSeriesCollector", "series_rates"]

Snapshot = Dict[str, Dict[str, float]]


class TimeSeriesCollector:
    """A bounded ring of timestamped registry snapshots.

    ``capacity`` bounds memory: the ring keeps the most recent N samples
    and forgets the oldest, so a long-running driver can sample forever.
    ``source`` is any zero-argument callable returning a
    :class:`MetricsRegistry` (typically ``lambda: obs.metrics`` or a
    ``collect_cluster_metrics`` closure re-pulling gauges).
    """

    def __init__(
        self,
        source: Callable[[], MetricsRegistry],
        capacity: int = 240,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (need pairs for deltas)")
        self.source = source
        self.capacity = capacity
        self._times: List[float] = []
        self._snapshots: List[Snapshot] = []
        self.samples_taken = 0  # lifetime count, survives ring eviction

    # ------------------------------------------------------------ sampling

    def sample(self, timestamp: float) -> Snapshot:
        """Snapshot the source registry at ``timestamp`` (caller's clock;
        must be monotonically non-decreasing across calls)."""
        if self._times and timestamp < self._times[-1]:
            raise ValueError(
                f"timestamp {timestamp!r} precedes last sample {self._times[-1]!r}"
            )
        snapshot = self.source().snapshot()
        self._times.append(timestamp)
        self._snapshots.append(snapshot)
        self.samples_taken += 1
        if len(self._times) > self.capacity:
            del self._times[0]
            del self._snapshots[0]
        return snapshot

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Tuple[float, ...]:
        return tuple(self._times)

    # ---------------------------------------------------------- derivation

    def series(self) -> Dict[str, Dict[str, List[Optional[float]]]]:
        """Dense per-series values: {metric: {labels: [v per sample]}}.

        Samples predating a series' first appearance (or after its last,
        if the registry was cleared) hold ``None``.
        """
        names: Dict[str, set] = {}
        for snapshot in self._snapshots:
            for metric, samples in snapshot.items():
                names.setdefault(metric, set()).update(samples)
        out: Dict[str, Dict[str, List[Optional[float]]]] = {}
        for metric in sorted(names):
            per_label: Dict[str, List[Optional[float]]] = {}
            for labels in sorted(names[metric]):
                per_label[labels] = [
                    snapshot.get(metric, {}).get(labels)
                    for snapshot in self._snapshots
                ]
            out[metric] = per_label
        return out

    def deltas(self) -> Dict[str, Dict[str, List[float]]]:
        """Adjacent-sample differences (length ``len(self) - 1``); a series
        absent on either side of a pair contributes 0 for that step."""
        out: Dict[str, Dict[str, List[float]]] = {}
        for metric, per_label in self.series().items():
            for labels, values in per_label.items():
                steps = [
                    (b or 0.0) - (a or 0.0)
                    for a, b in zip(values, values[1:])
                ]
                if any(steps):
                    out.setdefault(metric, {})[labels] = steps
        return out

    def rates(self) -> Dict[str, Dict[str, List[float]]]:
        """Per-second rates: each delta divided by its pair's time gap
        (0 for a zero-width gap)."""
        gaps = [b - a for a, b in zip(self._times, self._times[1:])]
        out: Dict[str, Dict[str, List[float]]] = {}
        for metric, per_label in self.deltas().items():
            for labels, steps in per_label.items():
                out.setdefault(metric, {})[labels] = [
                    step / gap if gap > 0 else 0.0
                    for step, gap in zip(steps, gaps)
                ]
        return out

    # ------------------------------------------------------------- exports

    def to_jsonl(self) -> str:
        """One JSON object per sample: ``{"t": ts, "samples": snapshot}``."""
        lines = [
            json.dumps({"t": t, "samples": snapshot}, sort_keys=True)
            for t, snapshot in zip(self._times, self._snapshots)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str, capacity: int = 240) -> "TimeSeriesCollector":
        """Rebuild a collector (frozen source) from a JSONL export."""
        collector = cls(MetricsRegistry, capacity=capacity)
        for line in text.splitlines():
            if not line.strip():
                continue
            doc = json.loads(line)
            collector._times.append(float(doc["t"]))
            collector._snapshots.append(doc["samples"])
            collector.samples_taken += 1
            if len(collector._times) > capacity:
                del collector._times[0]
                del collector._snapshots[0]
        return collector

    def to_prometheus_range(self) -> Dict[str, object]:
        """The Prometheus ``query_range`` response shape for all series.

        ``metric`` carries ``__name__`` plus the parsed label pairs;
        ``values`` are ``[timestamp, "value"]`` pairs with gaps (samples
        where the series did not exist) omitted, exactly as a real range
        query omits scrapes with no data.
        """
        result: List[Dict[str, object]] = []
        for metric, per_label in self.series().items():
            for labels, values in per_label.items():
                metric_labels: Dict[str, str] = {"__name__": metric}
                if labels.startswith("{") and labels.endswith("}"):
                    for pair in labels[1:-1].split(","):
                        if not pair:
                            continue
                        name, _, raw = pair.partition("=")
                        metric_labels[name] = raw.strip('"')
                elif labels:
                    # Histogram snapshots key samples as '{...}:count' /
                    # '{...}:sum' — not a plain label set; keep the raw
                    # key so the series stays addressable.
                    metric_labels["series"] = labels
                points = [
                    [t, repr(value) if value is not None else None]
                    for t, value in zip(self._times, values)
                ]
                result.append({
                    "metric": metric_labels,
                    "values": [
                        [t, text] for t, text in points if text is not None
                    ],
                })
        return {
            "status": "success",
            "data": {"resultType": "matrix", "result": result},
        }


def series_rates(
    times: Sequence[float], values: Sequence[float]
) -> List[float]:
    """Rate helper for externally-assembled series (tests, renderers)."""
    return [
        (b - a) / (tb - ta) if tb > ta else 0.0
        for a, b, ta, tb in zip(values, values[1:], times, times[1:])
    ]
