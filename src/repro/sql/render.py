"""Rendering view definitions back to the paper's SQL dialect.

The inverse of :mod:`repro.sql.parser`: given a
:class:`~repro.core.view.JoinViewDefinition` (and the schemas needed to
resolve a hash placement back to its source column), produce a CREATE VIEW
statement that parses to an equivalent definition.  Used by reports and by
the round-trip property tests that pin the dialect down.
"""

from __future__ import annotations

from typing import Mapping

from ..cluster.partitioning import HashPartitioning
from ..core.view import BoundView, JoinViewDefinition
from ..storage.schema import Schema


def render_view_sql(
    definition: JoinViewDefinition, schemas: Mapping[str, Schema]
) -> str:
    """A CREATE VIEW statement equivalent to ``definition``.

    Round-trip guarantee: ``parse_join_view(render_view_sql(d, s), s)``
    yields a definition with the same relations, conditions, select list,
    and placement.
    """
    bound = BoundView(definition, schemas)
    if definition.select is None:
        select_clause = "*"
    else:
        select_clause = ", ".join(
            f"{relation}.{column}" for relation, column in definition.select
        )
    from_clause = ", ".join(definition.relations)
    where_clause = " and ".join(
        f"{c.left}.{c.left_column} = {c.right}.{c.right_column}"
        for c in definition.conditions
    )
    statement = (
        f"create view {definition.name} as "
        f"select {select_clause} from {from_clause} where {where_clause}"
    )
    if isinstance(definition.partitioning, HashPartitioning):
        relation, column = bound.source_of_output(definition.partitioning.column)
        statement += f" partitioned on {relation}.{column}"
    return statement + ";"
