"""The paper's CREATE VIEW dialect: parsing and rendering."""

from .parser import SqlSyntaxError, parse_join_view
from .render import render_view_sql

__all__ = ["parse_join_view", "render_view_sql", "SqlSyntaxError"]
