"""A parser for the paper's CREATE VIEW dialect.

The paper writes its views as SQL::

    create view JV as
    select *
    from A, B
    where A.c = B.d
    partitioned on A.e;

    create view JV2 as
    select c.custkey, c.acctbal, o.orderkey, o.totalprice,
           l.discount, l.extendedprice
    from orders o, customer c, lineitem l
    where c.custkey = o.custkey and o.orderkey = l.orderkey;

This module parses exactly that dialect — a select list (or ``*``), a FROM
list with optional aliases, a conjunction of equi-join predicates, and the
optional ``PARTITIONED ON`` clause — into a
:class:`~repro.core.view.JoinViewDefinition`.  It is deliberately not a
general SQL parser: anything outside the paper's view language is a loud
:class:`SqlSyntaxError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..cluster.partitioning import HashPartitioning, RoundRobinPartitioning
from ..core.view import BoundView, JoinCondition, JoinViewDefinition
from ..storage.schema import Schema


class SqlSyntaxError(ValueError):
    """Raised when the statement falls outside the paper's view dialect."""


_VIEW_RE = re.compile(
    r"""
    ^\s*create\s+view\s+(?P<name>\w+)\s+as\s+
    select\s+(?P<select>.+?)\s+
    from\s+(?P<from>.+?)\s+
    where\s+(?P<where>.+?)
    (?:\s+partitioned\s+on\s+(?P<partition>[\w.]+))?
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_QUALIFIED_RE = re.compile(r"^(\w+)\.(\w+)$")


@dataclass(frozen=True)
class _FromItem:
    relation: str
    alias: str


def _parse_from(clause: str) -> List[_FromItem]:
    items: List[_FromItem] = []
    for part in clause.split(","):
        tokens = part.split()
        if len(tokens) == 1:
            items.append(_FromItem(tokens[0], tokens[0]))
        elif len(tokens) == 2:
            items.append(_FromItem(tokens[0], tokens[1]))
        elif len(tokens) == 3 and tokens[1].lower() == "as":
            items.append(_FromItem(tokens[0], tokens[2]))
        else:
            raise SqlSyntaxError(f"cannot parse FROM item {part.strip()!r}")
    if not items:
        raise SqlSyntaxError("empty FROM clause")
    aliases = [item.alias for item in items]
    if len(set(aliases)) != len(aliases):
        raise SqlSyntaxError(f"duplicate aliases in FROM: {aliases}")
    return items


def _resolve(alias_map: Dict[str, str], reference: str) -> Tuple[str, str]:
    match = _QUALIFIED_RE.match(reference.strip())
    if not match:
        raise SqlSyntaxError(
            f"column references must be qualified (alias.column): {reference!r}"
        )
    alias, column = match.groups()
    try:
        return alias_map[alias], column
    except KeyError:
        raise SqlSyntaxError(
            f"unknown alias {alias!r}; FROM declares {sorted(alias_map)}"
        ) from None


def _parse_where(alias_map: Dict[str, str], clause: str) -> List[JoinCondition]:
    conditions: List[JoinCondition] = []
    for predicate in re.split(r"\s+and\s+", clause, flags=re.IGNORECASE):
        sides = predicate.split("=")
        if len(sides) != 2:
            raise SqlSyntaxError(
                f"only equi-join predicates are supported: {predicate.strip()!r}"
            )
        left_rel, left_col = _resolve(alias_map, sides[0])
        right_rel, right_col = _resolve(alias_map, sides[1])
        conditions.append(JoinCondition(left_rel, left_col, right_rel, right_col))
    return conditions


def _parse_select(
    alias_map: Dict[str, str], clause: str
) -> Optional[Tuple[Tuple[str, str], ...]]:
    clause = clause.strip()
    if clause == "*":
        return None
    return tuple(
        _resolve(alias_map, item) for item in clause.split(",") if item.strip()
    )


def parse_join_view(
    sql: str, schemas: Mapping[str, Schema]
) -> JoinViewDefinition:
    """Parse a CREATE VIEW statement of the paper's dialect.

    ``schemas`` maps relation names to their schemas; it is needed to
    resolve the ``PARTITIONED ON`` reference to the view's *output* column
    (which may be qualified, e.g. ``customer_custkey``, when two relations
    share a column name).  Statements without the clause produce a
    round-robin-placed view, the paper's "not partitioned on an attribute
    of A" variant.
    """
    match = _VIEW_RE.match(sql)
    if not match:
        raise SqlSyntaxError(
            "expected: CREATE VIEW <name> AS SELECT <list|*> FROM <relations> "
            "WHERE <equi-joins> [PARTITIONED ON <alias.column>]"
        )
    name = match.group("name")
    from_items = _parse_from(match.group("from"))
    alias_map = {item.alias: item.relation for item in from_items}
    for item in from_items:
        if item.relation not in schemas:
            raise SqlSyntaxError(f"unknown relation {item.relation!r} in FROM")
    relations = tuple(item.relation for item in from_items)
    select = _parse_select(alias_map, match.group("select"))
    conditions = tuple(_parse_where(alias_map, match.group("where")))

    definition = JoinViewDefinition(
        name=name,
        relations=relations,
        conditions=conditions,
        select=select,
        partitioning=RoundRobinPartitioning(),
    )
    partition_ref = match.group("partition")
    if partition_ref is None:
        return definition
    relation, column = _resolve_partition(alias_map, schemas, partition_ref, definition)
    bound = BoundView(
        JoinViewDefinition(
            name=name, relations=relations, conditions=conditions, select=select
        ),
        schemas,
    )
    if (relation, column) not in bound.select:
        raise SqlSyntaxError(
            f"PARTITIONED ON {partition_ref!r} is not in the view's select list"
        )
    return JoinViewDefinition(
        name=name,
        relations=relations,
        conditions=conditions,
        select=select,
        partitioning=HashPartitioning(bound.output_name(relation, column)),
    )


def _resolve_partition(
    alias_map: Dict[str, str],
    schemas: Mapping[str, Schema],
    reference: str,
    definition: JoinViewDefinition,
) -> Tuple[str, str]:
    if _QUALIFIED_RE.match(reference.strip()):
        return _resolve(alias_map, reference)
    # A bare column: unambiguous only if exactly one view relation has it.
    owners = [
        relation for relation in definition.relations
        if reference in schemas[relation]
    ]
    if len(owners) != 1:
        raise SqlSyntaxError(
            f"PARTITIONED ON {reference!r} is ambiguous (owned by {owners}); "
            "qualify it as alias.column"
        )
    return owners[0], reference
