"""``python -m repro.analysis`` — the reprolint CLI.

Usage::

    python -m repro.analysis src/                      # text report
    python -m repro.analysis --format=json src/        # CI artifact
    python -m repro.analysis --baseline=analysis-baseline.json src/
    python -m repro.analysis --write-baseline src/     # grandfather current
    python -m repro.analysis --rules=REP001,REP002 src/
    python -m repro.analysis --list-rules

Exit status: 0 when clean, 1 when findings (or stale baseline entries)
remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .baseline import Baseline, load_baseline, save_baseline
from .engine import analyze_paths
from .reporters import exit_code, render_json, render_text
from .rules import RULES


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static checks for the repro engine "
        "(charged sends, determinism, obs purity, cost constants, "
        "envelope vocabulary, undo logging).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories to analyze (default: src/ if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="JSON baseline of accepted findings; matching findings are "
        "dropped, stale entries are reported",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline (default analysis-baseline.json) to accept "
        "every current finding, then exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and their annotation keys, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            info = RULES[rule_id]
            suffix = (
                f"  [annotation: # repro: {info.annotation}=<reason>]"
                if info.annotation
                else ""
            )
            print(f"{rule_id}  {info.summary}{suffix}")
        return 0

    targets = args.targets or (["src"] if os.path.isdir("src") else ["."])
    only_rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )

    baseline: Optional[Baseline] = None
    baseline_path = args.baseline
    if args.write_baseline and baseline_path is None:
        baseline_path = "analysis-baseline.json"
    if baseline_path and not args.write_baseline:
        if not os.path.exists(baseline_path):
            print(f"baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)

    try:
        result = analyze_paths(targets, baseline=baseline, only_rules=only_rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(baseline_path, Baseline.from_findings(result.findings))
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(result))
    return exit_code(result)


if __name__ == "__main__":
    sys.exit(main())
