"""``python -m repro.analysis`` — the reprolint CLI.

Usage::

    python -m repro.analysis src/                      # text report
    python -m repro.analysis --format=json src/        # CI artifact
    python -m repro.analysis --baseline=analysis-baseline.json src/
    python -m repro.analysis --write-baseline src/     # grandfather current
    python -m repro.analysis --rules=REP001,REP002 src/
    python -m repro.analysis --flow src/               # + REP007-REP009
    python -m repro.analysis --flow --dot=callgraph.dot src/
    python -m repro.analysis --audit-suppressions src/
    python -m repro.analysis --list-rules
    python -m repro.analysis interleave --workers=2,4 --seeds=17

Exit status: 0 when clean, 1 when findings (or stale baseline entries, or
stale suppressions, or divergent schedules) remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .baseline import Baseline, load_baseline, save_baseline
from .engine import analyze_paths
from .reporters import exit_code, render_json, render_text
from .rules import RULES


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static checks for the repro engine "
        "(charged sends, determinism, obs purity, cost constants, "
        "envelope vocabulary, undo logging; --flow adds the "
        "interprocedural charge-flow, taint, and undo-domination rules).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories to analyze (default: src/ if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="JSON baseline of accepted findings; matching findings are "
        "dropped, stale entries are reported",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline (default analysis-baseline.json) to accept "
        "every current finding, then exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also build the project call graph and run the "
        "interprocedural rules (REP007-REP009)",
    )
    parser.add_argument(
        "--dot",
        metavar="PATH",
        help="with --flow: write the project call graph as Graphviz DOT",
    )
    parser.add_argument(
        "--audit-suppressions",
        action="store_true",
        help="inventory every '# repro:' noqa/annotation as JSON and exit "
        "1 if any is stale (no rule consulted it this run)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and their annotation keys, then exit",
    )
    return parser


def _interleave_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis interleave",
        description="Seeded schedule-permutation race detector: drive the "
        "parallel engine's order decisions (envelope, refresh, reply, "
        "merge) through hundreds of distinct interleavings and assert "
        "bit-identical ledgers, network stats, and fragments; any "
        "divergence is delta-debugged to a minimal event-reorder witness.",
    )
    parser.add_argument(
        "--workers",
        default="2,4",
        metavar="COUNTS",
        help="comma-separated worker-pool sizes (default: 2,4)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=17,
        metavar="N",
        help="schedule seeds per configuration (default: 17)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=14,
        metavar="N",
        help="statements per workload script (default: 14)",
    )
    parser.add_argument(
        "--methods",
        default="naive,auxiliary,global_index",
        metavar="NAMES",
        help="maintenance methods (default: naive,auxiliary,global_index)",
    )
    parser.add_argument(
        "--modes",
        default="eager,deferred",
        metavar="NAMES",
        help="maintenance timing modes (default: eager,deferred)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without delta-debugging them",
    )
    return parser


def _interleave_main(argv: List[str]) -> int:
    from .interleave import run_detector

    args = _interleave_parser().parse_args(argv)
    try:
        workers = [int(w) for w in args.workers.split(",") if w.strip()]
    except ValueError:
        print(f"bad --workers value: {args.workers!r}", file=sys.stderr)
        return 2
    report = run_detector(
        methods=tuple(m.strip() for m in args.methods.split(",") if m.strip()),
        modes=tuple(m.strip() for m in args.modes.split(",") if m.strip()),
        workers=workers,
        seeds=range(args.seeds),
        steps=args.steps,
        shrink=not args.no_shrink,
        log=lambda message: print(message, file=sys.stderr),
    )
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "interleave":
        return _interleave_main(argv[1:])
    args = _parser().parse_args(argv)
    if args.list_rules:
        from .flow import FLOW_RULES

        for rule_id in sorted(RULES):
            info = RULES[rule_id]
            suffix = (
                f"  [annotation: # repro: {info.annotation}=<reason>]"
                if info.annotation
                else ""
            )
            print(f"{rule_id}  {info.summary}{suffix}")
        for rule_id in sorted(FLOW_RULES):
            flow_info = FLOW_RULES[rule_id]
            suffix = (
                f"  [annotation: # repro: {flow_info.annotation}=<reason>]"
                if flow_info.annotation
                else ""
            )
            print(f"{rule_id}  (flow) {flow_info.summary}{suffix}")
        return 0

    targets = args.targets or (["src"] if os.path.isdir("src") else ["."])

    if args.audit_suppressions:
        from .audit import audit_suppressions, render_audit

        report = audit_suppressions(targets)
        sys.stdout.write(render_audit(report))
        if report["stale"]:
            print(
                f"{report['stale']} stale suppression(s) — remove them or "
                "re-justify against a live finding",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.dot and not args.flow:
        print("--dot requires --flow (it exports the call graph)",
              file=sys.stderr)
        return 2

    only_rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )

    baseline: Optional[Baseline] = None
    baseline_path = args.baseline
    if args.write_baseline and baseline_path is None:
        baseline_path = "analysis-baseline.json"
    if baseline_path and not args.write_baseline:
        if not os.path.exists(baseline_path):
            print(f"baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)

    contexts = {} if args.dot else None
    try:
        result = analyze_paths(
            targets,
            baseline=baseline,
            only_rules=only_rules,
            flow=args.flow,
            contexts_out=contexts,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.dot and contexts is not None:
        from .flow import build_project

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(build_project(contexts).graph.to_dot())
        print(f"wrote call graph to {args.dot}", file=sys.stderr)

    if args.write_baseline:
        save_baseline(baseline_path, Baseline.from_findings(result.findings))
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(result))
    return exit_code(result)


if __name__ == "__main__":
    sys.exit(main())
