"""Seeded schedule-permutation race detector for the parallel engine.

The worker-pool engine (:mod:`repro.cluster.parallel`) promises ledgers,
network statistics, and fragment contents **bit-identical** to the serial
engines, for every worker count.  That promise only holds if the four
coordinator-side order decisions in ``_run_forked`` — envelope send
order, per-envelope refresh-block order, reply drain order, and merge
fold order — genuinely commute.  The engine exposes them through the
``ParallelEngine.schedule`` hook; this module drives that hook.

The detector runs one workload per configuration (maintenance method ×
eager/deferred × worker count) three ways:

* **serial** (``workers=None``) — the ground truth for values;
* **golden** (workers, identity schedule) — the ground truth for the
  *canonical cell stream*: the coordinator ledger's cells in insertion
  order.  Cell values are commutative sums, so a merge-order bug can
  leave every total intact while changing which fold created each cell
  first; the stream is the only fingerprint component that sees it.
* **permuted** (workers, :class:`SeededSchedule`) — hundreds of distinct
  interleavings, each derived deterministically from a seed.

Any divergence is shrunk with delta debugging (:func:`ddmin`) over the
schedule's recorded non-identity permutation events, replayed through
:class:`ReplaySchedule`, down to a minimal event-reorder witness —
typically a single "superstep N reordered its merge fold" line.

Nothing here can change *modeled* charges: the hooks reorder work the
coordinator has already computed (routing, probing, and charging all
happen upstream of every permutation point), which is exactly why
bit-identical output is the correct assertion rather than mere
value-equality (see DESIGN.md § 16).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: A permutation event: (kind, key, permutation) — ``items[perm[i]]`` was
#: served in position ``i``.  ``key`` is ``(superstep, worker_id)`` with
#: ``worker_id = -1`` for the coordinator-global decisions.
Event = Tuple[str, Tuple[int, int], Tuple[int, ...]]

#: The four decision kinds ``ParallelEngine._run_forked`` exposes.
KINDS = ("envelope", "refresh", "reply", "merge")


class SeededSchedule:
    """Deterministic schedule: every decision permuted by a seed-derived
    shuffle, with non-identity choices recorded for replay/shrinking."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.events: List[Event] = []

    def permute(
        self, kind: str, key: Tuple[int, int], items: List
    ) -> List:
        n = len(items)
        if n < 2:
            return items
        rng = random.Random(f"{self.seed}:{kind}:{key[0]}:{key[1]}:{n}")
        perm = list(range(n))
        rng.shuffle(perm)
        if perm != sorted(perm):
            self.events.append((kind, key, tuple(perm)))
            return [items[i] for i in perm]
        return items

    def signature(self) -> Tuple[Event, ...]:
        """The schedule's identity: its non-trivial reorderings."""
        return tuple(self.events)


class ReplaySchedule:
    """Replay a subset of recorded events; everything else is identity.

    Decisions are keyed by ``(kind, key)`` — not by a global counter — so
    dropping some events cannot desynchronise the rest.  A recorded
    permutation is applied only when the live item count still matches;
    a shrunken schedule that changed the engine's behaviour upstream
    degrades to identity instead of corrupting the run.
    """

    def __init__(self, events: Iterable[Event]) -> None:
        self.decisions: Dict[Tuple[str, Tuple[int, int]], Tuple[int, ...]] = {
            (kind, key): perm for kind, key, perm in events
        }

    def permute(
        self, kind: str, key: Tuple[int, int], items: List
    ) -> List:
        perm = self.decisions.get((kind, key))
        if perm is None or len(perm) != len(items):
            return items
        return [items[i] for i in perm]


# ------------------------------------------------------------ fingerprints


@dataclass(frozen=True)
class Fingerprint:
    """Everything the equivalence promise covers, hashable-comparable.

    ``values`` must match the serial run; ``cell_stream`` (coordinator
    ledger cells in insertion order) must match the identity-schedule
    parallel golden — serial runs charge in statement order and never
    absorb, so their stream is not comparable.
    """

    cells: Tuple[Tuple[Tuple[int, str, str], float], ...]
    network: Tuple
    fragments: Tuple
    views: Tuple[Tuple[str, int], ...]
    cell_stream: Tuple[Tuple[int, str, str], ...]

    def values(self) -> Tuple:
        return (self.cells, self.network, self.fragments, self.views)

    def diff_label(self, other: "Fingerprint") -> Optional[str]:
        """Which component diverges (values vs ``other``), or ``None``."""
        for label in ("cells", "network", "fragments", "views"):
            if getattr(self, label) != getattr(other, label):
                return label
        return None


def _cell_key(cell: Tuple) -> Tuple[int, str, str]:
    node, op, tag = cell
    return (node, op.name, tag.name)


def fingerprint(cluster) -> Fingerprint:
    """Capture a cluster's observable state for bit-identity comparison."""
    raw = cluster.ledger._cells
    cells = tuple(
        sorted((_cell_key(cell), value) for cell, value in raw.items())
    )
    stream = tuple(_cell_key(cell) for cell in raw)
    stats = cluster.network.stats
    network = (
        stats.messages,
        stats.local_deliveries,
        tuple(sorted(stats.by_link.items())),
        stats.drops,
        stats.duplicates,
        stats.retries,
        stats.backoff_slots,
    )
    names = sorted({"A", "B", "JV", *cluster.catalog.auxiliaries})
    fragments = tuple(
        (name, node.node_id, tuple(node.scan(name)))
        for name in names
        for node in cluster.nodes
        if node.has_fragment(name)
    )
    views = tuple(
        sorted(
            (view_name, info.row_count)
            for view_name, info in cluster.catalog.views.items()
        )
    )
    return Fingerprint(cells, network, fragments, views, stream)


# ---------------------------------------------------------------- workload


def _script(seed: int, steps: int) -> List[Tuple[str, str, List]]:
    """A deterministic mixed insert/delete/update script over A and B.

    Statements are deliberately wide (multi-row, spread across the key
    space) so most supersteps engage several workers — a single-row
    statement gives every order decision a one-element list to permute,
    which explores nothing.
    """
    rng = random.Random(seed)
    ops: List[Tuple[str, str, List]] = []
    serial = 0
    live: Dict[str, List[Tuple[int, int, int]]] = {"A": [], "B": []}
    for _ in range(steps):
        kind = rng.choice(("multi", "multi", "multi", "del", "upd"))
        rel = rng.choice(("A", "A", "B"))
        if kind == "multi":
            count = rng.randrange(4, 10)
            rows = []
            for _ in range(count):
                rows.append((1000 + serial, rng.randrange(7), serial))
                serial += 1
            live[rel].extend(rows)
            ops.append(("insert", rel, rows))
        elif kind == "del" and live[rel]:
            row = live[rel].pop(rng.randrange(len(live[rel])))
            ops.append(("delete", rel, [row]))
        elif kind == "upd" and live[rel]:
            old = live[rel].pop(rng.randrange(len(live[rel])))
            new = (1000 + serial, rng.randrange(7), serial)
            serial += 1
            live[rel].append(new)
            ops.append(("update", rel, [(old, new)]))
    return ops


def _build(method: str, workers: Optional[int], num_nodes: int):
    from .. import Cluster, HashPartitioning, Schema, two_way_view

    cluster = Cluster(num_nodes=num_nodes, workers=workers)
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    cluster.insert("B", [(i, i % 5, f"f{i}") for i in range(20)])
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d", partitioning=HashPartitioning("e")),
        method=method,
    )
    return cluster


def run_config(
    method: str,
    mode: str,
    workers: Optional[int],
    schedule=None,
    steps: int = 14,
    num_nodes: int = 4,
    script_seed: int = 7,
) -> Fingerprint:
    """Build a cluster, drive one scripted workload under ``schedule``,
    and return its fingerprint.  ``mode`` is ``"eager"`` or ``"deferred"``
    (deferred wraps JV in a netting queue and refreshes mid-script)."""
    from ..core.deferred import defer_view

    cluster = _build(method, workers, num_nodes)
    try:
        maintainer = None
        if mode == "deferred":
            maintainer = defer_view(cluster, "JV", flush_threshold=None)
        if workers is not None and schedule is not None:
            engine = cluster._parallel_start()
            if engine is None:
                raise RuntimeError(
                    "parallel engine unavailable (fork not supported?)"
                )
            engine.schedule = schedule
        ops = _script(script_seed, steps)
        for index, (kind, rel, payload) in enumerate(ops):
            getattr(cluster, kind)(rel, payload)
            if maintainer is not None and index % 5 == 4:
                maintainer.refresh()
        if maintainer is not None:
            maintainer.refresh()
        return fingerprint(cluster)
    finally:
        cluster.close()


# ---------------------------------------------------------------- detector


@dataclass
class Divergence:
    """One schedule whose run broke bit-identity, plus its shrunk witness."""

    method: str
    mode: str
    workers: int
    seed: int
    component: str            # which fingerprint component diverged
    events: List[Event]       # full recorded schedule
    witness: List[Event]      # ddmin-minimal subset still diverging

    def describe(self) -> str:
        lines = [
            f"{self.method}/{self.mode} workers={self.workers} "
            f"seed={self.seed}: {self.component} diverge; "
            f"minimal witness ({len(self.witness)} of "
            f"{len(self.events)} events):"
        ]
        for kind, key, perm in self.witness:
            where = f"superstep {key[0]}"
            if key[1] >= 0:
                where += f", worker {key[1]}"
            lines.append(f"  - {kind} order at {where} permuted to {perm}")
        return "\n".join(lines)


@dataclass
class DetectorReport:
    schedules_run: int = 0
    distinct_schedules: int = 0
    configs: List[Tuple[str, str, int]] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        head = (
            f"interleave: {self.schedules_run} schedules "
            f"({self.distinct_schedules} distinct) across "
            f"{len(self.configs)} configs — "
            + ("all bit-identical" if self.ok else
               f"{len(self.divergences)} DIVERGENT")
        )
        return "\n\n".join([head, *(d.describe() for d in self.divergences)])


def ddmin(
    events: Sequence[Event], still_fails: Callable[[List[Event]], bool]
) -> List[Event]:
    """Zeller's delta debugging: a 1-minimal sublist of ``events`` for
    which ``still_fails`` holds.  ``still_fails(events)`` must be true."""
    current = list(events)
    granularity = 2
    while len(current) >= 2:
        size = len(current)
        chunk = max(1, size // granularity)
        reduced = False
        for start in range(0, size, chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= size:
                break
            granularity = min(size, granularity * 2)
    if len(current) == 1 and not still_fails(current):
        return list(events)
    return current


def _divergence_component(
    run: Fingerprint, serial: Fingerprint, golden: Fingerprint
) -> Optional[str]:
    label = run.diff_label(serial)
    if label is not None:
        return label
    if run.cell_stream != golden.cell_stream:
        return "cell_stream"
    return None


def run_detector(
    methods: Sequence[str] = ("naive", "auxiliary", "global_index"),
    modes: Sequence[str] = ("eager", "deferred"),
    workers: Sequence[int] = (2, 4),
    seeds: Sequence[int] = tuple(range(17)),
    steps: int = 14,
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> DetectorReport:
    """Explore ``len(methods) × len(modes) × len(workers) × len(seeds)``
    schedules, asserting bit-identity, shrinking any divergence."""
    report = DetectorReport()
    signatures = set()
    for method in methods:
        for mode in modes:
            serial = run_config(method, mode, None, steps=steps)
            for count in workers:
                report.configs.append((method, mode, count))
                golden = run_config(method, mode, count, steps=steps)
                label = golden.diff_label(serial)
                if label is not None:
                    # The engine itself is broken before any permutation.
                    report.divergences.append(
                        Divergence(method, mode, count, -1, label, [], [])
                    )
                    continue
                for seed in seeds:
                    schedule = SeededSchedule(seed)
                    run = run_config(
                        method, mode, count, schedule, steps=steps
                    )
                    report.schedules_run += 1
                    signatures.add((method, mode, count, schedule.signature()))
                    component = _divergence_component(run, serial, golden)
                    if component is None:
                        continue
                    events = list(schedule.events)
                    witness = events
                    if shrink and events:

                        def still_fails(subset: List[Event]) -> bool:
                            replay = run_config(
                                method, mode, count,
                                ReplaySchedule(subset), steps=steps,
                            )
                            return (
                                _divergence_component(replay, serial, golden)
                                is not None
                            )

                        witness = ddmin(events, still_fails)
                    divergence = Divergence(
                        method, mode, count, seed, component, events, witness
                    )
                    report.divergences.append(divergence)
                    if log is not None:
                        log(divergence.describe())
                if log is not None:
                    log(
                        f"{method}/{mode} workers={count}: "
                        f"{len(seeds)} schedules checked"
                    )
    report.distinct_schedules = len(signatures)
    return report
