"""The analysis engine: file discovery, rule dispatch, noqa, baseline.

``analyze_paths`` is the one entry point (the CLI and the tests both call
it).  Per file it parses the AST once, extracts ``# repro:`` comments with
:mod:`tokenize`, builds one :class:`RuleContext`, and runs every enabled
rule in id order, so reports are deterministic.  Framework-level problems
(syntax errors, malformed suppression comments) are reported under the
reserved id ``REP000`` — they cannot be noqa'd, because a file that cannot
be parsed cannot be trusted to suppress anything.

Paths are **module-relative**: rules address files as
``cluster/network.py``, never by filesystem location.  Discovery anchors
at the last ``repro`` component of each file's path when present (the real
package), else at the analysis root (the fixture trees the tests build).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline
from .findings import AnalysisResult, Finding, fingerprint_findings
from .rules import RULES, RuleInfo
from .rules.base import RuleContext, compute_scopes
from .suppressions import parse_suppressions

#: Directories never analyzed (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def discover_files(targets: Sequence[str]) -> List[Tuple[str, str]]:
    """Resolve ``targets`` (files or directories) to a sorted list of
    ``(absolute_path, module_relative_path)`` pairs."""
    out: Dict[str, str] = {}
    for target in targets:
        target = os.path.abspath(target)
        if os.path.isfile(target):
            if target.endswith(".py"):
                out[target] = _module_relative(target, os.path.dirname(target))
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    absolute = os.path.join(dirpath, filename)
                    out[absolute] = _module_relative(absolute, target)
    return sorted(out.items())


def _module_relative(absolute: str, root: str) -> str:
    """Path relative to the ``repro`` package when the file lives in one,
    else relative to the analysis root."""
    parts = absolute.split(os.sep)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        relative = parts[anchor + 1 :]
        if relative:
            return "/".join(relative)
    return os.path.relpath(absolute, root).replace(os.sep, "/")


def analyze_paths(
    targets: Sequence[str],
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Iterable[str]] = None,
    flow: bool = False,
    contexts_out: Optional[Dict[str, RuleContext]] = None,
) -> AnalysisResult:
    """Run every enabled rule over ``targets`` and fold in the baseline.

    ``flow=True`` additionally builds the project call graph and runs the
    interprocedural rules (REP007–REP009, :mod:`repro.analysis.flow`) over
    the same parsed files; their findings share the fingerprint scheme,
    the noqa machinery, and the baseline.  ``contexts_out`` (the audit's
    hook) receives every file's :class:`RuleContext`, whose suppression
    objects carry the use-records accumulated by this run.
    """
    flow_only: Optional[List[str]] = None
    if flow:
        from .flow import FLOW_RULES

        if only_rules is not None:
            wanted = {r for r in only_rules}
            unknown = wanted - set(RULES) - set(FLOW_RULES)
            if unknown:
                raise ValueError(f"unknown rule ids: {sorted(unknown)}")
            flow_only = sorted(wanted & set(FLOW_RULES))
            only_rules = sorted(wanted - set(FLOW_RULES))
    enabled = _enabled_rules(only_rules)
    result = AnalysisResult()
    raw: List[Finding] = []
    source_lines: Dict[str, List[str]] = {}
    contexts: Dict[str, RuleContext] = {}
    for absolute, relative in discover_files(targets):
        result.files_analyzed += 1
        file_findings, suppressed, lines, context = _analyze_file(
            absolute, relative, enabled
        )
        raw.extend(file_findings)
        result.suppressed += suppressed
        source_lines[relative] = lines
        if context is not None:
            contexts[relative] = context
    if flow:
        from .flow import run_flow_rules

        for finding in run_flow_rules(contexts, flow_only):
            context = contexts.get(finding.path)
            if context is not None and context.suppressions.is_noqa(
                finding.rule, finding.line
            ):
                result.suppressed += 1
            else:
                raw.append(finding)
    if contexts_out is not None:
        contexts_out.update(contexts)
    fingerprinted = fingerprint_findings(raw, source_lines)
    if baseline is not None:
        kept: List[Finding] = []
        matched: Set[str] = set()
        for finding in fingerprinted:
            if baseline.covers(finding.fingerprint):
                matched.add(finding.fingerprint)
                result.baselined += 1
            else:
                kept.append(finding)
        result.stale_baseline = sorted(baseline.fingerprints - matched)
        fingerprinted = kept
    result.findings = sorted(
        fingerprinted, key=lambda f: (f.path, f.line, f.column, f.rule)
    )
    return result


def _enabled_rules(only_rules: Optional[Iterable[str]]) -> List[RuleInfo]:
    if only_rules is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    wanted = set(only_rules)
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    return [RULES[rule_id] for rule_id in sorted(wanted)]


def _analyze_file(
    absolute: str, relative: str, rules: List[RuleInfo]
) -> Tuple[List[Finding], int, List[str], Optional[RuleContext]]:
    with open(absolute, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=absolute)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule="REP000",
                    path=relative,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
            lines,
            None,
        )
    suppressions = parse_suppressions(source)
    findings: List[Finding] = [
        Finding(
            rule="REP000",
            path=relative,
            line=line,
            column=0,
            message=message,
        )
        for line, message in suppressions.errors
    ]
    context = RuleContext(
        path=relative,
        source=source,
        tree=tree,
        lines=lines,
        suppressions=suppressions,
        scopes=compute_scopes(tree),
    )
    suppressed = 0
    for info in rules:
        for finding in info.fn(context):
            if suppressions.is_noqa(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed, lines, context
