"""AST-derived project call graph for the interprocedural flow rules.

Builds one graph over every analyzed file: nodes are function and method
definitions (module-qualified, e.g. ``cluster.parallel.ParallelEngine.
run_ops``), edges are call sites.  Resolution is *module-qualified and
deliberately conservative* — no type inference, no values:

* ``name(...)`` resolves through the enclosing function's nested defs,
  then the module's own defs, then its imports (relative and absolute
  ``repro.*`` imports both normalize to the module-relative namespace the
  engine uses, and one level of ``__init__`` re-export is followed);
* ``self.meth(...)`` / ``cls.meth(...)`` resolves through the enclosing
  class and its project-resolvable bases (``via="self"``);
* ``mod.func(...)`` / ``Class.meth(...)`` resolve through the import
  table (``via="direct"``);
* any other ``obj.meth(...)`` falls back to linking **every** project
  ``def meth`` (``via="name"``) — a deterministic over-approximation that
  keeps reachability sound for duck-typed receivers at the price of
  spurious edges, which the flow rules tolerate by demanding a
  justification *on the path*, not on the node.

Calls through values (callbacks, ``target=fn`` references, dispatch
tables) produce **no** edge — a documented limit (DESIGN.md § 16); the
engine's one load-bearing case (``Process(target=_worker_main)``) is
covered by the interleave detector instead.

Constructor calls ``Class(...)`` link to ``Class.__init__`` when the
project defines one.  The DOT export (``--dot``) renders ``name`` edges
dashed so the over-approximation is visible when eyeballing the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


def module_name(relative: str) -> str:
    """``cluster/network.py`` -> ``cluster.network``; package ``__init__``
    files name the package itself (``costs/__init__.py`` -> ``costs``)."""
    trimmed = relative[:-3] if relative.endswith(".py") else relative
    parts = [part for part in trimmed.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function/method definition node of the graph."""

    qualname: str                 # "cluster.parallel.ParallelEngine.run_ops"
    path: str                     # module-relative file, "cluster/parallel.py"
    module: str                   # "cluster.parallel"
    name: str                     # "run_ops"
    cls: Optional[str]            # enclosing class name, None for functions
    lineno: int
    end_lineno: int
    node: ast.AST = field(repr=False)

    def display(self) -> str:
        """Human form for witnesses: ``Cluster.insert (cluster/cluster.py:582)``."""
        owner = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{owner} ({self.path}:{self.lineno})"

    def short(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` calls ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int          # call-site line in the caller's file
    via: str           # "direct" | "self" | "name"


@dataclass
class _Class:
    name: str
    module: str
    bases: List[str]                      # base expression texts
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class _Module:
    name: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)   # alias -> dotted
    functions: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: Dict[str, _Class] = field(default_factory=dict)


class CallGraph:
    """The project call graph: function table + forward/reverse edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges_from: Dict[str, List[CallEdge]] = {}
        self.edges_to: Dict[str, List[CallEdge]] = {}
        #: every qualname sharing a bare method/function name (the
        #: ``via="name"`` fallback table)
        self.by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------ queries

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges_from.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        return self.edges_to.get(qualname, [])

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def reachable_from(
        self, entries: Iterable[str], via: Optional[Set[str]] = None
    ) -> Set[str]:
        """Every function reachable from ``entries`` along call edges
        (optionally restricted to edge kinds in ``via``)."""
        seen: Set[str] = set()
        stack = sorted(set(entries) & set(self.functions))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.edges_from.get(current, []):
                if via is not None and edge.via not in via:
                    continue
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def find_path(
        self, sources: Iterable[str], target: str
    ) -> Optional[List[CallEdge]]:
        """A shortest entry→target edge path (BFS, deterministic order),
        or ``None`` when unreachable."""
        sources = sorted(set(sources) & set(self.functions))
        if target not in self.functions:
            return None
        if target in sources:
            return []
        parents: Dict[str, CallEdge] = {}
        frontier = list(sources)
        seen = set(sources)
        while frontier:
            nxt: List[str] = []
            for current in frontier:
                for edge in self.edges_from.get(current, []):
                    if edge.callee in seen:
                        continue
                    seen.add(edge.callee)
                    parents[edge.callee] = edge
                    if edge.callee == target:
                        path: List[CallEdge] = []
                        cursor = target
                        while cursor not in sources:
                            edge = parents[cursor]
                            path.append(edge)
                            cursor = edge.caller
                        return list(reversed(path))
                    nxt.append(edge.callee)
            frontier = nxt
        return None

    # -------------------------------------------------------------- export

    def to_dot(self) -> str:
        """GraphViz rendering: solid edges are resolved, dashed edges are
        the by-name fallback over-approximation."""
        lines = [
            "digraph repro_callgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=9, fontname="monospace"];',
        ]
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            label = f"{info.short()}\\n{info.path}:{info.lineno}"
            lines.append(f'  "{qualname}" [label="{label}"];')
        seen: Set[Tuple[str, str, str]] = set()
        for caller in sorted(self.edges_from):
            for edge in self.edges_from[caller]:
                key = (edge.caller, edge.callee, edge.via)
                if key in seen:
                    continue
                seen.add(key)
                style = ' [style=dashed, color=gray50]' if edge.via == "name" else ""
                lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ================================================================ builder


def build_callgraph(
    files: Sequence[Tuple[str, ast.Module]]
) -> CallGraph:
    """Build the graph from ``(module_relative_path, parsed tree)`` pairs.

    Files that failed to parse are simply absent (the engine reports them
    as REP000 separately)."""
    builder = _Builder()
    for path, tree in files:
        builder.collect(path, tree)
    builder.link()
    return builder.graph


class _Builder:
    def __init__(self) -> None:
        self.graph = CallGraph()
        self.modules: Dict[str, _Module] = {}
        #: (function, module, enclosing class, names of sibling nested defs
        #: per enclosing function chain)
        self._pending: List[Tuple[FunctionInfo, _Module, Optional[_Class], Dict[str, str]]] = []

    # ----------------------------------------------------------- phase one

    def collect(self, path: str, tree: ast.Module) -> None:
        module = _Module(name=module_name(path), path=path)
        self.modules[module.name] = module
        for stmt in tree.body:
            self._collect_stmt(stmt, module, cls=None, prefix=module.name,
                               locals_out=None)

    def _collect_stmt(
        self,
        stmt: ast.stmt,
        module: _Module,
        cls: Optional[_Class],
        prefix: str,
        locals_out: Optional[Dict[str, str]],
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                module.imports[alias.asname or alias.name.split(".")[0]] = (
                    _strip_root(alias.name)
                )
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(module, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                module.imports[alias.asname or alias.name] = target
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{stmt.name}"
            info = FunctionInfo(
                qualname=qualname,
                path=module.path,
                module=module.name,
                name=stmt.name,
                cls=cls.name if cls else None,
                lineno=stmt.lineno,
                end_lineno=getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno,
                node=stmt,
            )
            self.graph.functions[qualname] = info
            self.graph.by_name.setdefault(stmt.name, []).append(qualname)
            if cls is not None and prefix == f"{module.name}.{cls.name}":
                cls.methods[stmt.name] = qualname
            elif cls is None and prefix == module.name:
                module.functions[stmt.name] = qualname
            if locals_out is not None:
                locals_out[stmt.name] = qualname
            nested: Dict[str, str] = {}
            for inner in stmt.body:
                self._collect_stmt(inner, module, cls, qualname, nested)
            self._pending.append((info, module, cls, nested))
        elif isinstance(stmt, ast.ClassDef):
            if prefix == module.name:  # nested classes: methods only by name
                klass = _Class(
                    name=stmt.name,
                    module=module.name,
                    bases=[_expr_text(base) for base in stmt.bases],
                )
                module.classes[stmt.name] = klass
                for inner in stmt.body:
                    self._collect_stmt(
                        inner, module, klass, f"{module.name}.{stmt.name}", None
                    )
            else:
                for inner in stmt.body:
                    self._collect_stmt(inner, module, cls, prefix, None)
        elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            # TYPE_CHECKING guards and conditional imports still register.
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    self._collect_stmt(inner, module, cls, prefix, locals_out)

    def _import_base(self, module: _Module, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return _strip_root(stmt.module or "")
        is_pkg = module.path.endswith("__init__.py")
        pkg_parts = module.name.split(".") if module.name else []
        if not is_pkg and pkg_parts:
            pkg_parts = pkg_parts[:-1]
        drop = stmt.level - 1
        if drop:
            pkg_parts = pkg_parts[:-drop] if drop <= len(pkg_parts) else []
        base = ".".join(pkg_parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    # ----------------------------------------------------------- phase two

    def link(self) -> None:
        for info, module, cls, nested in self._pending:
            for call in _own_calls(info.node):
                edges = self._resolve_call(call, info, module, cls, nested)
                for callee, via in edges:
                    edge = CallEdge(
                        caller=info.qualname, callee=callee,
                        line=call.lineno, via=via,
                    )
                    self.graph.edges_from.setdefault(info.qualname, []).append(edge)
                    self.graph.edges_to.setdefault(callee, []).append(edge)
        for edges in self.graph.edges_from.values():
            edges.sort(key=lambda e: (e.line, e.callee, e.via))
        for edges in self.graph.edges_to.values():
            edges.sort(key=lambda e: (e.caller, e.line, e.via))

    def _resolve_call(
        self,
        call: ast.Call,
        info: FunctionInfo,
        module: _Module,
        cls: Optional[_Class],
        nested: Dict[str, str],
    ) -> List[Tuple[str, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module, nested)
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is None:
                # computed receiver, e.g. self.nodes[i].insert(...):
                # fall back on the method name alone
                return self._resolve_by_name(func.attr)
            return self._resolve_chain(chain, module, cls)
        return []

    def _resolve_name(
        self, name: str, module: _Module, nested: Dict[str, str]
    ) -> List[Tuple[str, str]]:
        if name in nested:
            return [(nested[name], "direct")]
        if name in module.functions:
            return [(module.functions[name], "direct")]
        if name in module.classes:
            init = module.classes[name].methods.get("__init__")
            return [(init, "direct")] if init else []
        if name in module.imports:
            resolved = self._resolve_symbol(module.imports[name], set())
            if resolved is not None:
                kind, value = resolved
                if kind == "func":
                    return [(value, "direct")]
                if kind == "class":
                    init = value.methods.get("__init__")
                    return [(init, "direct")] if init else []
        return []

    def _resolve_chain(
        self, chain: List[str], module: _Module, cls: Optional[_Class]
    ) -> List[Tuple[str, str]]:
        base, attrs = chain[0], chain[1:]
        method = attrs[-1]
        if base in ("self", "cls") and cls is not None and len(attrs) == 1:
            found = self._resolve_method(cls, method, set())
            if found is not None:
                return [(found, "self")]
            return self._resolve_by_name(method)
        # Walk the import/module/class tables as far as the chain allows.
        target: Optional[Tuple[str, object]] = None
        if base in module.imports:
            target = self._resolve_symbol(module.imports[base], set())
            if target is None and len(attrs) >= 1:
                # imported *module* alias: resolve attr in that module
                target = self._resolve_symbol(
                    f"{module.imports[base]}.{attrs[0]}", set()
                )
                attrs = attrs[1:]
                if not attrs:
                    if target is not None and target[0] == "func":
                        return [(target[1], "direct")]
                    if target is not None and target[0] == "class":
                        init = target[1].methods.get("__init__")
                        return [(init, "direct")] if init else []
                    return self._resolve_by_name(method)
        elif base in module.classes:
            target = ("class", module.classes[base])
        if target is not None and target[0] == "class" and len(attrs) == 1:
            found = self._resolve_method(target[1], method, set())
            if found is not None:
                return [(found, "direct")]
        return self._resolve_by_name(method)

    def _resolve_by_name(self, method: str) -> List[Tuple[str, str]]:
        candidates = self.graph.by_name.get(method, [])
        return [(qualname, "name") for qualname in sorted(candidates)]

    def _resolve_method(
        self, klass: _Class, method: str, seen: Set[str]
    ) -> Optional[str]:
        """MRO-ish lookup: the class, then project-resolvable bases."""
        key = f"{klass.module}.{klass.name}"
        if key in seen:
            return None
        seen.add(key)
        if method in klass.methods:
            return klass.methods[method]
        mod = self.modules.get(klass.module)
        for base_text in klass.bases:
            base_name = base_text.split(".")[-1]
            base_cls: Optional[_Class] = None
            if mod is not None and base_name in mod.classes:
                base_cls = mod.classes[base_name]
            elif mod is not None and base_name in mod.imports:
                resolved = self._resolve_symbol(mod.imports[base_name], set())
                if resolved is not None and resolved[0] == "class":
                    base_cls = resolved[1]  # type: ignore[assignment]
            if base_cls is not None:
                found = self._resolve_method(base_cls, method, seen)
                if found is not None:
                    return found
        return None

    def _resolve_symbol(
        self, dotted_target: str, seen: Set[str]
    ) -> Optional[Tuple[str, object]]:
        """Resolve a dotted import target to ``("func", qualname)`` or
        ``("class", _Class)``, following one re-export hop per level."""
        if dotted_target in seen:
            return None
        seen.add(dotted_target)
        if "." not in dotted_target:
            return None
        mod_name, _, symbol = dotted_target.rpartition(".")
        module = self.modules.get(mod_name)
        if module is None:
            return None
        if symbol in module.functions:
            return ("func", module.functions[symbol])
        if symbol in module.classes:
            return ("class", module.classes[symbol])
        if symbol in module.imports:  # re-export (costs/__init__.py style)
            return self._resolve_symbol(module.imports[symbol], seen)
        return None


# ================================================================ helpers


def _strip_root(dotted_target: str) -> str:
    """Normalize absolute ``repro.*`` imports to the module-relative
    namespace (``repro.costs.ledger`` -> ``costs.ledger``)."""
    if dotted_target == "repro":
        return ""
    if dotted_target.startswith("repro."):
        return dotted_target[len("repro."):]
    return dotted_target


def _attr_chain(node: ast.Attribute) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"] for pure Name/Attribute chains."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers real exprs
        return "<expr>"


def _own_calls(fn: ast.AST) -> Iterable[ast.Call]:
    """Call nodes lexically inside ``fn`` but not inside a nested def or
    class (those belong to their own graph node)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
