"""Findings: what a rule reports, and how a finding is fingerprinted.

A :class:`Finding` pins one invariant violation to a source location.  Its
``fingerprint`` is deliberately *line-number free*: it hashes the rule id,
the module-relative path, the normalized text of the offending line, and
the occurrence index among identical lines in the file.  Adding code above
a baselined finding therefore does not expire it, while editing the
offending line (presumably to fix it) does — exactly the churn behaviour a
baseline file needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            # e.g. "REP001"
    path: str            # module-relative path, e.g. "cluster/network.py"
    line: int            # 1-based line number
    column: int          # 0-based column offset
    message: str
    snippet: str = ""    # the stripped source line, for reports
    fingerprint: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Finding":
        return Finding(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            column=int(payload.get("column", 0)),  # type: ignore[arg-type]
            message=str(payload.get("message", "")),
            snippet=str(payload.get("snippet", "")),
            fingerprint=str(payload.get("fingerprint", "")),
        )


def _normalize(line: str) -> str:
    """Whitespace-insensitive form of a source line."""
    return " ".join(line.split())


def fingerprint_findings(
    findings: List[Finding], source_lines: Dict[str, List[str]]
) -> List[Finding]:
    """Return ``findings`` with stable fingerprints filled in.

    ``source_lines`` maps each path to its source split into lines.  The
    occurrence index disambiguates several identical lines violating the
    same rule in one file (fingerprints stay stable under reordering of
    unrelated code).
    """
    seen: Dict[str, int] = {}
    out: List[Finding] = []
    for finding in findings:
        lines = source_lines.get(finding.path, [])
        text = (
            _normalize(lines[finding.line - 1])
            if 0 < finding.line <= len(lines)
            else ""
        )
        base = f"{finding.rule}:{finding.path}:{text}"
        index = seen.get(base, 0)
        seen[base] = index + 1
        digest = hashlib.sha256(f"{base}:{index}".encode("utf-8")).hexdigest()[:16]
        out.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                column=finding.column,
                message=finding.message,
                snippet=text,
                fingerprint=digest,
            )
        )
    return out


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0          # findings silenced by noqa/annotations
    baselined: int = 0           # findings silenced by the baseline file
    stale_baseline: List[str] = field(default_factory=list)  # unmatched entries
    files_analyzed: int = 0
