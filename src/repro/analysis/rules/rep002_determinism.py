"""REP002 — cost paths must be deterministic.

Every engine variant (reference / batched / parallel) must produce
bit-identical ledgers, and worker merges must be reproducible across
processes.  That dies the moment a cost path consults wall-clock time, an
unseeded RNG, or iterates a set in hash order.  Three checks, scoped to
the modeled engine (``core/``, ``cluster/``, ``costs/``, ``storage/``,
``joins/``, ``model/``, ``query/``, ``faults/`` — benches and the
observability clocks are exempt by construction):

1. calls to ``time.time``/``perf_counter``/``monotonic``,
   ``datetime.now``/``utcnow``/``today``, ``os.urandom``, ``uuid.uuid4``;
   telemetry that genuinely needs a clock (worker busy-time) annotates
   ``# repro: wall-clock=<reason>``;
2. module-level ``random.<fn>()`` (the shared unseeded RNG) and
   zero-argument ``random.Random()``/``random.SystemRandom`` — only
   explicitly seeded generators are reproducible;
3. ``for``/comprehension iteration directly over a set expression
   (literal, ``set(...)``, set ops like ``set(a) | set(b)``) that is not
   wrapped in ``sorted(...)`` — set order is salted per process, so
   anything derived from the walk (merged ledger deltas, report rows)
   differs between runs.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..findings import Finding
from . import register
from .base import RuleContext, dotted, is_set_expression

SCOPE = (
    "core/", "cluster/", "costs/", "storage/", "joins/", "model/",
    "query/", "faults/",
)

BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "wall-clock time",
    "time.monotonic_ns": "wall-clock time",
    "time.perf_counter": "wall-clock time",
    "time.perf_counter_ns": "wall-clock time",
    "time.process_time": "CPU-clock time",
    "time.process_time_ns": "CPU-clock time",
    "datetime.now": "wall-clock time",
    "datetime.utcnow": "wall-clock time",
    "datetime.today": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "random UUIDs",
}

SEEDED_RNG_FACTORIES = {"Random"}
RANDOM_MODULE_BAN_EXEMPT = SEEDED_RNG_FACTORIES | {"seed"}


def _banned_call(node: ast.Call) -> Optional[str]:
    name = dotted(node.func)
    if name is None:
        return None
    if name in BANNED_CALLS:
        return BANNED_CALLS[name]
    parts = name.split(".")
    if parts[0] == "random":
        if len(parts) == 2 and parts[1] not in RANDOM_MODULE_BAN_EXEMPT:
            return "the shared unseeded RNG"
        if (
            len(parts) == 2
            and parts[1] in SEEDED_RNG_FACTORIES
            and not node.args
            and not node.keywords
        ):
            return "an unseeded RNG (pass an explicit seed)"
        if parts[-1] == "SystemRandom":
            return "OS entropy"
    return None


@register(
    "REP002",
    "cost paths may not consult clocks, unseeded RNGs, or raw set order",
    annotation="wall-clock",
)
def check_determinism(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE):
        return []
    findings: List[Finding] = []

    def report(line: int, column: int, message: str) -> None:
        findings.append(
            Finding(
                rule="REP002",
                path=ctx.path,
                line=line,
                column=column,
                message=message,
            )
        )

    for node in ctx.walk():
        if isinstance(node, ast.Call):
            why = _banned_call(node)
            if why is not None and not ctx.annotated("wall-clock", node.lineno):
                report(
                    node.lineno,
                    node.col_offset,
                    f"cost path consults {why}: engines could no longer be "
                    "bit-identical; annotate telemetry with "
                    "'# repro: wall-clock=<reason>'",
                )
        iterables: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if is_set_expression(iterable) and not ctx.annotated(
                "wall-clock", iterable.lineno
            ):
                report(
                    iterable.lineno,
                    iterable.col_offset,
                    "iteration over a raw set expression: set order is "
                    "salted per process — wrap it in sorted(...) so derived "
                    "state (merged deltas, reports) is reproducible",
                )
    return findings
