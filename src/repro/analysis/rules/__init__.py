"""The rule registry.

Importing this package registers every built-in rule.  ``RULES`` maps rule
id to :class:`RuleInfo`; the engine iterates it in id order so reports are
stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from ..findings import Finding
from .base import RuleContext

RuleFn = Callable[[RuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class RuleInfo:
    rule_id: str
    summary: str
    annotation: str  # the annotation key this rule honours ("" if none)
    fn: RuleFn


RULES: Dict[str, RuleInfo] = {}


def register(rule_id: str, summary: str, annotation: str = "") -> Callable[[RuleFn], RuleFn]:
    """Decorator registering a rule function under ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = RuleInfo(rule_id, summary, annotation, fn)
        return fn

    return decorate


def rule_ids() -> List[str]:
    return sorted(RULES)


# Built-in rules register themselves on import.
from . import rep001_charged_send  # noqa: E402,F401
from . import rep002_determinism  # noqa: E402,F401
from . import rep003_obs_purity  # noqa: E402,F401
from . import rep004_cost_constants  # noqa: E402,F401
from . import rep005_envelopes  # noqa: E402,F401
from . import rep006_undo  # noqa: E402,F401
