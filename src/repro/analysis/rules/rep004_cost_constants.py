"""REP004 — no magic I/O cost constants outside the model layer.

The paper's weights (SEARCH=1, FETCH=1, INSERT=2, SEND≈0) and scenario
constants (|B|=6,400, M=100, N=10) live in ``costs/model.py`` and
``model/params.py``; every figure re-derives from them.  An engine file
that hard-codes its own ``CostParameters(insert_ios=2.0)`` — or passes a
bare ``*_ios=`` literal anywhere — forks the cost model: the figure would
keep "working" while silently disagreeing with the model layer.

Flags, outside the model layer (and outside ``bench/``, whose sensitivity
studies sweep weights *by design*):

* ``CostParameters(...)`` constructed with any numeric-literal argument;
* any call passing a numeric literal to a keyword ending in ``_ios``.

Deliberate exceptions annotate ``# repro: cost-literal=<reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from . import register
from .base import RuleContext, call_name

SCOPE = (
    "core/", "cluster/", "costs/", "storage/", "joins/", "query/",
    "faults/", "obs/", "model/",
)
#: Where cost literals are *defined* rather than smuggled.
MODEL_LAYER = ("costs/model.py", "model/params.py")


def _is_number(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_number(node.operand)
    return False


@register(
    "REP004",
    "I/O cost literals must come from the model layer, not call sites",
    annotation="cost-literal",
)
def check_cost_constants(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE) or ctx.path in MODEL_LAYER:
        return []
    findings: List[Finding] = []

    def report(node: ast.Call, message: str) -> None:
        findings.append(
            Finding(
                rule="REP004",
                path=ctx.path,
                line=node.lineno,
                column=node.col_offset,
                message=message,
            )
        )

    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        if ctx.annotated("cost-literal", node.lineno):
            continue
        if call_name(node) == "CostParameters":
            literal_args = [a for a in node.args if _is_number(a)]
            literal_kwargs = [
                k for k in node.keywords if k.arg and _is_number(k.value)
            ]
            if literal_args or literal_kwargs:
                report(
                    node,
                    "CostParameters built from literal weights outside the "
                    "model layer: import PAPER_COSTS / NETWORK_AWARE_COSTS "
                    "(or add the variant to costs/model.py), or annotate "
                    "'# repro: cost-literal=<reason>'",
                )
                continue
        for keyword in node.keywords:
            if (
                keyword.arg
                and keyword.arg.endswith("_ios")
                and _is_number(keyword.value)
            ):
                report(
                    node,
                    f"literal I/O weight '{keyword.arg}={ast.unparse(keyword.value)}' "
                    "outside the model layer; cost weights belong in "
                    "costs/model.py / model/params.py",
                )
                break
    return findings
