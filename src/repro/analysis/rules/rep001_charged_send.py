"""REP001 — every modeled network message must be charged.

Luo et al.'s cost formulas bill one SEND per cross-node message; the repo
funnels all of them through the accounting wrapper
:class:`repro.cluster.network.Network`, which charges the ledger *and*
counts the message in ``NetworkStats``.  Two ways to break that contract:

1. calling something named ``send``/``send_many``/``broadcast``/
   ``broadcast_many`` on an object that is **not** the network wrapper
   (e.g. a pipe, a socket, a hand-rolled helper) inside the modeled
   engine — the message then exists without a ledger charge;
2. charging ``Op.SEND`` directly on a ledger outside the wrapper — the
   charge then exists without a message count, silently skewing
   charged-vs-counted cross-checks.

Call sites that really are *not* modeled messages (the worker pool's IPC
pipes, whose envelopes mirror already-charged work) must say so:
``# repro: uncharged-mirror=<why this is not a modeled message>``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from . import register
from .base import RuleContext, call_name, expr_text, trailing_name

SCOPE = ("core/", "cluster/", "faults/", "query/")
#: The wrapper itself is the one legitimate home of SEND charging.
WRAPPER = "cluster/network.py"
SEND_NAMES = {"send", "send_many", "broadcast", "broadcast_many"}


@register(
    "REP001",
    "network sends must flow through the charging Network wrapper",
    annotation="uncharged-mirror",
)
def check_charged_send(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE) or ctx.path == WRAPPER:
        return []
    findings: List[Finding] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name in SEND_NAMES and isinstance(node.func, ast.Attribute):
            receiver = trailing_name(node.func.value)
            if receiver == "network":
                continue  # the charging wrapper
            if ctx.annotated("uncharged-mirror", node.lineno):
                continue
            findings.append(
                Finding(
                    rule="REP001",
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=(
                        f"'{expr_text(node.func)}' looks like a network send "
                        "that bypasses the charging Network wrapper; route it "
                        "through cluster.network or annotate the site with "
                        "'# repro: uncharged-mirror=<reason>'"
                    ),
                )
            )
        elif name == "charge":
            # ledger.charge(node, Op.SEND, ...): SEND billing outside the
            # wrapper desynchronizes the ledger from NetworkStats.
            for arg in node.args:
                if (
                    isinstance(arg, ast.Attribute)
                    and arg.attr == "SEND"
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "Op"
                ):
                    if not ctx.annotated("uncharged-mirror", node.lineno):
                        findings.append(
                            Finding(
                                rule="REP001",
                                path=ctx.path,
                                line=node.lineno,
                                column=node.col_offset,
                                message=(
                                    "Op.SEND charged outside the Network "
                                    "wrapper: the message count and the "
                                    "ledger would diverge"
                                ),
                            )
                        )
                    break
    return findings
