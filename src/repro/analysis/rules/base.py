"""Rule plumbing: the per-file context handed to every rule, and helpers.

A rule is a function ``(RuleContext) -> Iterable[Finding]`` registered
with :func:`repro.analysis.rules.register`.  Rules are *syntactic and
domain-aware*: they know this repo's layout (``cluster/``, ``core/``,
``costs/``…) and its idioms (the charging ``Network`` wrapper, the
``DISABLED`` obs facade, the undo log), and they trade generality for
precision on exactly those invariants.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..suppressions import Suppressions


@dataclass
class RuleContext:
    """Everything a rule may look at for one file."""

    path: str                     # module-relative, e.g. "cluster/network.py"
    source: str
    tree: ast.Module
    lines: List[str]
    suppressions: Suppressions
    #: (start, end, def_line) spans of every function/class, for def-level
    #: annotations; filled by the engine.
    scopes: List[Tuple[int, int, int]] = field(default_factory=list)

    def in_dirs(self, prefixes: Sequence[str]) -> bool:
        return any(self.path.startswith(prefix) for prefix in prefixes)

    def annotated(self, key: str, line: int) -> bool:
        """Whether annotation ``key`` covers ``line`` — on the line itself
        or on the ``def``/``class`` line of an enclosing scope."""
        if self.suppressions.annotation_on(key, line):
            return True
        for start, end, def_line in self.scopes:
            if start <= line <= end and self.suppressions.annotation_on(
                key, def_line
            ):
                return True
        return False

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def compute_scopes(tree: ast.Module) -> List[Tuple[int, int, int]]:
    """(start, end, def_line) for every function/class definition."""
    spans: List[Tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans.append((node.lineno, end, node.lineno))
    return spans


def dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def trailing_name(node: ast.expr) -> Optional[str]:
    """The last identifier of an expression: ``x.network`` -> "network",
    ``self.nodes[i]`` -> "nodes", ``name`` -> "name"."""
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            return current.attr
        if isinstance(current, ast.Name):
            return current.id
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            return None


def expr_text(node: ast.expr) -> str:
    """Source-ish text of an expression (for messages and heuristics)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all real exprs
        return "<expr>"


def is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` syntactically produces a set/frozenset: a set
    literal, a set comprehension, a ``set(...)``/``frozenset(...)`` call,
    or a set-operator combination of such expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left) or is_set_expression(node.right)
    return False


def call_name(node: ast.Call) -> Optional[str]:
    """The called attribute/function name: ``x.y.send(...)`` -> "send"."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None
