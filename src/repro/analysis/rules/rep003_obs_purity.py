"""REP003 — the observability facade stays pure when disabled.

The equivalence suites pin that disabled-mode tracing allocates nothing
and perturbs nothing.  That holds only while engine code (a) never
constructs a live ``Tracer`` itself, (b) never mutates facade internals,
and (c) only touches the *live* halves of the facade (``obs.metrics``,
``obs.event``, ``obs.tracer``) behind an ``obs.enabled`` guard —
otherwise the shared ``DISABLED`` singleton's registry would silently
accumulate state.  ``obs.span(...)`` is exempt: the no-op tracer returns
the shared ``NOOP_SPAN`` without allocating.

Sites whose guard lives at the caller (helpers invoked only from guarded
code) annotate ``# repro: obs-guarded=<where the guard is>`` — usually on
the ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from . import register
from .base import RuleContext, expr_text, trailing_name

SCOPE = (
    "core/", "cluster/", "costs/", "storage/", "joins/", "model/",
    "query/", "faults/",
)
LIVE_ATTRS = {"metrics", "tracer", "event"}


def _is_obs_base(node: ast.expr) -> bool:
    """Whether an expression names the facade: ``obs``, ``self.obs``,
    ``cluster.obs``, ``self.cluster.obs``…"""
    return trailing_name(node) == "obs"


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._guard_depth = 0

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule="REP003",
                path=self.ctx.path,
                line=node.lineno,  # type: ignore[attr-defined]
                column=node.col_offset,  # type: ignore[attr-defined]
                message=message,
            )
        )

    # -- guards ----------------------------------------------------------

    def _test_mentions_enabled(self, test: ast.expr) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
        return False

    def visit_If(self, node: ast.If) -> None:
        guarded = self._test_mentions_enabled(node.test)
        for child in node.test, *node.body:
            if guarded and child is not node.test:
                self._guard_depth += 1
                self.visit(child)
                self._guard_depth -= 1
            else:
                self.visit(child)
        for child in node.orelse:
            self.visit(child)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        if self._test_mentions_enabled(node.test):
            self._guard_depth += 1
            self.generic_visit(node)
            self._guard_depth -= 1
        else:
            self.generic_visit(node)

    # -- the three checks ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "Tracer":
            self.report(
                node,
                "direct Tracer construction outside repro.obs: attach a "
                "facade via attach_observability instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Store):
            if _is_obs_base(node.value) and node.attr != "obs":
                self.report(
                    node,
                    f"attribute write '{expr_text(node)} = ...' mutates the "
                    "observability facade; facades are swapped whole, never "
                    "mutated (the DISABLED singleton is shared)",
                )
        elif (
            node.attr in LIVE_ATTRS
            and _is_obs_base(node.value)
            and self._guard_depth == 0
            and not self.ctx.annotated("obs-guarded", node.lineno)
        ):
            self.report(
                node,
                f"'{expr_text(node)}' touches the live half of the obs "
                "facade without an obs.enabled guard; guard it or annotate "
                "'# repro: obs-guarded=<where the guard is>'",
            )
        self.generic_visit(node)


@register(
    "REP003",
    "obs facade: no direct Tracer, no facade mutation, live access guarded",
    annotation="obs-guarded",
)
def check_obs_purity(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE):
        return []
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.findings
