"""REP006 — storage mutations in transactional scopes must be undo-logged.

``Cluster`` guarantees statement/transaction atomicity by pairing every
fragment or GI-partition mutation with a compensating ``_record_undo``
action; rollback replays them in reverse.  A mutation that skips the undo
log *appears* to work — until a fault or explicit rollback restores the
base relations but leaves the derived state mutated (exactly the
aggregate-view corruption this rule was written against).

Scoped to the orchestration layers (``core/``, ``cluster/cluster.py``,
``cluster/transactions.py``, ``faults/``); the storage primitives in
``cluster/node.py`` are *below* the undo log by design, and
``cluster/parallel.py`` runs only behind the parallel gate, which drains
whenever an undo scope is open.

Flags any call ``<receiver>.insert/insert_many/delete/delete_matching/
delete_by_rowid/restore/gi_insert/gi_delete(...)`` whose receiver text
mentions a fragment / node / GI partition, when the enclosing function
never touches the undo machinery (``_record_undo``,
``_snapshot_queue_undo``, or ``record`` on an ``*undo*`` receiver).

Legitimately unlogged sites — DDL backfills that run before any scope can
exist, bulk paths gated by ``_bulk_ok`` (which requires no open scopes),
audit repairs that *are* the recovery path — annotate
``# repro: no-undo=<why rollback can never see this>`` on the line or the
enclosing ``def``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..findings import Finding
from . import register
from .base import RuleContext, call_name, expr_text

SCOPE = ("core/", "cluster/cluster.py", "cluster/transactions.py", "faults/")

MUTATORS = {
    "insert", "insert_many", "delete", "delete_matching",
    "delete_by_rowid", "restore", "gi_insert", "gi_delete",
}
#: Receiver-text markers of modeled storage (vs. plain dicts/lists).
STORAGE_MARKERS = ("fragment", "gi_partition", "node")
UNDO_MARKERS = ("_record_undo", "record_undo", "_snapshot_queue_undo")


def _is_storage_mutation(node: ast.Call) -> Optional[str]:
    name = call_name(node)
    if name not in MUTATORS or not isinstance(node.func, ast.Attribute):
        return None
    receiver = expr_text(node.func.value)
    if any(marker in receiver for marker in STORAGE_MARKERS):
        return f"{receiver}.{name}"
    return None


def _touches_undo(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name in UNDO_MARKERS:
            return True
        if name == "record" and isinstance(node.func, ast.Attribute):
            if "undo" in expr_text(node.func.value):
                return True
    return False


def _enclosing_functions(
    tree: ast.Module,
) -> List[Tuple[int, int, ast.AST]]:
    spans: List[Tuple[int, int, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans.append((node.lineno, end, node))
    return spans


@register(
    "REP006",
    "storage mutations must be undo-logged or annotated as scope-free",
    annotation="no-undo",
)
def check_undo(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE) or ctx.path == "cluster/node.py":
        return []
    findings: List[Finding] = []
    spans = _enclosing_functions(ctx.tree)

    def innermost(line: int) -> Optional[ast.AST]:
        best: Optional[Tuple[int, int, ast.AST]] = None
        for start, end, fn in spans:
            if start <= line <= end and (
                best is None or start > best[0]
            ):
                best = (start, end, fn)
        return best[2] if best else None

    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        site = _is_storage_mutation(node)
        if site is None:
            continue
        if ctx.annotated("no-undo", node.lineno):
            continue
        fn = innermost(node.lineno)
        if fn is not None and _touches_undo(fn):
            continue
        where = f"function {fn.name!r}" if fn is not None else "module scope"  # type: ignore[attr-defined]
        findings.append(
            Finding(
                rule="REP006",
                path=ctx.path,
                line=node.lineno,
                column=node.col_offset,
                message=(
                    f"storage mutation '{site}(...)' in {where} without any "
                    "undo recording: rollback would restore base relations "
                    "but not this state; record an undo action or annotate "
                    "'# repro: no-undo=<why rollback can never see this>'"
                ),
            )
        )
    return findings
