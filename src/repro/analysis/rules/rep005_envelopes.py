"""REP005 — the envelope op and refresh-block vocabularies stay bijective.

The parallel engine's protocol is stringly typed on two axes: coordinators
build ``("ins", node, ...)`` command tuples which workers dispatch on
``op[0]`` in ``_execute_op``, and the refresh journal ships columnar
``DeltaBlock`` payloads which workers dispatch on ``block.kind`` in
``_apply_block``.  ``repro.cluster.parallel`` therefore publishes both
vocabularies once — ``COMMAND_KINDS`` / ``READ_ONLY_KINDS`` /
``BLOCK_KINDS`` — and everything else must agree with them:

1. ``_execute_op`` must have a ``kind == "..."`` branch for **exactly**
   ``COMMAND_KINDS`` (a missing branch drops commands at runtime; an extra
   branch is dead protocol the registry doesn't know about);
2. ``_apply_block`` must cover exactly ``BLOCK_KINDS`` — skipping a block
   kind forks worker images from the coordinator, an extra branch is
   unreachable wire format;
3. every envelope construction site — a tuple literal whose head is a
   string constant, appended to an ``*ops`` list or passed (in a list) to
   ``run_ops`` — must use a registered command kind;
4. every ``DeltaBlock("...", ...)`` construction site whose kind argument
   is a string literal must use a registered block kind (named-constant
   kinds resolve through the registry module itself and are exempt).

The registries are imported from the live module, not re-parsed, so the
rule can never drift from the engine.  No annotation key: a vocabulary
mismatch has no legitimate exception (extend the registry instead);
``noqa=REP005`` remains for emergencies.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from ..findings import Finding
from . import register
from .base import RuleContext, trailing_name

SCOPE = ("core/", "cluster/", "query/", "faults/")
ENGINE = "cluster/parallel.py"
#: Functions in the engine whose ``kind == ...`` branches are checked, and
#: the registry expression naming the kind set each must cover.
HANDLERS = {
    "_execute_op": "COMMAND_KINDS",
    "_apply_block": "BLOCK_KINDS",
}


def _registry() -> tuple[frozenset, frozenset, frozenset]:
    from repro.cluster.parallel import (
        BLOCK_KINDS,
        COMMAND_KINDS,
        READ_ONLY_KINDS,
    )

    return COMMAND_KINDS, READ_ONLY_KINDS, BLOCK_KINDS


def _kind_comparisons(fn: ast.AST) -> Set[str]:
    """String constants compared against a name ``kind`` inside ``fn`` —
    both ``kind == "ins"`` equality and ``kind in ("ins", "del")``
    membership forms."""
    kinds: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if not any(
            isinstance(o, ast.Name) and o.id == "kind" for o in operands
        ):
            continue
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, str
            ):
                kinds.add(operand.value)
            elif isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                for element in operand.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        kinds.add(element.value)
    return kinds


def _head_string(node: ast.expr) -> Optional[tuple[str, ast.expr]]:
    """``("ins", ...)`` -> ("ins", head-node); None for anything else."""
    if (
        isinstance(node, ast.Tuple)
        and node.elts
        and isinstance(node.elts[0], ast.Constant)
        and isinstance(node.elts[0].value, str)
    ):
        return node.elts[0].value, node.elts[0]
    return None


def _constructed_ops(call: ast.Call) -> Sequence[ast.expr]:
    """Envelope tuple candidates constructed by ``call``."""
    name = call.func.attr if isinstance(call.func, ast.Attribute) else None
    if name == "append":
        receiver = trailing_name(call.func.value)  # type: ignore[union-attr]
        if receiver and receiver.endswith("ops") and call.args:
            return call.args[:1]
        return []
    if name == "run_ops" and call.args:
        arg = call.args[0]
        if isinstance(arg, ast.List):
            return arg.elts
        if isinstance(arg, ast.ListComp):
            return [arg.elt]
    return []


def _block_kind_literal(call: ast.Call) -> Optional[ast.Constant]:
    """The string-literal kind of a ``DeltaBlock(...)`` construction, or
    ``None`` (not a DeltaBlock call / kind passed as a named constant)."""
    name = trailing_name(call.func)
    if name != "DeltaBlock":
        return None
    kind_arg: Optional[ast.expr] = None
    if call.args:
        kind_arg = call.args[0]
    else:
        for keyword in call.keywords:
            if keyword.arg == "kind":
                kind_arg = keyword.value
                break
    if isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str):
        return kind_arg
    return None


@register("REP005", "envelope kinds, handlers, and block kinds must biject")
def check_envelopes(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE):
        return []
    command_kinds, read_only, block_kinds = _registry()
    findings: List[Finding] = []

    def report(line: int, column: int, message: str) -> None:
        findings.append(
            Finding(
                rule="REP005",
                path=ctx.path,
                line=line,
                column=column,
                message=message,
            )
        )

    if ctx.path == ENGINE:
        expected = {"_execute_op": command_kinds, "_apply_block": block_kinds}
        for fn in ctx.functions():
            want = expected.get(fn.name)
            if want is None:
                continue
            have = _kind_comparisons(fn)
            for kind in sorted(want - have):
                report(
                    fn.lineno,
                    fn.col_offset,
                    f"{fn.name} has no branch for envelope kind {kind!r} "
                    f"(registry says it must cover {HANDLERS[fn.name]})",
                )
            for kind in sorted(have - want):
                report(
                    fn.lineno,
                    fn.col_offset,
                    f"{fn.name} handles kind {kind!r} which is outside "
                    f"{HANDLERS[fn.name]}; extend the registry in "
                    "cluster/parallel.py or drop the branch",
                )

    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        for candidate in _constructed_ops(node):
            head = _head_string(candidate)
            if head is None:
                continue
            kind, head_node = head
            if kind not in command_kinds:
                report(
                    head_node.lineno,
                    head_node.col_offset,
                    f"envelope constructed with unregistered kind {kind!r}; "
                    "workers would raise at dispatch — add it to "
                    "COMMAND_KINDS in cluster/parallel.py (and to "
                    "READ_ONLY_KINDS if it never mutates)",
                )
        literal = _block_kind_literal(node)
        if literal is not None and literal.value not in block_kinds:
            report(
                literal.lineno,
                literal.col_offset,
                f"DeltaBlock constructed with unregistered kind "
                f"{literal.value!r}; workers would raise in _apply_block — "
                "add it to BLOCK_KINDS in cluster/parallel.py",
            )
    return findings
