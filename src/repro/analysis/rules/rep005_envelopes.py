"""REP005 — the envelope op vocabulary stays bijective.

The parallel engine's protocol is stringly typed: coordinators build
``("ins", node, ...)`` tuples, workers dispatch on ``op[0]`` in
``_execute_op``, and the coordinator mirrors mutations in ``_replay``.
``repro.cluster.parallel`` therefore publishes the vocabulary once —
``COMMAND_KINDS`` / ``READ_ONLY_KINDS`` — and everything else must agree
with it:

1. ``_execute_op`` must have a ``kind == "..."`` branch for **exactly**
   ``COMMAND_KINDS`` (a missing branch drops commands at runtime; an extra
   branch is dead protocol the registry doesn't know about);
2. ``_replay`` must cover exactly the mutating kinds
   (``COMMAND_KINDS - READ_ONLY_KINDS``) — replaying a read corrupts the
   coordinator image, skipping a mutation forks it from the shards;
3. every envelope construction site — a tuple literal whose head is a
   string constant, appended to an ``*ops`` list or passed (in a list) to
   ``run_ops`` — must use a registered kind.

The registry is imported from the live module, not re-parsed, so the rule
can never drift from the engine.  No annotation key: a vocabulary mismatch
has no legitimate exception (extend the registry instead); ``noqa=REP005``
remains for emergencies.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from ..findings import Finding
from . import register
from .base import RuleContext, trailing_name

SCOPE = ("core/", "cluster/", "query/", "faults/")
ENGINE = "cluster/parallel.py"
#: Functions in the engine whose ``kind == ...`` branches are checked, and
#: the registry expression naming the kind set each must cover.
HANDLERS = {
    "_execute_op": "COMMAND_KINDS",
    "_replay": "COMMAND_KINDS - READ_ONLY_KINDS",
}


def _registry() -> tuple[frozenset, frozenset]:
    from repro.cluster.parallel import COMMAND_KINDS, READ_ONLY_KINDS

    return COMMAND_KINDS, READ_ONLY_KINDS


def _kind_comparisons(fn: ast.AST) -> Set[str]:
    """String constants compared against a name ``kind`` inside ``fn`` —
    both ``kind == "ins"`` equality and ``kind in ("ins", "del")``
    membership forms."""
    kinds: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if not any(
            isinstance(o, ast.Name) and o.id == "kind" for o in operands
        ):
            continue
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, str
            ):
                kinds.add(operand.value)
            elif isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                for element in operand.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        kinds.add(element.value)
    return kinds


def _head_string(node: ast.expr) -> Optional[tuple[str, ast.expr]]:
    """``("ins", ...)`` -> ("ins", head-node); None for anything else."""
    if (
        isinstance(node, ast.Tuple)
        and node.elts
        and isinstance(node.elts[0], ast.Constant)
        and isinstance(node.elts[0].value, str)
    ):
        return node.elts[0].value, node.elts[0]
    return None


def _constructed_ops(call: ast.Call) -> Sequence[ast.expr]:
    """Envelope tuple candidates constructed by ``call``."""
    name = call.func.attr if isinstance(call.func, ast.Attribute) else None
    if name == "append":
        receiver = trailing_name(call.func.value)  # type: ignore[union-attr]
        if receiver and receiver.endswith("ops") and call.args:
            return call.args[:1]
        return []
    if name == "run_ops" and call.args:
        arg = call.args[0]
        if isinstance(arg, ast.List):
            return arg.elts
        if isinstance(arg, ast.ListComp):
            return [arg.elt]
    return []


@register("REP005", "envelope kinds, handlers, and replay set must biject")
def check_envelopes(ctx: RuleContext) -> Iterable[Finding]:
    if not ctx.in_dirs(SCOPE):
        return []
    command_kinds, read_only = _registry()
    mutating = command_kinds - read_only
    findings: List[Finding] = []

    def report(line: int, column: int, message: str) -> None:
        findings.append(
            Finding(
                rule="REP005",
                path=ctx.path,
                line=line,
                column=column,
                message=message,
            )
        )

    if ctx.path == ENGINE:
        expected = {"_execute_op": command_kinds, "_replay": mutating}
        for fn in ctx.functions():
            want = expected.get(fn.name)
            if want is None:
                continue
            have = _kind_comparisons(fn)
            for kind in sorted(want - have):
                report(
                    fn.lineno,
                    fn.col_offset,
                    f"{fn.name} has no branch for envelope kind {kind!r} "
                    f"(registry says it must cover {HANDLERS[fn.name]})",
                )
            for kind in sorted(have - want):
                report(
                    fn.lineno,
                    fn.col_offset,
                    f"{fn.name} handles kind {kind!r} which is outside "
                    f"{HANDLERS[fn.name]}; extend the registry in "
                    "cluster/parallel.py or drop the branch",
                )

    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        for candidate in _constructed_ops(node):
            head = _head_string(candidate)
            if head is None:
                continue
            kind, head_node = head
            if kind not in command_kinds:
                report(
                    head_node.lineno,
                    head_node.col_offset,
                    f"envelope constructed with unregistered kind {kind!r}; "
                    "workers would raise at dispatch — add it to "
                    "COMMAND_KINDS in cluster/parallel.py (and to "
                    "READ_ONLY_KINDS if it never mutates)",
                )
    return findings
