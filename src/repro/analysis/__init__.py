"""reprolint — domain-aware static analysis + runtime sanitizer.

Two halves, one set of invariants:

* **Static** (:mod:`repro.analysis.engine`, ``python -m repro.analysis``):
  six AST rules (REP001-REP006) that pin the cost-model contracts no
  generic linter knows about — every modeled SEND is charged through the
  ``Network`` wrapper, cost paths stay deterministic, the disabled obs
  facade stays pure, I/O cost weights live only in the model layer, the
  parallel envelope vocabulary bijects with its handlers, and storage
  mutations in transactional scopes are undo-logged.

* **Dynamic** (:mod:`repro.analysis.sanitizer`,
  ``Cluster(sanitize=True)`` / ``REPRO_SANITIZE=1``): the same invariants
  asserted while an engine actually runs — send-charge parity against
  ``NetworkStats``, ledger-cell sanity, facade purity, fragment/row-count
  consistency, envelope-kind validation.

The static half never imports the engine (except REP005's vocabulary
registry); the dynamic half is imported lazily by ``Cluster`` so the
fast path pays nothing when disabled.
"""

from .baseline import Baseline, load_baseline, save_baseline
from .engine import analyze_paths, discover_files
from .findings import AnalysisResult, Finding, fingerprint_findings
from .reporters import exit_code, render_json, render_text
from .rules import RULES, rule_ids
from .suppressions import KNOWN_ANNOTATIONS, parse_suppressions

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "KNOWN_ANNOTATIONS",
    "RULES",
    "analyze_paths",
    "discover_files",
    "exit_code",
    "fingerprint_findings",
    "load_baseline",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rule_ids",
    "save_baseline",
]
