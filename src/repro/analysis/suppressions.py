"""Suppression comments and rule annotations.

Two comment forms, both introduced by ``# repro:``:

* ``# repro: noqa=REP001`` (or a comma list) — silence the named rules on
  that physical line only.  Blanket ``# repro: noqa`` without rule ids is
  deliberately **not** supported: suppressions must name what they hide.

* ``# repro: <key>=<justification>`` — a *domain annotation*.  Each rule
  documents the annotation key it honours (``uncharged-mirror`` for
  REP001, ``wall-clock`` for REP002, ``obs-guarded`` for REP003,
  ``cost-literal`` for REP004, ``no-undo`` for REP006).  An annotation on
  a ``def``/``class`` line covers the whole body — used where one
  justification explains many sites — and **must carry a non-empty
  justification** after the ``=``; an empty one is itself reported.

Comments are read with :mod:`tokenize`, so strings containing ``# repro:``
never register as suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: Annotation keys with the rules that honour them (documented in DESIGN.md).
KNOWN_ANNOTATIONS = {
    "uncharged-mirror": "REP001",
    "wall-clock": "REP002",
    "obs-guarded": "REP003",
    "cost-literal": "REP004",
    "no-undo": "REP006",
}

_COMMENT = re.compile(r"#\s*repro:\s*(?P<body>.+)$")
_RULE_ID = re.compile(r"^REP\d{3}$")


@dataclass
class Suppressions:
    """Per-file suppression state, queried by the engine and the rules."""

    #: line -> rule ids silenced by ``noqa=`` on that line
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    #: line -> {annotation key: justification}
    annotations: Dict[int, Dict[str, str]] = field(default_factory=dict)
    #: malformed suppression comments: (line, message)
    errors: List[Tuple[int, str]] = field(default_factory=list)
    #: ``(line, rule)`` noqa entries that suppressed a finding this run —
    #: the audit's liveness signal (see ``--audit-suppressions``)
    used_noqa: Set[Tuple[int, str]] = field(default_factory=set)
    #: ``(line, key)`` annotations a rule consulted (and matched) this run
    used_annotations: Set[Tuple[int, str]] = field(default_factory=set)

    def is_noqa(self, rule: str, line: int) -> bool:
        hit = rule in self.noqa.get(line, set())
        if hit:
            self.used_noqa.add((line, rule))
        return hit

    def annotation_on(self, key: str, line: int) -> bool:
        hit = key in self.annotations.get(line, {})
        if hit:
            self.used_annotations.add((line, key))
        return hit


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# repro:`` comment from ``source``."""
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports the parse failure separately; no suppressions.
        return out
    for line, text in comments:
        match = _COMMENT.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        key, _, value = body.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "noqa":
            rules = {r.strip() for r in value.split(",") if r.strip()}
            bad = [r for r in rules if not _RULE_ID.match(r)]
            if not rules or bad:
                out.errors.append(
                    (line, "noqa must list rule ids, e.g. '# repro: noqa=REP001'")
                )
                continue
            out.noqa.setdefault(line, set()).update(rules)
        elif key in KNOWN_ANNOTATIONS:
            if not value:
                out.errors.append(
                    (line, f"annotation {key!r} needs a justification after '='")
                )
                continue
            out.annotations.setdefault(line, {})[key] = value
        else:
            out.errors.append((line, f"unknown repro comment {key!r}"))
    return out
