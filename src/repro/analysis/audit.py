"""Suppression audit: inventory every ``# repro:`` escape hatch and fail
on the stale ones.

Suppressions decay: the code a ``noqa`` silenced gets rewritten, the
telemetry a ``wall-clock`` annotation justified moves, and the comment
stays behind — an unearned exemption the next reader trusts.  The rules
therefore record every suppression they *consult and match* during a run
(:class:`~repro.analysis.suppressions.Suppressions` use-records), and the
audit compares that against the full inventory:

* a ``noqa=REPnnn`` entry is **live** iff it suppressed a finding of that
  rule in this run;
* a domain annotation is **live** iff some rule (per-file or flow)
  checked its key at its line — i.e. the annotated construct still exists
  and still triggers the rule that honours the key.

Everything else is stale and exits 1.  The audit runs the *full* rule set
including the interprocedural layer, so annotations that only the flow
rules consult (a ``no-undo`` justifying an entry-point path, say) are
correctly counted as live.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import analyze_paths
from .rules.base import RuleContext
from .suppressions import KNOWN_ANNOTATIONS


def audit_suppressions(targets: Sequence[str]) -> Dict[str, object]:
    """Run every rule over ``targets`` and inventory all suppressions.

    Returns a JSON-ready report::

        {"suppressions": [{file, line, kind, rule, key, justification,
                           used}, ...],
         "total": N, "stale": M}

    ``stale`` counts entries with ``used == False``; callers treat a
    non-zero count as failure.
    """
    contexts: Dict[str, RuleContext] = {}
    analyze_paths(targets, flow=True, contexts_out=contexts)
    entries: List[Dict[str, object]] = []
    for path in sorted(contexts):
        suppressions = contexts[path].suppressions
        for line in sorted(suppressions.noqa):
            for rule in sorted(suppressions.noqa[line]):
                entries.append(
                    {
                        "file": path,
                        "line": line,
                        "kind": "noqa",
                        "rule": rule,
                        "key": None,
                        "justification": None,
                        "used": (line, rule) in suppressions.used_noqa,
                    }
                )
        for line in sorted(suppressions.annotations):
            for key, justification in sorted(
                suppressions.annotations[line].items()
            ):
                entries.append(
                    {
                        "file": path,
                        "line": line,
                        "kind": "annotation",
                        "rule": KNOWN_ANNOTATIONS.get(key),
                        "key": key,
                        "justification": justification,
                        "used": (line, key) in suppressions.used_annotations,
                    }
                )
    stale = sum(1 for entry in entries if not entry["used"])
    return {"suppressions": entries, "total": len(entries), "stale": stale}


def render_audit(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
