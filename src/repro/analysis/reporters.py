"""Reporters: render an :class:`AnalysisResult` as text or JSON.

The text form is for humans at a terminal; the JSON form is the CI
artifact (stable key order, findings sorted by location) and round-trips
through :meth:`Finding.from_dict`.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import AnalysisResult


def render_text(result: AnalysisResult) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column + 1}: "
            f"{finding.rule} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for fingerprint in result.stale_baseline:
        lines.append(
            f"stale baseline entry {fingerprint}: no finding matches it any "
            "more — remove it from the baseline file"
        )
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_analyzed} "
        f"file(s) ({result.suppressed} suppressed, "
        f"{result.baselined} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(ies))"
    )
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> str:
    payload: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in result.findings],
        "stale_baseline": list(result.stale_baseline),
        "summary": {
            "findings": len(result.findings),
            "files_analyzed": result.files_analyzed,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": len(result.stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def exit_code(result: AnalysisResult) -> int:
    """Non-zero when anything needs action: findings or stale baseline."""
    return 1 if (result.findings or result.stale_baseline) else 0
