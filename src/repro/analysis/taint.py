"""REP008 — interprocedural determinism taint (the whole-program REP002).

REP002 flags a clock/unseeded-RNG/raw-set-order *call site* inside the
modeled engine's directories.  This engine tracks where such values **go**:
a summary-based dataflow over the :mod:`.callgraph` proves that no value
originating from a nondeterminism source flows — across any number of
calls — into a modeled-cost sink:

* ``CostLedger.charge(...)`` / ``CostLedger.absorb(...)`` arguments
  (ledger-ish receiver),
* trace ``signature(...)`` arguments (the byte-stable span/event surface),
* wire-envelope construction (``_encode`` / ``send_bytes`` /
  ``_send_envelope`` arguments).

Sources are **unannotated** sites only: a ``# repro: wall-clock=<reason>``
annotation (REP002's key) declares the value telemetry, and telemetry is
allowed to exist — this rule proves it never crosses into the model.

The lattice is deliberately small (DESIGN.md § 16): per function we learn
(a) does it return a tainted value, (b) which parameters flow to its
return, and (c) which parameters reach a sink inside it (transitively).
Locals propagate through expressions, loops, comprehensions, container
construction, and mutating method calls (``x.append(t)`` taints ``x``);
attribute *stores* on ``self``/``cls`` do **not** taint the object (the
tracer legitimately stashes timestamps on spans — field-sensitive escape
analysis is out of scope), and interprocedural propagation follows only
``direct``/``self`` edges (by-name fallback edges would drown the rule in
duck-typing noise).  Every finding carries the full source → … → sink
provenance chain, plus each hop's call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, _own_calls
from .findings import Finding
from .flow import Project, register_flow
from .rules.base import call_name, expr_text, is_set_expression
from .rules.rep002_determinism import _banned_call

#: Longest provenance chain kept (defensive: chains are shortest-first).
_MAX_CHAIN = 16

#: Builtin-ish method calls that mutate their receiver with their args.
_MUTATORS = {
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push",
}


@dataclass(frozen=True)
class Hop:
    """One step of a provenance chain: where, and what happened there."""

    qualname: str
    path: str
    line: int
    note: str

    def render(self, graph: CallGraph) -> str:
        info = graph.functions.get(self.qualname)
        where = info.short() if info else self.qualname
        return f"{self.note} in {where} ({self.path}:{self.line})"


Provenance = Tuple[Hop, ...]


@dataclass(frozen=True)
class SinkRef:
    """A sink site, addressed from a function boundary: applying a tainted
    argument to the owning function fires it, ``hops`` describing the
    intermediate calls down to the sink."""

    path: str
    line: int
    column: int
    desc: str
    hops: Provenance


@dataclass
class Summary:
    """What callers need to know about one function."""

    returns: Optional[Provenance] = None
    param_returns: Set[int] = field(default_factory=set)
    param_sinks: Dict[int, Tuple[SinkRef, ...]] = field(default_factory=dict)

    def signature(self) -> Tuple:
        return (
            self.returns is not None,
            tuple(sorted(self.param_returns)),
            tuple(
                (param, tuple((s.path, s.line, s.desc) for s in refs))
                for param, refs in sorted(self.param_sinks.items())
            ),
        )


@dataclass(frozen=True)
class _Taint:
    """Expression taint: a provenance (source already seen) and/or a set
    of the enclosing function's parameter indices it depends on."""

    prov: Optional[Provenance] = None
    params: FrozenSet[int] = frozenset()

    def __bool__(self) -> bool:
        return self.prov is not None or bool(self.params)


_CLEAN = _Taint()


def _merge(*taints: _Taint) -> _Taint:
    prov: Optional[Provenance] = None
    params: FrozenSet[int] = frozenset()
    for taint in taints:
        if taint.prov is not None and (
            prov is None or len(taint.prov) < len(prov)
        ):
            prov = taint.prov
        params = params | taint.params
    return _Taint(prov, params) if (prov or params) else _CLEAN


def _sink_of(call: ast.Call) -> Optional[str]:
    name = call_name(call)
    if name in ("charge", "absorb") and isinstance(call.func, ast.Attribute):
        receiver = expr_text(call.func.value)
        if "ledger" in receiver.lower():
            return f"CostLedger.{name}"
        return None
    if name == "signature":
        return "trace signature()"
    if name in ("_encode", "send_bytes", "_send_envelope"):
        return "wire-envelope construction"
    return None


class _TaintEngine:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = project.graph
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in self.graph.functions
        }
        #: resolved source→sink hits: key dedupes, value renders
        self.hits: Dict[Tuple[str, int, str, Tuple], Tuple[SinkRef, Provenance]] = {}
        #: (caller, line) -> resolvable callee qualnames (direct/self only)
        self._calls_at: Dict[Tuple[str, int], List[str]] = {}
        for caller, edges in self.graph.edges_from.items():
            for edge in edges:
                if edge.via in ("direct", "self"):
                    self._calls_at.setdefault((caller, edge.line), []).append(
                        edge.callee
                    )

    # ------------------------------------------------------------- driver

    def run(self) -> None:
        for _ in range(8):
            changed = False
            for qualname in sorted(self.graph.functions):
                before = self.summaries[qualname].signature()
                self._analyze(self.graph.functions[qualname])
                if self.summaries[qualname].signature() != before:
                    changed = True
            if not changed:
                break

    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        graph = self.graph
        for key in sorted(
            self.hits, key=lambda k: (k[0], k[1], k[2], str(k[3]))
        ):
            sink, chain = self.hits[key]
            source = chain[0]
            steps = " → ".join(hop.render(graph) for hop in chain)
            out.append(
                Finding(
                    rule="REP008",
                    path=sink.path,
                    line=sink.line,
                    column=sink.column,
                    message=(
                        f"nondeterministic value reaches {sink.desc}: "
                        f"{steps} → {sink.desc} ({sink.path}:{sink.line}); "
                        "engines could no longer be bit-identical — break "
                        "the flow, or annotate the source with "
                        "'# repro: wall-clock=<reason>' if it is telemetry "
                        "that provably never crosses into modeled state"
                    ),
                )
            )
        return out

    # ------------------------------------------------------ per function

    def _analyze(self, fn: FunctionInfo) -> None:
        ctx = self.project.context(fn.path)
        if ctx is None or not isinstance(
            fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        args = fn.node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        analyzer = _FunctionTaint(self, fn, ctx, params)
        body = fn.node.body
        # Two passes give loop-carried taint one generation to propagate.
        analyzer.exec_block(body)
        analyzer.exec_block(body)
        summary = self.summaries[fn.qualname]
        if analyzer.returns is not None and summary.returns is None:
            summary.returns = analyzer.returns
        summary.param_returns |= analyzer.param_returns
        for param, refs in analyzer.param_sinks.items():
            merged = dict(
                ((r.path, r.line, r.desc), r)
                for r in summary.param_sinks.get(param, ())
            )
            for ref in refs:
                merged.setdefault((ref.path, ref.line, ref.desc), ref)
            summary.param_sinks[param] = tuple(
                merged[k] for k in sorted(merged)
            )

    def record_hit(self, sink: SinkRef, chain: Provenance) -> None:
        if len(chain) > _MAX_CHAIN:
            chain = chain[:1] + chain[-(_MAX_CHAIN - 1):]
        key = (sink.path, sink.line, sink.desc, (chain[0].path, chain[0].line))
        if key not in self.hits:
            self.hits[key] = (sink, chain)


class _FunctionTaint:
    """One function's intra-procedural pass (callee summaries consulted)."""

    def __init__(
        self,
        engine: _TaintEngine,
        fn: FunctionInfo,
        ctx,
        params: List[str],
    ) -> None:
        self.engine = engine
        self.fn = fn
        self.ctx = ctx
        self.params = params
        self.env: Dict[str, _Taint] = {
            name: _Taint(params=frozenset({index}))
            for index, name in enumerate(params)
        }
        self.returns: Optional[Provenance] = None
        self.param_returns: Set[int] = set()
        self.param_sinks: Dict[int, List[SinkRef]] = {}

    # ---------------------------------------------------------- statements

    def exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate graph nodes
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = _merge(self.eval(stmt.target), self.eval(stmt.value))
            self.bind(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self.eval(stmt.value)
                if taint.prov is not None and self.returns is None:
                    self.returns = taint.prov
                self.param_returns |= taint.params
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.iter_taint(stmt.iter)
            self.bind(stmt.target, taint)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, taint)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # pass/break/continue/global/import/del: nothing to track

    def bind(self, target: ast.expr, taint: _Taint) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.env[target.id] = _merge(
                    self.env.get(target.id, _CLEAN), taint
                )
            else:
                self.env[target.id] = _CLEAN  # strong update: x = clean
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, taint)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, taint)
        elif isinstance(target, ast.Subscript):
            # building a container: x[k] = tainted taints x
            if taint and isinstance(target.value, ast.Name):
                name = target.value.id
                self.env[name] = _merge(self.env.get(name, _CLEAN), taint)
        elif isinstance(target, ast.Attribute):
            # attribute store taints the holder var — except self/cls
            # (field-insensitive escape would drown the tracer in noise)
            if taint and isinstance(target.value, ast.Name):
                if target.value.id not in ("self", "cls"):
                    name = target.value.id
                    self.env[name] = _merge(self.env.get(name, _CLEAN), taint)

    # --------------------------------------------------------- expressions

    def iter_taint(self, iterable: ast.expr) -> _Taint:
        """Taint of iterating ``iterable`` — including the raw-set-order
        source when the expression is an unannotated set."""
        taint = self.eval(iterable)
        if is_set_expression(iterable) and not self.ctx.annotated(
            "wall-clock", iterable.lineno
        ):
            source = _Taint(prov=(Hop(
                self.fn.qualname, self.fn.path, iterable.lineno,
                "hash-salted set iteration order",
            ),))
            taint = _merge(taint, source)
        return taint

    def eval(self, node: ast.expr) -> _Taint:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CLEAN)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Attribute):
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return _merge(self.eval(node.value), self.eval(node.slice))
        if isinstance(node, ast.Lambda):
            return _CLEAN
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            taints: List[_Taint] = []
            for gen in node.generators:
                taint = self.iter_taint(gen.iter)
                self.bind(gen.target, taint)
                taints.append(taint)
                for condition in gen.ifs:
                    self.eval(condition)
            if isinstance(node, ast.DictComp):
                taints.append(self.eval(node.key))
                taints.append(self.eval(node.value))
            else:
                taints.append(self.eval(node.elt))
            return _merge(*taints)
        if isinstance(node, ast.Constant):
            return _CLEAN
        # generic fallback: union of child expression taints (BinOp,
        # BoolOp, Compare, IfExp, JoinedStr, Tuple/List/Set/Dict, Await,
        # Starred, FormattedValue, ...)
        taints = [
            self.eval(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return _merge(*taints) if taints else _CLEAN

    def eval_call(self, call: ast.Call) -> _Taint:
        engine = self.engine
        arg_taints = [self.eval(arg) for arg in call.args]
        kw_taints = {
            kw.arg: self.eval(kw.value) for kw in call.keywords
        }
        every = _merge(*arg_taints, *kw_taints.values()) \
            if (arg_taints or kw_taints) else _CLEAN

        # -- sink?
        sink_desc = _sink_of(call)
        if sink_desc is not None and every:
            sink = SinkRef(
                path=self.fn.path, line=call.lineno,
                column=call.col_offset, desc=sink_desc, hops=(),
            )
            if not self.ctx.annotated("wall-clock", call.lineno):
                if every.prov is not None:
                    engine.record_hit(sink, every.prov)
                for param in sorted(every.params):
                    self.param_sinks.setdefault(param, []).append(sink)

        # -- source?
        why = _banned_call(call)
        if why is not None and not self.ctx.annotated(
            "wall-clock", call.lineno
        ):
            return _merge(every, _Taint(prov=(Hop(
                self.fn.qualname, self.fn.path, call.lineno, why,
            ),)))

        # -- project callee with a summary?
        callees = engine._calls_at.get((self.fn.qualname, call.lineno), [])
        result = _CLEAN
        for callee in callees:
            info = engine.graph.functions.get(callee)
            summary = engine.summaries.get(callee)
            if info is None or summary is None:
                continue
            mapping = self._map_args(
                call, info, arg_taints, kw_taints
            )
            hop = Hop(
                self.fn.qualname, self.fn.path, call.lineno,
                f"through {info.short()}() call",
            )
            if summary.returns is not None:
                result = _merge(result, _Taint(prov=summary.returns + (hop,)))
            for index in summary.param_returns:
                taint = mapping.get(index)
                if taint and taint.prov is not None:
                    result = _merge(
                        result, _Taint(prov=taint.prov + (hop,))
                    )
                if taint:
                    result = _merge(result, _Taint(params=taint.params))
            for index, refs in summary.param_sinks.items():
                taint = mapping.get(index)
                if not taint:
                    continue
                into = Hop(
                    self.fn.qualname, self.fn.path, call.lineno,
                    f"passed into {info.short()}()",
                )
                for ref in refs:
                    if taint.prov is not None:
                        engine.record_hit(ref, taint.prov + (into,) + ref.hops)
                    for param in sorted(taint.params):
                        self.param_sinks.setdefault(param, []).append(
                            SinkRef(
                                path=ref.path, line=ref.line,
                                column=ref.column, desc=ref.desc,
                                hops=(into,) + ref.hops,
                            )
                        )
        if callees:
            return _merge(result, _Taint(params=every.params))

        # -- unknown callee: taint flows through (str(t), f"{t}", len(t),
        # sorted(t)…), and mutating methods taint their receiver.
        receiver = _CLEAN
        if isinstance(call.func, ast.Attribute):
            receiver = self.eval(call.func.value)
            if (
                every
                and call_name(call) in _MUTATORS
                and isinstance(call.func.value, ast.Name)
            ):
                name = call.func.value.id
                self.env[name] = _merge(self.env.get(name, _CLEAN), every)
        return _merge(result, receiver, every)

    def _map_args(
        self,
        call: ast.Call,
        info: FunctionInfo,
        arg_taints: List[_Taint],
        kw_taints: Dict[Optional[str], _Taint],
    ) -> Dict[int, _Taint]:
        """Map this call's arguments onto the callee's parameter indices."""
        node = info.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return {}
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        offset = 0
        if (
            params
            and params[0] in ("self", "cls")
            and isinstance(call.func, ast.Attribute)
        ):
            offset = 1
        mapping: Dict[int, _Taint] = {}
        for position, taint in enumerate(arg_taints):
            index = position + offset
            if index < len(params) and taint:
                mapping[index] = taint
        for name, taint in kw_taints.items():
            if name is not None and name in params and taint:
                mapping[params.index(name)] = taint
        return mapping


@register_flow(
    "REP008",
    "clock / unseeded-RNG / set-order values must not flow across calls "
    "into charges, trace signatures, or wire envelopes",
    annotation="wall-clock",
)
def check_determinism_taint(project: Project) -> Iterable[Finding]:
    engine = _TaintEngine(project)
    engine.run()
    return engine.findings()
