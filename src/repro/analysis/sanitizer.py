"""The runtime sanitizer: REP invariants asserted while an engine runs.

The static rules (:mod:`repro.analysis.rules`) prove their invariants over
*source*; this module re-asserts the observable halves of the same
contracts over a *running* cluster, catching what syntax cannot — a code
path that charges twice, a counter that drifts, a mutation routed around
the accounting layer by indirection.

Enable with ``Cluster(..., sanitize=True)`` or ``REPRO_SANITIZE=1``.  Two
hooks, both free when disabled (one attribute test each):

* :class:`SendAccountingNetwork` replaces the cluster's ``Network`` and
  counts, per wrapper call, the SEND charges the cost model *says* the
  call must make.  After every statement :class:`StatementSanitizer`
  compares that expectation against the ledger — REP001's
  charged-vs-counted contract, verified dynamically.  With a fault
  injector attached, charge counts are fate-dependent (retries,
  duplicates), so parity checking disarms rather than guess.

* :meth:`StatementSanitizer.check` additionally asserts, after every
  statement: ledger cells are finite, non-negative, and node-ranged;
  ``NetworkStats`` is internally consistent (``messages`` equals the
  ``by_link`` sum); the shared ``DISABLED`` obs facade has not been
  written to (REP003); catalog ``row_count`` matches the fragment
  contents (REP006's rollback contract, observed); and no undo scope is
  open while the parallel engine is admissible (the gate REP005/REP006
  rely on).

Envelope validation (REP005's runtime half) lives in
:func:`repro.cluster.parallel.validate_op`, called by ``run_ops`` when
``cluster.sanitize`` is set.

Every check reads engine state without charging, so a sanitized run's
ledger is **bit-identical** to an unsanitized one — the sanitizer suite
pins exactly that.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from ..cluster.network import Network
from ..costs import Op, Tag
from ..obs.collect import DISABLED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


class SanitizeError(AssertionError):
    """An engine invariant observed broken at runtime."""


class SendAccountingNetwork(Network):
    """The charging wrapper, with an independent expectation counter.

    On the fault-free path every wrapper call implies an exact number of
    SEND charges (cross-node sends charge one each; broadcasts charge the
    self-leg too, per Figure 2).  The counter tracks that expectation
    *outside* the ledger, so a drifted charge path cannot hide.  Any
    unreliable send disarms parity for the cluster's lifetime: with an
    injector the true charge count depends on message fates.
    """

    __slots__ = ("expected_send_charges", "parity_armed")

    def __init__(self, num_nodes: int, ledger) -> None:
        super().__init__(num_nodes, ledger)
        self.expected_send_charges = 0
        self.parity_armed = True

    def send(self, src: int, dst: int, tag: Tag = Tag.MAINTAIN) -> int:
        if self.injector is not None and src != dst:
            self.parity_armed = False
        elif src != dst:
            self.expected_send_charges += 1
        return super().send(src, dst, tag)

    def send_many(
        self, src: int, dst: int, count: int, tag: Tag = Tag.MAINTAIN
    ) -> int:
        if count > 0 and src != dst:
            if self.injector is not None:
                self.parity_armed = False
            else:
                self.expected_send_charges += count
        return super().send_many(src, dst, count, tag)

    def broadcast(self, src: int, tag: Tag = Tag.MAINTAIN) -> Iterable[int]:
        # The base broadcast routes unreliable legs through self.send,
        # which handles its own accounting; reliable legs (and the
        # self-leg, which broadcast charges unlike send) are counted here.
        for dst in super().broadcast(src, tag):
            if self.injector is None or dst == src:
                self.expected_send_charges += 1
            yield dst

    def broadcast_many(self, src: int, count: int, tag: Tag = Tag.MAINTAIN) -> None:
        if count > 0:
            if self.injector is not None:
                if self.num_nodes > 1:
                    self.parity_armed = False
                self.expected_send_charges += count  # the reliable self-leg
            else:
                self.expected_send_charges += count * self.num_nodes
        super().broadcast_many(src, count, tag)


class StatementSanitizer:
    """Post-statement invariant checks for one sanitized cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.checks_run = 0

    # ------------------------------------------------------------- checks

    def check(self, where: str = "statement") -> None:
        """Run every invariant check; raise :class:`SanitizeError` with the
        first violation found."""
        self.checks_run += 1
        self._check_ledger_cells(where)
        self._check_network_stats(where)
        self._check_send_parity(where)
        self._check_disabled_facade(where)
        self._check_row_counts(where)
        self._check_undo_gate(where)

    def _fail(self, where: str, message: str) -> None:
        raise SanitizeError(f"sanitize[{where}]: {message}")

    def _check_ledger_cells(self, where: str) -> None:
        # Ledger cells are historical: a node retired by remove_node /
        # fail_over keeps the charges it accrued, so the legal id range is
        # the lifetime peak, not the current count.
        num_nodes = getattr(
            self.cluster, "peak_num_nodes", self.cluster.num_nodes
        )
        for (node, op, tag), count in self.cluster.ledger._cells.items():
            if not (0 <= node < num_nodes):
                self._fail(
                    where,
                    f"ledger cell charged at node {node}, outside "
                    f"0..{num_nodes - 1} (op={op.value}, tag={tag.value})",
                )
            if not math.isfinite(count) or count < 0:
                self._fail(
                    where,
                    f"ledger cell (node={node}, op={op.value}, "
                    f"tag={tag.value}) holds invalid count {count!r}",
                )

    def _check_network_stats(self, where: str) -> None:
        stats = self.cluster.network.stats
        link_total = sum(stats.by_link.values())
        if stats.messages != link_total:
            self._fail(
                where,
                f"NetworkStats.messages={stats.messages} but by_link sums "
                f"to {link_total}: a counter was bypassed",
            )
        if any(count < 0 for count in stats.by_link.values()):
            self._fail(where, "negative per-link message count")

    def _check_send_parity(self, where: str) -> None:
        network = self.cluster.network
        if not isinstance(network, SendAccountingNetwork):
            return
        if not network.parity_armed:
            return  # injector made charge counts fate-dependent
        charged = sum(
            count
            for (node, op, tag), count in self.cluster.ledger._cells.items()
            if op is Op.SEND
        )
        expected = network.expected_send_charges
        if charged != expected:
            self._fail(
                where,
                f"SEND charge parity broken: ledger holds {charged} SEND "
                f"charges but the Network wrapper accounted for {expected} "
                "— some message was charged outside the wrapper (or not "
                "at all); see REP001",
            )

    def _check_disabled_facade(self, where: str) -> None:
        if DISABLED.metrics._metrics:
            polluted = sorted(DISABLED.metrics._metrics)
            self._fail(
                where,
                "the shared DISABLED observability facade accumulated "
                f"metrics {polluted}: some site touched obs.metrics "
                "without an obs.enabled guard; see REP003",
            )

    def _check_row_counts(self, where: str) -> None:
        cluster = self.cluster
        for name, info in sorted(cluster.catalog.relations.items()):
            stored = sum(
                len(node.fragment(name).table)
                for node in cluster.nodes
                if node.has_fragment(name)
            )
            if stored != info.row_count:
                self._fail(
                    where,
                    f"relation {name!r} catalog row_count={info.row_count} "
                    f"but fragments hold {stored} rows: a mutation bypassed "
                    "the accounting (or an undo action was lost); see REP006",
                )

    def _check_undo_gate(self, where: str) -> None:
        cluster = self.cluster
        if cluster._undo_logs and cluster._parallel_gate():
            self._fail(
                where,
                "an undo scope is open while the parallel gate admits "
                "supersteps: bulk/parallel paths must drain under undo "
                "scopes (see Cluster._bulk_ok)",
            )


def install(cluster: "Cluster") -> StatementSanitizer:
    """Arm the sanitizer on ``cluster``: swap in the accounting network and
    attach a :class:`StatementSanitizer`.  Called from ``Cluster.__init__``
    when ``sanitize`` resolves true; safe only before any traffic."""
    if cluster.network.stats.messages or cluster.network.stats.local_deliveries:
        raise RuntimeError("sanitizer must be installed before any traffic")
    network = SendAccountingNetwork(cluster.num_nodes, cluster.ledger)
    network.obs = cluster.network.obs
    cluster.network = network
    return StatementSanitizer(cluster)
