"""Interprocedural flow rules: REP007 (charge flow), REP009 (undo
domination), and the registration table that also hosts REP008 (the
determinism taint engine in :mod:`.taint`).

These promote the per-site rules REP001/REP002/REP006 to whole-program
proofs over the :mod:`.callgraph`: a site is no longer judged by its own
function alone but by every **call path** that reaches it from a statement
entry point, and each finding carries the shortest offending path as an
``entry → … → sink`` witness.  Findings reuse the ordinary
:class:`~repro.analysis.findings.Finding` schema (so baselines, noqa, and
the reporters all apply unchanged), and each rule honours the *same*
domain annotation as its intra-file counterpart — but accepts it anywhere
on the path, which is exactly the interprocedural promotion: a justified
wrapper clears every route through it.

Path searches are deterministic (BFS in sorted order) and per-rule edge
policies differ on purpose:

* REP007 follows **all** edges, including the by-name fallback — missing
  a reachable uncharged send is worse than walking a spurious edge, and a
  spurious path still needs a justification only at one function on it;
* REP009 follows only ``direct``/``self`` edges — domination is a
  precision claim, and the by-name fallback would conflate ``Cluster.
  insert`` with ``Node.insert`` (same bare name) and manufacture paths
  that skip the undo-recording middle layers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import (
    CallEdge,
    CallGraph,
    FunctionInfo,
    _own_calls,
    build_callgraph,
)
from .findings import Finding
from .rules.base import RuleContext, call_name, expr_text, trailing_name
from .rules.rep006_undo import _is_storage_mutation, _touches_undo


@dataclass
class FlowRuleInfo:
    """Registration record of one interprocedural rule."""

    rule_id: str
    summary: str
    annotation: Optional[str]
    fn: Callable[["Project"], Iterable[Finding]]


#: rule id -> FlowRuleInfo; the CLI merges this with the per-file RULES.
FLOW_RULES: Dict[str, FlowRuleInfo] = {}


def register_flow(rule_id: str, summary: str, annotation: Optional[str] = None):
    def wrap(fn: Callable[["Project"], Iterable[Finding]]):
        FLOW_RULES[rule_id] = FlowRuleInfo(rule_id, summary, annotation, fn)
        return fn
    return wrap


@dataclass
class Project:
    """Whole-program view: every file's RuleContext plus the call graph."""

    contexts: Dict[str, RuleContext]
    graph: CallGraph

    def context(self, path: str) -> Optional[RuleContext]:
        return self.contexts.get(path)

    def annotated(self, path: str, key: str, line: int) -> bool:
        ctx = self.contexts.get(path)
        return ctx.annotated(key, line) if ctx is not None else False

    def fn_annotated(self, fn: FunctionInfo, key: str) -> bool:
        """Annotation on the function's ``def`` line (or an enclosing
        scope) — the form that justifies every path through it."""
        return self.annotated(fn.path, key, fn.lineno)


def build_project(contexts: Dict[str, RuleContext]) -> Project:
    graph = build_callgraph(
        sorted((path, ctx.tree) for path, ctx in contexts.items())
    )
    return Project(contexts=contexts, graph=graph)


def run_flow_rules(
    contexts: Dict[str, RuleContext],
    only_rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the enabled interprocedural rules over one shared project."""
    if only_rules is None:
        enabled = sorted(FLOW_RULES)
    else:
        enabled = sorted(set(only_rules))
        unknown = [r for r in enabled if r not in FLOW_RULES]
        if unknown:
            raise ValueError(f"unknown flow rule ids: {unknown}")
    project = build_project(contexts)
    findings: List[Finding] = []
    for rule_id in enabled:
        findings.extend(FLOW_RULES[rule_id].fn(project))
    return findings


# ========================================================== entry points

#: Statement-level entry points: the public surfaces a user statement,
#: transaction, deferred refresh, membership change, or fault replay
#: enters the engine through.  ``(class, method)``; ``None`` matches
#: module-level functions.  Fixture trees in the tests use the same
#: names, so seeded violations anchor to the same table.
ENTRY_POINTS: Tuple[Tuple[Optional[str], str], ...] = (
    ("Cluster", "insert"),
    ("Cluster", "delete"),
    ("Cluster", "update"),
    ("Cluster", "add_node"),
    ("Cluster", "remove_node"),
    ("Cluster", "fail_over"),
    ("Transaction", "insert"),
    ("Transaction", "delete"),
    ("Transaction", "update"),
    ("Transaction", "rollback"),
    ("Transaction", "__exit__"),
    ("DeferredMaintainer", "refresh"),
    ("DeferredMaintainer", "flush_if_stale"),
    ("FaultController", "replay_pending"),
    ("FaultController", "recover"),
    (None, "add_node"),
    (None, "remove_node"),
    (None, "fail_over"),
)


def entry_qualnames(graph: CallGraph) -> Set[str]:
    wanted = set(ENTRY_POINTS)
    out: Set[str] = set()
    for qualname, info in graph.functions.items():
        if (info.cls, info.name) in wanted:
            out.add(qualname)
    return out


# ============================================================ path search


def unjustified_path(
    graph: CallGraph,
    entries: Set[str],
    target: str,
    justified: Callable[[str], bool],
    via: Optional[Set[str]] = None,
) -> Optional[List[CallEdge]]:
    """Shortest ``entry → … → target`` call path on which **no** function
    (entry and intermediates alike; the target was already judged at its
    site) satisfies ``justified`` — or ``None`` when every path is
    justified or the target is unreachable.  Reverse BFS in deterministic
    (sorted-caller) order; ``via`` restricts the edge kinds walked."""
    if target not in graph.functions:
        return None
    if target in entries:
        return []
    parents: Dict[str, CallEdge] = {}
    seen: Set[str] = {target}
    frontier = [target]
    while frontier:
        nxt: List[str] = []
        for current in frontier:
            for edge in graph.callers(current):
                if via is not None and edge.via not in via:
                    continue
                caller = edge.caller
                if caller in seen:
                    continue
                seen.add(caller)
                if justified(caller):
                    continue  # every route through it is cleared
                parents[caller] = edge
                if caller in entries:
                    path: List[CallEdge] = []
                    cursor = caller
                    while cursor != target:
                        hop = parents[cursor]
                        path.append(hop)
                        cursor = hop.callee
                    return path
                nxt.append(caller)
        frontier = sorted(nxt)
    return None


def render_path(
    graph: CallGraph, path: List[CallEdge], target: FunctionInfo
) -> str:
    """``Cluster.insert (cluster/cluster.py:582) → … → sink fn`` witness."""
    if not path:
        return target.display()
    parts = [graph.functions[path[0].caller].display()]
    for edge in path:
        info = graph.functions.get(edge.callee)
        parts.append(info.display() if info else edge.callee)
    return " → ".join(parts)


# ===================================================== REP007: charge flow

_SEND_NAMES = {"send", "send_many", "broadcast", "broadcast_many", "send_bytes"}
_NETWORK_WRAPPER = "cluster/network.py"


def _is_wrapper_subclass_send(
    ctx: RuleContext, call: ast.Call
) -> bool:
    """``super().send(...)`` inside a class that subclasses the Network
    wrapper (e.g. the sanitizer's ``SendAccountingNetwork``) *is* the
    wrapper: the delegated call charges inside ``Network`` itself."""
    func = call.func
    if not (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    ):
        return False
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            if node.lineno <= call.lineno <= end and any(
                "Network" in expr_text(base) for base in node.bases
            ):
                return True
    return False


def _charges_send(fn_node: ast.AST) -> bool:
    """Whether the function bills ``Op.SEND`` on a ledger itself — the
    hand-rolled-wrapper pattern that carries the charge for its sends."""
    for call in _own_calls(fn_node):
        if call_name(call) != "charge":
            continue
        for arg in call.args:
            if (
                isinstance(arg, ast.Attribute)
                and arg.attr == "SEND"
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "Op"
            ):
                return True
    return False


@register_flow(
    "REP007",
    "every call path reaching a raw send must carry a SEND charge or a "
    "justified uncharged-mirror annotation",
    annotation="uncharged-mirror",
)
def check_charge_flow(project: Project) -> Iterable[Finding]:
    graph = project.graph
    entries = entry_qualnames(graph)
    findings: List[Finding] = []
    justified_cache: Dict[str, bool] = {}

    def justified(qualname: str) -> bool:
        cached = justified_cache.get(qualname)
        if cached is None:
            info = graph.functions[qualname]
            cached = project.fn_annotated(
                info, "uncharged-mirror"
            ) or _charges_send(info.node)
            justified_cache[qualname] = cached
        return cached

    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        ctx = project.context(fn.path)
        if ctx is None or fn.path == _NETWORK_WRAPPER:
            continue
        for call in _own_calls(fn.node):
            name = call_name(call)
            if name not in _SEND_NAMES or not isinstance(call.func, ast.Attribute):
                continue
            if trailing_name(call.func.value) == "network":
                continue  # the charging wrapper itself
            if _is_wrapper_subclass_send(ctx, call):
                continue  # super() delegation inside a Network subclass
            if ctx.annotated("uncharged-mirror", call.lineno):
                continue
            if _charges_send(fn.node):
                continue  # the enclosing function carries the charge
            path = unjustified_path(graph, entries, qualname, justified)
            if path is None:
                continue  # unreachable from statements, or all paths cleared
            findings.append(
                Finding(
                    rule="REP007",
                    path=fn.path,
                    line=call.lineno,
                    column=call.col_offset,
                    message=(
                        f"raw send '{expr_text(call.func)}(...)' is reachable "
                        "from a statement entry point with no SEND charge and "
                        "no 'uncharged-mirror' annotation anywhere on the "
                        f"path: {render_path(graph, path, fn)}; charge the "
                        "message through the Network wrapper or annotate one "
                        "function on the path with "
                        "'# repro: uncharged-mirror=<reason>'"
                    ),
                )
            )
    return findings


# ================================================== REP009: undo domination

_SCOPE_GUARDS = {"_check_no_open_scope", "_assert_no_open_scope"}


def _calls_scope_guard(fn_node: ast.AST) -> bool:
    """Whether the function refuses to run inside an open undo scope — the
    membership/bulk-path dominator (``_check_no_open_scope``)."""
    for call in _own_calls(fn_node):
        if call_name(call) in _SCOPE_GUARDS:
            return True
    return False


@register_flow(
    "REP009",
    "storage mutations reachable from statement entry points must be "
    "dominated by undo recording (or a scope guard) on every path",
    annotation="no-undo",
)
def check_undo_domination(project: Project) -> Iterable[Finding]:
    graph = project.graph
    entries = entry_qualnames(graph)
    findings: List[Finding] = []
    safe_cache: Dict[str, bool] = {}

    def safe(qualname: str) -> bool:
        cached = safe_cache.get(qualname)
        if cached is None:
            info = graph.functions[qualname]
            cached = (
                project.fn_annotated(info, "no-undo")
                or _touches_undo(info.node)
                or _calls_scope_guard(info.node)
            )
            safe_cache[qualname] = cached
        return cached

    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        ctx = project.context(fn.path)
        if ctx is None:
            continue
        fn_is_safe: Optional[bool] = None
        for call in _own_calls(fn.node):
            site = _is_storage_mutation(call)
            if site is None:
                continue
            if ctx.annotated("no-undo", call.lineno):
                continue
            if fn_is_safe is None:
                fn_is_safe = safe(qualname)
            if fn_is_safe:
                continue  # the mutating function records undo itself
            path = unjustified_path(
                graph, entries, qualname, safe, via={"direct", "self"}
            )
            if path is None:
                continue  # dominated (or not statement-reachable)
            findings.append(
                Finding(
                    rule="REP009",
                    path=fn.path,
                    line=call.lineno,
                    column=call.col_offset,
                    message=(
                        f"storage mutation '{site}(...)' is reachable from a "
                        "statement entry point with no undo recording, scope "
                        "guard, or 'no-undo' annotation on the path: "
                        f"{render_path(graph, path, fn)}; rollback along that "
                        "path would restore base relations but not this "
                        "state — record an undo action on the path or "
                        "annotate '# repro: no-undo=<why rollback can never "
                        "see this>'"
                    ),
                )
            )
    return findings


# REP008 lives in .taint (the summary-based dataflow engine is big enough
# to deserve its own module); importing it registers the rule.
from . import taint as _taint  # noqa: E402  (registration side effect)

_ = _taint
