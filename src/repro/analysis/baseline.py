"""Baseline files: accepted findings that do not fail the build.

A baseline is a JSON document listing finding fingerprints (see
:mod:`repro.analysis.findings` — fingerprints are line-number free, so
unrelated edits do not churn the file).  The engine drops baselined
findings from its report and, symmetrically, reports baseline entries
that no longer match anything as **stale**, so fixed violations must be
removed from the baseline — it can only ever shrink silently, never grow.

The repo ships an *empty* baseline (``analysis-baseline.json``): every
pre-existing violation was fixed or annotated instead of grandfathered.
The mechanism exists for downstream forks and for staging large sweeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Set

from .findings import Finding

_VERSION = 1


@dataclass
class Baseline:
    """Accepted fingerprints plus enough context to keep the file legible."""

    fingerprints: Set[str] = field(default_factory=set)
    #: fingerprint -> descriptive entry, preserved on rewrite
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def covers(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    @staticmethod
    def from_findings(findings: List[Finding]) -> "Baseline":
        baseline = Baseline()
        for finding in findings:
            baseline.fingerprints.add(finding.fingerprint)
            baseline.entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "message": finding.message,
            }
        return baseline

    def to_json(self) -> str:
        entries = [
            self.entries.get(fp, {"fingerprint": fp})
            for fp in sorted(self.fingerprints)
        ]
        return json.dumps(
            {"version": _VERSION, "findings": entries}, indent=2, sort_keys=True
        ) + "\n"


def load_baseline(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r}; "
            f"this tool writes version {_VERSION}"
        )
    baseline = Baseline()
    for entry in payload.get("findings", []):
        fingerprint = str(entry["fingerprint"])
        baseline.fingerprints.add(fingerprint)
        baseline.entries[fingerprint] = dict(entry)
    return baseline


def save_baseline(path: str, baseline: Baseline) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(baseline.to_json())
