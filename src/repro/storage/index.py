"""Local (single-node) indexes over heap fragments.

The paper distinguishes *clustered* indexes — the fragment is physically
ordered on the indexed attribute, so all tuples matching one key sit on the
leaf page the search lands on — from *non-clustered* ones, where each match
costs a separate FETCH.  The index itself is a hash-shaped map from key to
local rowids; ordered access (for sort-merge joins) is provided on demand.

Teradata-style constraint honoured by the cluster layer: a fragment can be
clustered on at most one attribute.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .heap import HeapTable
from .schema import Row


class IndexError_(KeyError):
    """Raised on index maintenance errors (named to avoid the builtin)."""


class LocalIndex:
    """An index on one column of one node's heap fragment."""

    def __init__(self, table: HeapTable, column: str, clustered: bool = False) -> None:
        self.table = table
        self.column = column
        self.clustered = clustered
        self._position = table.schema.index_of(column)
        self._entries: Dict[object, List[int]] = {}
        for rowid, row in table.scan():
            self._entries.setdefault(row[self._position], []).append(rowid)

    def __len__(self) -> int:
        return sum(len(rowids) for rowids in self._entries.values())

    def key_of(self, row: Row) -> object:
        return row[self._position]

    def on_insert(self, rowid: int, row: Row) -> None:
        self._entries.setdefault(row[self._position], []).append(rowid)

    def on_delete(self, rowid: int, row: Row) -> None:
        key = row[self._position]
        rowids = self._entries.get(key)
        if not rowids or rowid not in rowids:
            raise IndexError_(
                f"index on {self.table.schema.name}.{self.column} has no "
                f"entry for rowid {rowid} under key {key!r}"
            )
        rowids.remove(rowid)
        if not rowids:
            del self._entries[key]

    def search(self, key: object) -> List[int]:
        """Local rowids of tuples whose indexed column equals ``key``."""
        return list(self._entries.get(key, ()))

    def lookup_rows(self, key: object) -> List[Row]:
        """Matching rows themselves (search + fetch)."""
        return [self.table.fetch(rowid) for rowid in self.search(key)]

    def keys(self) -> Iterator[object]:
        return iter(self._entries.keys())

    def distinct_keys(self) -> int:
        return len(self._entries)

    def sorted_items(self) -> List[Tuple[object, List[int]]]:
        """(key, rowids) pairs in key order — the sorted run a sort-merge
        join consumes.  Building it models the sort; callers charge the sort
        cost through the ledger."""
        return sorted(self._entries.items(), key=lambda item: item[0])  # type: ignore[arg-type]

    def matches_per_key_fit_one_page(self, key: object) -> bool:
        """Whether all matches for ``key`` co-reside on one page.

        True by construction for clustered indexes under the paper's
        assumption (5)/(7); used by the cost layer to decide whether fetches
        are free.
        """
        if not self.clustered:
            return False
        return len(self._entries.get(key, ())) <= self.table.layout.tuples_per_page


class IndexedHeap:
    """A heap fragment plus the set of indexes maintained over it.

    Keeps heap and indexes in lockstep; the cluster's node object wraps one
    of these per stored fragment.
    """

    def __init__(self, table: HeapTable) -> None:
        self.table = table
        self.indexes: Dict[str, LocalIndex] = {}

    def create_index(self, column: str, clustered: bool = False) -> LocalIndex:
        if clustered and any(ix.clustered for ix in self.indexes.values()):
            existing = next(c for c, ix in self.indexes.items() if ix.clustered)
            raise IndexError_(
                f"{self.table.schema.name!r} is already clustered on "
                f"{existing!r}; a fragment can be clustered on one attribute"
            )
        index = LocalIndex(self.table, column, clustered=clustered)
        self.indexes[column] = index
        return index

    def index_on(self, column: str) -> LocalIndex | None:
        return self.indexes.get(column)

    def insert(self, row: Row) -> int:
        rowid = self.table.insert(row)
        for index in self.indexes.values():
            index.on_insert(rowid, row)
        return rowid

    def insert_many(self, rows) -> "list[int]":
        """Bulk insert keeping every index in lockstep.

        Equivalent to N :meth:`insert` calls — same rowids, same index
        entry order — with the per-row Python overhead amortized.
        """
        rows = list(rows)
        rowids = self.table.insert_many(rows)
        for index in self.indexes.values():
            on_insert = index.on_insert
            for rowid, row in zip(rowids, rows):
                on_insert(rowid, row)
        return rowids

    def delete(self, rowid: int) -> Row:
        row = self.table.delete(rowid)
        for index in self.indexes.values():
            index.on_delete(rowid, row)
        return row

    def restore(self, rowid: int, row: Row) -> None:
        """Undo a delete: revive the row under its original rowid and
        re-enter it into every index (rollback path; uncharged here —
        the undo log owns cost attribution)."""
        self.table.restore(rowid, row)
        for index in self.indexes.values():
            index.on_insert(rowid, row)

    def delete_matching(self, row: Row) -> int:
        """Delete one stored tuple equal to ``row``; returns its rowid."""
        for rowid, stored in self.table.scan():
            if stored == row:
                self.delete(rowid)
                return rowid
        raise IndexError_(f"no tuple equal to {row!r} in {self.table.schema.name!r}")
