"""Heap tables: the per-node storage for base-relation fragments.

A :class:`HeapTable` holds one node's fragment of a partitioned relation.
Rows get monotonically increasing *local row ids*; deletion leaves a hole
(ids are never reused), which is exactly the property global indexes need:
a (node, local rowid) pair identifies a tuple for its whole lifetime.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from .pages import PageLayout, DEFAULT_LAYOUT
from .schema import Row, Schema


class RowNotFound(KeyError):
    """Raised when a local rowid does not identify a live row."""


class HeapTable:
    """An append-mostly heap of rows with stable local row ids."""

    def __init__(self, schema: Schema, layout: PageLayout = DEFAULT_LAYOUT) -> None:
        self.schema = schema
        self.layout = layout
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def insert(self, row: Row) -> int:
        """Insert ``row``; returns its local rowid."""
        self.schema.check_row(row)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        return rowid

    def insert_many(self, rows) -> List[int]:
        """Bulk insert; returns the local rowids in input order.

        Semantically identical to N :meth:`insert` calls (same rowids, same
        validation) but performs one dict update instead of N — the heap
        half of the batched execution engine's bulk-apply path.
        """
        rows = list(rows)
        check = self.schema.check_row
        for row in rows:
            check(row)
        first = self._next_rowid
        rowids = list(range(first, first + len(rows)))
        self._rows.update(zip(rowids, rows))
        self._next_rowid = first + len(rows)
        return rowids

    def fetch(self, rowid: int) -> Row:
        """The row stored under ``rowid``."""
        try:
            return self._rows[rowid]
        except KeyError:
            raise RowNotFound(
                f"rowid {rowid} not present in {self.schema.name!r}"
            ) from None

    def delete(self, rowid: int) -> Row:
        """Delete and return the row stored under ``rowid``."""
        try:
            return self._rows.pop(rowid)
        except KeyError:
            raise RowNotFound(
                f"rowid {rowid} not present in {self.schema.name!r}"
            ) from None

    def restore(self, rowid: int, row: Row) -> None:
        """Re-insert a previously deleted row under its *original* rowid.

        Used by transactional rollback (see :mod:`repro.faults.undo`): global
        indexes identify tuples by ``(node, rowid)``, so undoing a delete must
        bring the row back under the same id — a plain :meth:`insert` would
        mint a fresh one and orphan every GI entry pointing at the old id.
        """
        if rowid in self._rows:
            raise ValueError(
                f"rowid {rowid} is still live in {self.schema.name!r}; "
                "restore() only revives deleted rows"
            )
        self.schema.check_row(row)
        self._rows[rowid] = row
        if rowid >= self._next_rowid:
            self._next_rowid = rowid + 1

    def delete_where(self, predicate: Callable[[Row], bool]) -> List[Tuple[int, Row]]:
        """Delete every row satisfying ``predicate``; returns (rowid, row) pairs."""
        victims = [(rid, row) for rid, row in self._rows.items() if predicate(row)]
        for rid, _ in victims:
            del self._rows[rid]
        return victims

    def update(self, rowid: int, row: Row) -> Row:
        """Replace the row under ``rowid`` in place; returns the old row."""
        self.schema.check_row(row)
        old = self.fetch(rowid)
        self._rows[rowid] = row
        return old

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Iterate (rowid, row) pairs in insertion order."""
        return iter(self._rows.items())

    def rows(self) -> List[Row]:
        """A snapshot list of all live rows."""
        return list(self._rows.values())

    @property
    def next_rowid(self) -> int:
        """The rowid the next insert will receive (rowids are never reused).

        Lets the parallel execution engine precompute the placements of a
        batch of inserts before shipping them to a node worker: a batch of
        ``n`` rows lands on ``next_rowid .. next_rowid + n - 1``, exactly as
        :meth:`insert_many` assigns them.
        """
        return self._next_rowid

    @property
    def num_pages(self) -> int:
        """Pages occupied by this fragment (dense-packing approximation)."""
        return self.layout.pages_for_tuples(len(self._rows))

    def page_of(self, rowid: int) -> int:
        """The page a live row sits on.

        For a heap we approximate dense packing by live-row rank; for
        clustered tables the clustered index owns page placement and this is
        only used as a fallback.
        """
        self.fetch(rowid)
        return self.layout.page_of(rowid)
