"""Single-node storage substrate: schemas, pages, heaps, indexes."""

from .schema import Column, Row, Schema, SchemaError, concat_schemas
from .pages import DEFAULT_LAYOUT, PageLayout
from .heap import HeapTable, RowNotFound
from .index import IndexedHeap, LocalIndex
from .global_index import GlobalIndexPartition, GlobalRowId

__all__ = [
    "Column",
    "Row",
    "Schema",
    "SchemaError",
    "concat_schemas",
    "PageLayout",
    "DEFAULT_LAYOUT",
    "HeapTable",
    "RowNotFound",
    "LocalIndex",
    "IndexedHeap",
    "GlobalIndexPartition",
    "GlobalRowId",
]
