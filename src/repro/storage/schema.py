"""Relational schemas.

A :class:`Schema` names an ordered list of columns.  Rows are plain Python
tuples positionally aligned with the schema; the schema provides the
name-to-position mapping and helpers for projection and concatenation, which
is all the join-view machinery needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

Row = Tuple[object, ...]


class SchemaError(ValueError):
    """Raised for schema misuse: unknown columns, duplicate names, arity."""


@dataclass(frozen=True)
class Column:
    """A named, typed column of a relation.

    ``kind`` is advisory (used by generators and the SQLite backend to pick
    column affinities); the in-memory engine stores arbitrary Python values.
    """

    name: str
    kind: type = object

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"column name must be an identifier: {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered, named collection of columns.

    ``name`` is the relation (or view) name the schema describes.  Column
    names must be unique within a schema.
    """

    name: str
    columns: Tuple[Column, ...]
    _positions: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("schema must have a name")
        positions: dict[str, int] = {}
        for i, column in enumerate(self.columns):
            if column.name in positions:
                raise SchemaError(
                    f"duplicate column {column.name!r} in schema {self.name!r}"
                )
            positions[column.name] = i
        object.__setattr__(self, "_positions", positions)

    @classmethod
    def of(cls, name: str, *column_names: str, kinds: Sequence[type] | None = None) -> "Schema":
        """Build a schema from bare column names (all ``object``-typed unless
        ``kinds`` supplies a parallel list of types)."""
        if kinds is None:
            columns = tuple(Column(c) for c in column_names)
        else:
            if len(kinds) != len(column_names):
                raise SchemaError("kinds must parallel column_names")
            columns = tuple(Column(c, k) for c, k in zip(column_names, kinds))
        return cls(name, columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._positions

    def index_of(self, column_name: str) -> int:
        """Position of ``column_name`` within a row tuple."""
        try:
            return self._positions[column_name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no column {column_name!r}; "
                f"columns are {self.column_names}"
            ) from None

    def value(self, row: Row, column_name: str) -> object:
        """Extract a named column's value from a row."""
        return row[self.index_of(column_name)]

    def check_row(self, row: Row) -> None:
        """Validate a row's arity against this schema."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row of arity {len(row)} does not match schema "
                f"{self.name!r} of arity {self.arity}"
            )

    def project(self, column_names: Iterable[str], name: str | None = None) -> "Schema":
        """A new schema containing only ``column_names``, in the given order."""
        names = tuple(column_names)
        columns = tuple(self.columns[self.index_of(c)] for c in names)
        return Schema(name or self.name, columns)

    def projector(self, column_names: Iterable[str]):
        """A fast row-projection callable for the given columns."""
        positions = tuple(self.index_of(c) for c in column_names)
        def project(row: Row) -> Row:
            return tuple(row[i] for i in positions)
        return project

    def rename(self, name: str) -> "Schema":
        return Schema(name, self.columns)

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every column renamed ``<prefix>_<column>`` — used when
        concatenating join operands whose column names collide."""
        return Schema(
            self.name,
            tuple(Column(f"{prefix}_{c.name}", c.kind) for c in self.columns),
        )


def concat_schemas(name: str, left: Schema, right: Schema) -> Schema:
    """Schema of the concatenation of a ``left`` row and a ``right`` row.

    Collisions are resolved by prefixing colliding columns of *both* sides
    with their relation names, mirroring SQL's qualified-name convention.
    """
    left_names = set(left.column_names)
    right_names = set(right.column_names)
    collisions = left_names & right_names

    def resolved(schema: Schema) -> Iterable[Column]:
        for column in schema.columns:
            if column.name in collisions:
                yield Column(f"{schema.name}_{column.name}", column.kind)
            else:
                yield column

    return Schema(name, tuple(resolved(left)) + tuple(resolved(right)))
