"""Global indexes.

A global index on ``R.c`` maps each value of ``c`` to the *global row ids*
of all tuples of ``R`` holding that value, where a global row id is a
``(node, local rowid)`` pair (paper §2.1.3).  The index itself is hash
partitioned on ``c`` across the same L nodes, so probing it for one key
touches exactly one node.

A global index is *distributed clustered* when the base relation's fragments
are physically clustered on ``c`` at every node — then all of a node's
matches for one key sit on one page and cost one FETCH; otherwise each match
costs its own FETCH.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class GlobalRowId:
    """Identifies one tuple cluster-wide: the node it lives on plus its
    local rowid within that node's fragment."""

    node: int
    rowid: int


class GlobalIndexPartition:
    """One node's partition of a global index: the entries whose key hashes
    to this node."""

    def __init__(self, relation_name: str, column: str) -> None:
        self.relation_name = relation_name
        self.column = column
        self._entries: Dict[object, List[GlobalRowId]] = {}

    def __len__(self) -> int:
        return sum(len(grids) for grids in self._entries.values())

    def insert(self, key: object, grid: GlobalRowId) -> None:
        self._entries.setdefault(key, []).append(grid)

    def insert_many(self, entries: Iterable[Tuple[object, GlobalRowId]]) -> None:
        """Bulk insert of ``(key, grid)`` pairs, order-preserving per key."""
        setdefault = self._entries.setdefault
        for key, grid in entries:
            setdefault(key, []).append(grid)

    def delete(self, key: object, grid: GlobalRowId) -> None:
        grids = self._entries.get(key)
        if not grids or grid not in grids:
            raise KeyError(
                f"global index on {self.relation_name}.{self.column}: "
                f"no entry {grid} under key {key!r}"
            )
        grids.remove(grid)
        if not grids:
            del self._entries[key]

    def search(self, key: object) -> List[GlobalRowId]:
        """All global row ids of base tuples whose column equals ``key``."""
        return list(self._entries.get(key, ()))

    def search_grouped(self, key: object) -> Dict[int, List[GlobalRowId]]:
        """Matches for ``key`` grouped by the node the tuples reside on.

        The grouping determines K — the number of nodes the maintenance
        step must visit for this key.
        """
        grouped: Dict[int, List[GlobalRowId]] = {}
        for grid in self._entries.get(key, ()):
            grouped.setdefault(grid.node, []).append(grid)
        return grouped

    def keys(self) -> Iterable[object]:
        return self._entries.keys()

    def items(self) -> Iterable[Tuple[object, List[GlobalRowId]]]:
        return self._entries.items()

    def entries(self) -> List[Tuple[object, GlobalRowId]]:
        """Flattened ``(key, grid)`` pairs — the auditor's unit of compare."""
        return [
            (key, grid) for key, grids in self._entries.items() for grid in grids
        ]

    def clear(self) -> None:
        """Drop every entry (used by naive-recomputation repair)."""
        self._entries.clear()
