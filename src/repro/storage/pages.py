"""Page arithmetic.

The paper's analytical model reasons in disk pages: a relation ``B`` occupies
``|B|`` pages, each node's fragment occupies ``|B|/L`` pages, sorting a
fragment costs ``|B_i| * log_M |B_i|`` I/Os with ``M`` pages of memory.  The
in-memory engine does not persist pages, but it *accounts* in them, so the
layout (tuples per page) is a first-class parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PageLayout:
    """How many tuples fit on one page, and how much memory is available.

    ``tuples_per_page`` converts tuple counts into page counts.
    ``memory_pages`` is ``M`` in the paper: the sort fan-in for external
    merge sort and the threshold below which a fragment sorts in memory.
    """

    tuples_per_page: int = 100
    memory_pages: int = 100

    def __post_init__(self) -> None:
        if self.tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        if self.memory_pages < 2:
            raise ValueError("memory_pages must be >= 2 (merge sort needs fan-in)")

    def pages_for_tuples(self, num_tuples: int) -> int:
        """Pages occupied by ``num_tuples`` tuples (ceiling division)."""
        if num_tuples < 0:
            raise ValueError("num_tuples must be >= 0")
        return -(-num_tuples // self.tuples_per_page)

    def page_of(self, slot: int) -> int:
        """The page a given heap slot lives on (dense packing)."""
        if slot < 0:
            raise ValueError("slot must be >= 0")
        return slot // self.tuples_per_page

    def sort_cost_pages(self, fragment_pages: int) -> float:
        """I/O cost of sorting a ``fragment_pages``-page fragment.

        The paper approximates external sort as ``B_i * log_M B_i`` I/Os and
        treats fragments that fit in memory as a single scan.
        """
        if fragment_pages <= 0:
            return 0.0
        if fragment_pages <= self.memory_pages:
            return float(fragment_pages)
        return fragment_pages * math.log(fragment_pages, self.memory_pages)

    def scan_cost_pages(self, fragment_pages: int) -> float:
        """I/O cost of scanning a fragment: one I/O per page."""
        return float(max(0, fragment_pages))


DEFAULT_LAYOUT = PageLayout()
