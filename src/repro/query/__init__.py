"""The read side: queries, view matching, and the query engine."""

from .query import Comparison, Filter, Query
from .matching import ViewMatch, find_matches, match_view
from .engine import QueryEngine, QueryResult

__all__ = [
    "Query",
    "Filter",
    "Comparison",
    "ViewMatch",
    "match_view",
    "find_matches",
    "QueryEngine",
    "QueryResult",
]
