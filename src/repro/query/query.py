"""Query descriptions: select-project-join over the warehouse.

The paper's premise is that materialized join views exist "to speed up
query execution".  A :class:`Query` is the read-side counterpart of a
:class:`~repro.core.view.JoinViewDefinition`: the same equi-join graph,
plus simple column filters, asking for a projection of the join result.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core.view import JoinCondition, ViewDefinitionError


class Comparison(enum.Enum):
    """Filter comparisons supported by the engine."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def evaluate(self) -> Callable[[object, object], bool]:
        return {
            Comparison.EQ: operator.eq,
            Comparison.NE: operator.ne,
            Comparison.LT: operator.lt,
            Comparison.LE: operator.le,
            Comparison.GT: operator.gt,
            Comparison.GE: operator.ge,
        }[self]


@dataclass(frozen=True)
class Filter:
    """A single-column predicate: ``relation.column <op> value``."""

    relation: str
    column: str
    comparison: Comparison
    value: object

    def matches(self, cell: object) -> bool:
        return self.comparison.evaluate(cell, self.value)

    def describe(self) -> str:
        return f"{self.relation}.{self.column} {self.comparison.value} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """A conjunctive select-project-join query.

    ``select`` lists (relation, column) outputs; ``conditions`` is the
    equi-join graph over ``relations`` (empty for single-relation queries);
    ``filters`` are ANDed single-column predicates.
    """

    relations: Tuple[str, ...]
    select: Tuple[Tuple[str, str], ...]
    conditions: Tuple[JoinCondition, ...] = ()
    filters: Tuple[Filter, ...] = ()

    def __post_init__(self) -> None:
        if not self.relations:
            raise ViewDefinitionError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise ViewDefinitionError("query relations must be distinct")
        if not self.select:
            raise ViewDefinitionError("a query needs a select list")
        known = set(self.relations)
        for relation, _ in self.select:
            if relation not in known:
                raise ViewDefinitionError(
                    f"select references {relation!r}, not in FROM {known}"
                )
        for condition in self.conditions:
            if condition.left not in known or condition.right not in known:
                raise ViewDefinitionError(
                    f"condition {condition} references a relation outside FROM"
                )
        for item in self.filters:
            if item.relation not in known:
                raise ViewDefinitionError(
                    f"filter on {item.relation!r}, not in FROM {known}"
                )
        if len(self.relations) > 1:
            self._check_joined()

    def _check_joined(self) -> None:
        """Multi-relation queries must be connected (no cross products)."""
        adjacency: Dict[str, set] = {r: set() for r in self.relations}
        for condition in self.conditions:
            adjacency[condition.left].add(condition.right)
            adjacency[condition.right].add(condition.left)
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            for neighbour in adjacency[frontier.pop()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if seen != set(self.relations):
            raise ViewDefinitionError(
                "query join graph is not connected (cross products are "
                "not supported)"
            )

    def equality_filter_on(self, relation: str, column: str) -> Optional[Filter]:
        """The first ``relation.column = value`` filter, if any — the handle
        a partitioned view or index can exploit."""
        for item in self.filters:
            if (
                item.relation == relation
                and item.column == column
                and item.comparison is Comparison.EQ
            ):
                return item
        return None

    def describe(self) -> str:
        outputs = ", ".join(f"{r}.{c}" for r, c in self.select)
        joins = " and ".join(
            f"{c.left}.{c.left_column}={c.right}.{c.right_column}"
            for c in self.conditions
        )
        where = " and ".join(f.describe() for f in self.filters)
        parts = [f"select {outputs}", f"from {', '.join(self.relations)}"]
        if joins or where:
            parts.append("where " + " and ".join(p for p in (joins, where) if p))
        return " ".join(parts)
