"""View matching: can a materialized join view answer a query?

A view answers a query when it joins exactly the same relations on the
same equi-join graph, projects every column the query selects, and keeps
every column the query filters on.  (Classic view-matching is far more
general; this covers the paper's setting, where views are defined for the
queries they serve.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster.catalog import ViewInfo
from ..core.view import BoundView, JoinCondition, JoinViewDefinition
from .query import Query


def _condition_key(condition: JoinCondition) -> Tuple:
    """Symmetric identity of an equi-join edge."""
    left = (condition.left, condition.left_column)
    right = (condition.right, condition.right_column)
    return (left, right) if left <= right else (right, left)


@dataclass(frozen=True)
class ViewMatch:
    """A usable rewrite of a query onto a materialized view."""

    view: ViewInfo
    #: position in the view row of each query select item, in order
    select_positions: Tuple[int, ...]
    #: (view-row position, Filter) pairs for the query's filters
    filter_positions: Tuple[Tuple[int, object], ...]
    #: the view's partition column equality value, when the query pins it
    partition_key: Optional[object]


def match_view(query: Query, view: ViewInfo, bound: BoundView) -> Optional[ViewMatch]:
    """A :class:`ViewMatch` if ``view`` answers ``query``, else None."""
    definition: JoinViewDefinition = bound.definition
    if set(definition.relations) != set(query.relations):
        return None
    if {_condition_key(c) for c in definition.conditions} != {
        _condition_key(c) for c in query.conditions
    }:
        return None
    available = {item: position for position, item in enumerate(bound.select)}
    select_positions: List[int] = []
    for item in query.select:
        if item not in available:
            return None
        select_positions.append(available[item])
    filter_positions: List[Tuple[int, object]] = []
    for item in query.filters:
        key = (item.relation, item.column)
        if key not in available:
            return None
        filter_positions.append((available[key], item))
    partition_key = None
    partition_column = getattr(view.partitioner, "column", None)
    if partition_column is not None:
        source = bound.source_of_output(partition_column)
        pinned = query.equality_filter_on(*source)
        if pinned is not None:
            partition_key = pinned.value
    return ViewMatch(
        view=view,
        select_positions=tuple(select_positions),
        filter_positions=tuple(filter_positions),
        partition_key=partition_key,
    )


def find_matches(query: Query, cluster) -> List[ViewMatch]:
    """All registered views that can answer ``query``."""
    matches: List[ViewMatch] = []
    for view in cluster.catalog.views.values():
        bound = getattr(view.maintainer, "bound", None)
        if bound is None:  # pragma: no cover - all maintainers carry one
            continue
        match = match_view(query, view, bound)
        if match is not None:
            matches.append(match)
    return matches
