"""Query execution over the parallel cluster, with and without views.

Two physical strategies, mirroring the warehouse trade-off the paper's
introduction describes:

* **from the base relations** — parallel repartition hash joins: every
  participating fragment is scanned, both sides of each join are hash
  redistributed on the join attribute, and the joins run node-local;
* **from a materialized view** — a scan of the view's fragments, or a
  single-node index probe when the query pins the view's partitioning
  attribute with an equality filter (the point of ``PARTITIONED ON``).

``answer`` prices the alternatives and runs the cheapest — making the
speed-up that justifies paying for view maintenance directly measurable.
All query work is charged under :data:`~repro.costs.Tag.QUERY`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..costs import CostSnapshot, Op, Tag
from ..storage.schema import Row
from .matching import ViewMatch, find_matches
from .query import Query

#: Intermediate rows are dicts keyed by (relation, column) — clarity over
#: raw offsets; query paths are read-side and not TW-critical.
_Env = Dict[Tuple[str, str], object]


@dataclass
class QueryResult:
    """Rows plus how they were obtained and what it cost."""

    rows: List[Row]
    plan: str
    snapshot: CostSnapshot

    @property
    def cost_ios(self) -> float:
        return self.snapshot.total_workload([Tag.QUERY])

    @property
    def response_ios(self) -> float:
        return self.snapshot.response_time([Tag.QUERY])


class QueryEngine:
    """Answers queries against one cluster."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------- public

    def answer(self, query: Query) -> QueryResult:
        """Run ``query`` the cheapest known way (view probe, view scan, or
        base join)."""
        options: List[Tuple[float, str]] = [
            (self._estimate_base_join(query), "base")
        ]
        matches = find_matches(query, self.cluster)
        for match in matches:
            options.append(
                (self._estimate_view(match), f"view:{match.view.name}")
            )
        _, choice = min(options, key=lambda pair: pair[0])
        if choice == "base":
            return self.answer_from_base(query)
        view_name = choice.split(":", 1)[1]
        match = next(m for m in matches if m.view.name == view_name)
        return self.answer_from_view(query, match)

    def answer_from_base(self, query: Query) -> QueryResult:
        """Parallel repartition hash join over the base relations."""
        obs = self.cluster.obs
        with obs.span("query", plan="base_join") as root:
            with self.cluster.ledger.measure() as measured:
                with obs.span("base_join", relations=len(query.relations)):
                    env_rows = self._join_base(query)
                rows = self._project(query, env_rows)
            root.tag(rows=len(rows))
        if obs.enabled:
            obs.observe_span_latency(root, kind="query", plan="base_join")
        return QueryResult(rows=rows, plan="base join", snapshot=measured.snapshot)

    def answer_from_view(self, query: Query, match: ViewMatch) -> QueryResult:
        """Scan or probe a materialized view."""
        obs = self.cluster.obs
        physical = "view_probe" if match.partition_key is not None else "view_scan"
        with obs.span("query", plan=physical, view=match.view.name) as root:
            with self.cluster.ledger.measure() as measured:
                with obs.span(physical, view=match.view.name):
                    if match.partition_key is not None:
                        raw = self._probe_view(match)
                        plan = f"view probe ({match.view.name})"
                    else:
                        raw = self._scan_view(match)
                        plan = f"view scan ({match.view.name})"
                rows = [
                    tuple(row[position] for position in match.select_positions)
                    for row in raw
                    if all(
                        flt.matches(row[position])
                        for position, flt in match.filter_positions
                    )
                ]
            root.tag(rows=len(rows))
        if obs.enabled:
            obs.observe_span_latency(root, kind="query", plan=physical)
        return QueryResult(rows=rows, plan=plan, snapshot=measured.snapshot)

    # ------------------------------------------------------ view execution

    def _probe_view(self, match: ViewMatch) -> List[Row]:
        view = match.view
        column = view.partitioner.column
        node_id = view.partitioner.node_of_key(match.partition_key)
        return self.cluster.nodes[node_id].index_probe(
            view.name, column, match.partition_key, Tag.QUERY
        )

    def _scan_view(self, match: ViewMatch) -> List[Row]:
        rows: List[Row] = []
        for node in self.cluster.nodes:
            rows.extend(node.scan(match.view.name, Tag.QUERY))
        return rows

    # ------------------------------------------------------ base execution

    def _relation_rows(self, query: Query, relation: str) -> List[_Env]:
        """Scan (or probe) one relation, applying its own filters.

        An equality filter on the relation's partition column narrows the
        scan to one node; an equality filter on an indexed column becomes
        index probes; otherwise every fragment is scanned.
        """
        info = self.cluster.catalog.relation(relation)
        schema = info.schema
        filters = [f for f in query.filters if f.relation == relation]

        def env_of(row: Row) -> _Env:
            return {
                (relation, column): value
                for column, value in zip(schema.column_names, row)
            }

        def passes(row: Row) -> bool:
            return all(
                flt.matches(row[schema.index_of(flt.column)]) for flt in filters
            )

        pinned = (
            query.equality_filter_on(relation, info.partition_column)
            if info.partition_column
            else None
        )
        if pinned is not None:
            node = self.cluster.nodes[info.partitioner.node_of_key(pinned.value)]
            if info.partition_column in info.indexes:
                rows = node.index_probe(
                    relation, info.partition_column, pinned.value, Tag.QUERY
                )
            else:
                rows = [
                    row for row in node.scan(relation, Tag.QUERY)
                    if row[schema.index_of(info.partition_column)] == pinned.value
                ]
            return [env_of(row) for row in rows if passes(row)]
        for flt in filters:
            if flt.comparison.value == "=" and flt.column in info.indexes:
                rows = []
                for node in self.cluster.nodes:
                    rows.extend(
                        node.index_probe(relation, flt.column, flt.value, Tag.QUERY)
                    )
                return [env_of(row) for row in rows if passes(row)]
        rows = []
        for node in self.cluster.nodes:
            rows.extend(node.scan(relation, Tag.QUERY))
        return [env_of(row) for row in rows if passes(row)]

    def _join_base(self, query: Query) -> List[_Env]:
        order = self._join_order(query)
        current = self._relation_rows(query, order[0])
        joined = [order[0]]
        for partner in order[1:]:
            connecting = [
                condition for condition in query.conditions
                if condition.touches(partner)
                and condition.other(partner)[0] in joined
            ]
            probe, extras = connecting[0], connecting[1:]
            partner_rows = self._relation_rows(query, partner)
            current = self._repartition_join(
                current, partner_rows, probe, extras, partner
            )
            joined.append(partner)
        return current

    def _repartition_join(
        self, left: List[_Env], right: List[_Env], probe, extras, partner
    ) -> List[_Env]:
        """Hash-redistribute both inputs on the join key and join locally.

        Each row crosses the network once (one SEND per row, free when it
        already sits on its key's node — we charge from node 0 as a neutral
        origin because intermediate placement is not tracked per-row here;
        SEND is zero-weighted in the paper's I/O accounting anyway).
        """
        left_key = probe.other(partner)
        right_key = (partner, probe.column_of(partner))
        buckets: Dict[int, Tuple[List[_Env], List[_Env]]] = {}
        for env in left:
            node = self._node_for(env[left_key])
            self.cluster.network.send(0, node, Tag.QUERY)
            buckets.setdefault(node, ([], []))[0].append(env)
        for env in right:
            node = self._node_for(env[right_key])
            self.cluster.network.send(0, node, Tag.QUERY)
            buckets.setdefault(node, ([], []))[1].append(env)
        results: List[_Env] = []
        for left_part, right_part in buckets.values():
            table: Dict[object, List[_Env]] = {}
            for env in right_part:
                table.setdefault(env[right_key], []).append(env)
            for env in left_part:
                for partner_env in table.get(env[left_key], ()):
                    merged = {**env, **partner_env}
                    if all(
                        merged[condition.other(partner)]
                        == merged[(partner, condition.column_of(partner))]
                        for condition in extras
                    ):
                        results.append(merged)
        return results

    def _node_for(self, key: object) -> int:
        from ..cluster.partitioning import stable_hash

        return stable_hash(key) % self.cluster.num_nodes

    def _join_order(self, query: Query) -> List[str]:
        order = [query.relations[0]]
        remaining = list(query.relations[1:])
        while remaining:
            for candidate in remaining:
                if any(
                    condition.touches(candidate)
                    and condition.other(candidate)[0] in order
                    for condition in query.conditions
                ):
                    order.append(candidate)
                    remaining.remove(candidate)
                    break
        return order

    @staticmethod
    def _project(query: Query, envs: List[_Env]) -> List[Row]:
        return [tuple(env[item] for item in query.select) for env in envs]

    # ------------------------------------------------------------ pricing

    def _estimate_base_join(self, query: Query) -> float:
        """Pages touched: every participating relation is read in full
        unless an equality filter pins its partition column."""
        total = 0.0
        for relation in query.relations:
            info = self.cluster.catalog.relation(relation)
            pages = self.cluster.relation_pages(relation)
            pinned = (
                query.equality_filter_on(relation, info.partition_column)
                if info.partition_column
                else None
            )
            if pinned is not None:
                total += 1.0  # one probe/partial scan at one node
            else:
                total += pages
        return total

    def _estimate_view(self, match: ViewMatch) -> float:
        if match.partition_key is not None:
            return 2.0  # one SEARCH + a page of matches
        return float(max(1, self.cluster.relation_pages(match.view.name)))
