"""The deterministic, seed-driven fault injector.

The injector is the single oracle the cluster consults about misfortune:

* the network asks :meth:`FaultInjector.on_message` for the fate of every
  message (delivered / dropped / duplicated / destination down);
* nodes ask :meth:`FaultInjector.should_fail_probe` before serving an
  index or GI probe and :meth:`FaultInjector.is_down` before any local
  work; and
* the recovery controller drives :meth:`crash` / :meth:`restart` manually
  when a schedule calls for operator action.

Determinism contract: given the same :class:`~repro.faults.plan.FaultPlan`,
the same ``seed``, and the same sequence of oracle calls, the injector
returns the same answers — fault runs replay exactly.  Counted events
consume per-event countdowns; probabilistic events draw from one
``random.Random(seed)`` stream.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .plan import FaultEvent, FaultKind, FaultPlan


class MessageFate(enum.Enum):
    """What the interconnect did to one message attempt."""

    DELIVERED = "delivered"
    DROPPED = "dropped"
    DUPLICATED = "duplicated"
    DEST_DOWN = "dest_down"
    SRC_DOWN = "src_down"


@dataclass
class InjectorStats:
    """Raw counts of what the injector actually did."""

    messages_seen: int = 0
    drops: int = 0
    duplicates: int = 0
    probe_failures: int = 0
    crashes: int = 0
    restarts: int = 0


class FaultInjector:
    """Replays a :class:`FaultPlan` deterministically against the cluster."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0) -> None:
        self.plan = plan or FaultPlan()
        self.seed = seed
        self.rng = random.Random(seed)
        self.stats = InjectorStats()
        self.message_count = 0
        self._down: Set[int] = set()
        # Mutable countdowns, keyed by event identity (plans stay pure data).
        self._remaining: Dict[int, int] = {
            id(e): e.times for e in self.plan.events if e.probability is None
        }
        self._fired_triggers: Set[int] = set()
        self._apply_due_triggers()

    # ------------------------------------------------------------ liveness

    def is_down(self, node: int) -> bool:
        self._apply_due_triggers()
        return node in self._down

    @property
    def down_nodes(self) -> List[int]:
        self._apply_due_triggers()
        return sorted(self._down)

    def crash(self, node: int) -> None:
        """Manually crash a node (takes effect immediately)."""
        if node not in self._down:
            self._down.add(node)
            self.stats.crashes += 1

    def restart(self, node: int) -> None:
        """Manually restore a crashed node."""
        if node in self._down:
            self._down.discard(node)
            self.stats.restarts += 1

    def restart_all(self) -> List[int]:
        revived = sorted(self._down)
        for node in revived:
            self.restart(node)
        return revived

    def forget(self, node: int) -> None:
        """Drop a crashed node from the down set *without* counting a
        restart — failover decommissions the node instead of reviving it."""
        self._down.discard(node)

    def remap_nodes(self, mapping: Dict[int, int]) -> None:
        """Renumber the down set after a membership change.

        ``mapping`` sends surviving old node ids to their new dense ids;
        ids absent from the mapping (the departed node) are dropped.
        Planned events keep their literal node ids and are interpreted in
        the *new* id space from here on — elastic tests should schedule at
        most one topology change per plan.
        """
        self._down = {mapping[n] for n in self._down if n in mapping}

    def _apply_due_triggers(self) -> None:
        """Fire crash/restart events whose message-count gate has passed."""
        for event in self.plan.events:
            key = id(event)
            if key in self._fired_triggers:
                continue
            if event.kind not in (FaultKind.NODE_CRASH, FaultKind.NODE_RESTART):
                continue
            if self.message_count < event.after_messages:
                continue
            self._fired_triggers.add(key)
            assert event.node is not None
            if event.kind is FaultKind.NODE_CRASH:
                self.crash(event.node)
            else:
                self.restart(event.node)

    # ------------------------------------------------------------ messages

    def on_message(self, src: int, dst: int) -> MessageFate:
        """Decide the fate of one message attempt (counts as an occasion
        for message-scoped faults and advances crash/restart gates)."""
        self.message_count += 1
        self.stats.messages_seen += 1
        self._apply_due_triggers()
        if src in self._down:
            return MessageFate.SRC_DOWN
        if dst in self._down:
            return MessageFate.DEST_DOWN
        if self._consume(FaultKind.MESSAGE_DROP, src=src, dst=dst):
            self.stats.drops += 1
            return MessageFate.DROPPED
        if self._consume(FaultKind.MESSAGE_DUPLICATE, src=src, dst=dst):
            self.stats.duplicates += 1
            return MessageFate.DUPLICATED
        return MessageFate.DELIVERED

    # -------------------------------------------------------------- probes

    def should_fail_probe(self, node: int) -> bool:
        """Whether the next probe at ``node`` fails (consumes one occasion)."""
        self._apply_due_triggers()
        if self._consume(FaultKind.PROBE_FAILURE, node=node):
            self.stats.probe_failures += 1
            return True
        return False

    # ------------------------------------------------------------ internal

    def _consume(
        self,
        kind: FaultKind,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        node: Optional[int] = None,
    ) -> bool:
        for event in self.plan.events:
            if event.kind is not kind:
                continue
            if src is not None and dst is not None:
                if not event.matches_link(src, dst):
                    continue
            elif node is not None and not event.matches_node(node):
                continue
            if event.probability is not None:
                if self.rng.random() < event.probability:
                    return True
                continue
            remaining = self._remaining.get(id(event), 0)
            if remaining > 0:
                self._remaining[id(event)] = remaining - 1
                return True
        return False

    # -------------------------------------------------------------- status

    def exhausted(self) -> bool:
        """True when every counted event has fired (probabilistic events
        never exhaust)."""
        return all(v == 0 for v in self._remaining.values()) and not any(
            e.probability is not None for e in self.plan.events
        )
