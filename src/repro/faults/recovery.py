"""Transactional recovery: undo scopes, statement queueing, replay, degrade.

The :class:`FaultController` is the piece that turns injected faults into
*recoverable* events instead of silent corruption:

* every statement executes inside an **atomic scope** backed by the
  physical :class:`~repro.faults.undo.UndoLog` — a fault anywhere in the
  base-write / co-update / view-maintenance pipeline rolls back base
  fragments, auxiliary relations, GI partitions, and the view together;
* rolled-back statements are **queued** and **replayed** once the cluster
  heals (``recover()`` restarts crashed nodes, then re-executes the queue
  in order); and
* optionally the controller **degrades gracefully**: when only an AR/GI
  node is down, apply the base writes now, mark derived state dirty, and
  restore it at recovery time by naive recomputation
  (:meth:`~repro.faults.audit.ConsistencyAuditor.repair`) — availability
  over freshness, the classic warehouse trade.

Cost attribution: send retries are charged by the network; rollback
writes are charged here (policy-controlled), so robustness overhead is
visible in the paper's TW/RT metrics.  With no faults firing, the scopes
record but never replay, and the ledger is bit-identical to a fault-free
run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

from .audit import ConsistencyAuditor, RepairReport
from .backoff import BackoffPolicy, BackoffState
from .errors import FaultError, NodeDown, ProbeFailure, StatementAborted
from .injector import FaultInjector
from .plan import FaultPlan
from .undo import UndoLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster
    from ..storage.schema import Row


@dataclass(frozen=True)
class RecoveryPolicy:
    """How much protection the cluster buys (and pays for).

    ``max_send_retries``/``max_probe_retries`` bound retry-with-backoff;
    ``dedup`` enables receiver-side duplicate suppression (the duplicate
    SEND is still charged — the wire carried it); ``undo`` enables the
    undo log and statement rollback; ``queue_on_failure`` parks aborted
    statements for replay instead of raising; ``degrade_when_down``
    applies base writes even when a derived-structure node is down,
    repaying with a naive recomputation at recovery; ``charge_rollback``
    bills one write I/O per undone physical write; ``backoff_base`` /
    ``backoff_cap`` / ``backoff_jitter`` shape the seeded exponential
    backoff between send retries (slots are tracked in
    ``NetworkStats.backoff_slots`` and charged as ``Op.BACKOFF`` cells —
    weight 0.0 under the paper's parameters, so TW is unchanged unless a
    sensitivity study prices waiting).
    """

    max_send_retries: int = 3
    max_probe_retries: int = 3
    dedup: bool = True
    undo: bool = True
    queue_on_failure: bool = True
    degrade_when_down: bool = False
    charge_rollback: bool = True
    backoff_base: float = 2.0
    backoff_cap: float = 16.0
    backoff_jitter: float = 0.25

    @classmethod
    def protected(cls) -> "RecoveryPolicy":
        """Full protection (the default)."""
        return cls()

    @classmethod
    def unprotected(cls) -> "RecoveryPolicy":
        """No retries, no dedup, no undo: faults corrupt, visibly."""
        return cls(
            max_send_retries=0, max_probe_retries=0, dedup=False,
            undo=False, queue_on_failure=False, charge_rollback=False,
        )


@dataclass
class QueuedStatement:
    """One rolled-back statement awaiting replay."""

    relation: str
    inserts: List["Row"]
    deletes: List["Row"]
    cause: str
    attempts: int = 0


@dataclass
class ControllerStats:
    """What recovery actually did across the run."""

    rollbacks: int = 0
    rollback_writes: float = 0.0
    queued: int = 0
    replayed: int = 0
    degraded_statements: int = 0
    rebuilds: int = 0


@dataclass
class ReplayReport:
    """Outcome of one ``recover()`` / ``replay_pending()`` pass."""

    replayed: int = 0
    still_pending: int = 0
    rebuilt: Optional[RepairReport] = None


class FaultController:
    """Owns the injector, the recovery policy, and the pending queue for
    one cluster.  Install with :func:`attach_faults`."""

    def __init__(
        self,
        cluster: "Cluster",
        injector: FaultInjector,
        policy: RecoveryPolicy,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.policy = policy
        self.pending: List[QueuedStatement] = []
        self.stats = ControllerStats()
        self._needs_rebuild = False
        self._replaying = False

    def _fault_event(self, kind: str, **tags: object) -> None:
        """Push one live recovery event (counter + trace instant) when a
        live observability facade is attached; free otherwise."""
        obs = self.cluster.obs
        if obs.enabled:
            obs.metrics.counter(
                "repro_recovery_events_total",
                "Recovery actions taken (rollbacks, queueing, degradation, "
                "replays)",
            ).inc(kind=kind)
            obs.event(f"recovery.{kind}", **tags)

    # ------------------------------------------------------------- liveness

    def guard_node(self, node_id: int, what: str = "local operation") -> None:
        """Raise :class:`NodeDown` when ``node_id`` is crashed."""
        if self.injector.is_down(node_id):
            raise NodeDown(node_id, what)

    def require_all_up(self, what: str) -> None:
        down = self.injector.down_nodes
        if down:
            raise NodeDown(down[0], f"{what} requires all nodes up; down: {down}")

    def wasted_probe_attempts(self, node_id: int, what: str) -> int:
        """Consult the injector before a probe: the number of failed
        attempts the node burned before succeeding (0 in the common case).
        Raises :class:`ProbeFailure` when the retry budget is exhausted —
        the caller charges one SEARCH per wasted attempt."""
        if not self.injector.should_fail_probe(node_id):
            return 0
        wasted = 1
        while wasted <= self.policy.max_probe_retries:
            if not self.injector.should_fail_probe(node_id):
                return wasted
            wasted += 1
        raise ProbeFailure(node_id, what, wasted)

    # -------------------------------------------------------- atomic scopes

    @contextmanager
    def atomic(self, description: str) -> Iterator[Optional[UndoLog]]:
        """Run the body all-or-nothing: a :class:`FaultError` inside rolls
        every recorded physical mutation back (and re-raises)."""
        if not self.policy.undo:
            yield None
            return
        cluster = self.cluster
        log = UndoLog()
        cluster._undo_logs.append(log)
        try:
            yield log
        except FaultError as exc:
            cluster._undo_logs.pop()
            report = log.rollback(
                ledger=cluster.ledger, charge=self.policy.charge_rollback
            )
            self.stats.rollbacks += 1
            self.stats.rollback_writes += report.writes_charged
            self._fault_event(
                "rollback", cause=type(exc).__name__,
                writes=report.writes_charged,
            )
            exc.add_context(f"rolled back: {description}")
            raise
        else:
            cluster._undo_logs.pop()
            if cluster._undo_logs:
                log.merge_into(cluster._undo_logs[-1])

    # ------------------------------------------------------------ statements

    def run_statement(
        self,
        relation: str,
        inserts: Sequence["Row"],
        deletes: Sequence["Row"],
    ) -> None:
        """Execute one maintained DML statement under fault protection."""
        description = f"{relation}: +{len(inserts)}/-{len(deletes)}"
        try:
            with self.atomic(description):
                self.cluster._execute_statement(
                    relation, list(inserts), list(deletes)
                )
            return
        except FaultError as exc:
            if not self.policy.undo:
                raise  # unprotected: partial state stays, caller sees the fault
            if self.policy.degrade_when_down and self._can_degrade(
                exc, relation, inserts, deletes
            ):
                self._apply_degraded(relation, inserts, deletes)
                return
            if self.policy.queue_on_failure:
                self.pending.append(
                    QueuedStatement(
                        relation, list(inserts), list(deletes), cause=str(exc)
                    )
                )
                self.stats.queued += 1
                self._fault_event(
                    "queued", relation=relation, cause=type(exc).__name__
                )
                return
            raise StatementAborted(description, cause=exc) from exc

    def _can_degrade(
        self,
        exc: FaultError,
        relation: str,
        inserts: Sequence["Row"],
        deletes: Sequence["Row"],
    ) -> bool:
        """Degradation applies when the fault is a down node that no base
        write of this statement needs — i.e. only derived maintenance is
        blocked."""
        if not isinstance(exc, NodeDown):
            return False
        info = self.cluster.catalog.relation(relation)
        node_of_row = getattr(info.partitioner, "node_of_row", None)
        if node_of_row is None:
            return False
        base_nodes = {node_of_row(row) for row in list(inserts) + list(deletes)}
        return exc.node not in base_nodes

    def _apply_degraded(
        self,
        relation: str,
        inserts: Sequence["Row"],
        deletes: Sequence["Row"],
    ) -> None:
        """Apply only the base writes; derived state is marked dirty and
        rebuilt at recovery by naive recomputation."""
        with self.atomic(f"degraded base write on {relation}"):
            self.cluster._execute_base_writes(
                relation, list(inserts), list(deletes)
            )
        self._needs_rebuild = True
        self.stats.degraded_statements += 1
        self._fault_event("degraded", relation=relation)

    # -------------------------------------------------------------- recovery

    @property
    def needs_rebuild(self) -> bool:
        return self._needs_rebuild

    def replay_pending(self) -> ReplayReport:
        """Re-execute queued statements in arrival order; statements that
        fault again stay queued (in order)."""
        report = ReplayReport()
        queue, self.pending = self.pending, []
        self._replaying = True
        try:
            with self.cluster.obs.span(
                "recovery_replay", queued=len(queue)
            ) as span:
                for statement in queue:
                    try:
                        with self.atomic(
                            f"replay {statement.relation}: "
                            f"+{len(statement.inserts)}/-{len(statement.deletes)}"
                        ):
                            self.cluster._execute_statement(
                                statement.relation,
                                list(statement.inserts),
                                list(statement.deletes),
                            )
                        report.replayed += 1
                        self.stats.replayed += 1
                        self._fault_event("replayed", relation=statement.relation)
                    except FaultError as exc:
                        statement.attempts += 1
                        statement.cause = str(exc)
                        self.pending.append(statement)
                span.tag(replayed=report.replayed, still_pending=len(self.pending))
        finally:
            self._replaying = False
        report.still_pending = len(self.pending)
        return report

    def recover(self, node: Optional[int] = None) -> ReplayReport:
        """Restart crashed node(s), rebuild degraded derived state if
        needed, then replay the queue.

        Rebuild runs *before* replay: replayed statements maintain views
        incrementally through ARs/GIs, which must be current first.
        """
        if node is None:
            self.injector.restart_all()
        else:
            self.injector.restart(node)
        rebuilt: Optional[RepairReport] = None
        if self._needs_rebuild:
            rebuilt = ConsistencyAuditor(self.cluster).repair()
            self._needs_rebuild = False
            self.stats.rebuilds += 1
        report = self.replay_pending()
        report.rebuilt = rebuilt
        return report

    def rebuild_derived(self) -> RepairReport:
        """Force the naive-recomputation fallback right now."""
        self._needs_rebuild = False
        self.stats.rebuilds += 1
        return ConsistencyAuditor(self.cluster).repair()


def attach_faults(
    cluster: "Cluster",
    injector: Optional[FaultInjector] = None,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    policy: Optional[RecoveryPolicy] = None,
) -> FaultController:
    """Install fault injection + recovery on a cluster.

    >>> controller = attach_faults(cluster, plan=FaultPlan().drop(times=1))
    ... # doctest: +SKIP
    """
    if cluster.faults is not None:
        raise ValueError("cluster already has a fault controller attached")
    # Fault semantics are sequence-keyed: statements must run on the serial
    # reference engine (same gate as the batched paths), so stop any worker
    # pool now — its replicas would go stale behind undo/rollback writes.
    cluster._drain_parallel()
    if injector is None:
        injector = FaultInjector(plan, seed=seed)
    elif plan is not None:
        raise ValueError("pass either an injector or a plan, not both")
    if policy is None:
        policy = RecoveryPolicy.protected()
    controller = FaultController(cluster, injector, policy)
    cluster.faults = controller
    network = cluster.network
    network.injector = injector
    network.max_retries = policy.max_send_retries
    network.dedup = policy.dedup
    # Jitter is seeded from the injector so the whole fault run — fates and
    # backoff slots alike — is a function of one seed.
    network.backoff = BackoffState(
        BackoffPolicy(
            base=policy.backoff_base,
            cap=policy.backoff_cap,
            jitter=policy.backoff_jitter,
        ),
        seed=injector.seed,
    )
    for node in cluster.nodes:
        node.faults = controller
    return controller


def detach_faults(cluster: "Cluster") -> None:
    """Remove fault injection; the cluster charges exactly as before."""
    cluster.faults = None
    network = cluster.network
    network.injector = None
    network.max_retries = 0
    network.dedup = True
    network.backoff = BackoffState()
    for node in cluster.nodes:
        node.faults = None
