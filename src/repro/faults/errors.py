"""Fault exception hierarchy.

Everything the fault injector can do to a running statement surfaces as a
:class:`FaultError` subclass.  The recovery layer catches exactly this
hierarchy: any *other* exception is a programming error and propagates —
faults must never be able to mask bugs.

Errors carry a context stack (:meth:`FaultError.add_context`) so a fault
raised deep inside a maintenance hop reports the view, hop, and statement
it interrupted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class FaultError(RuntimeError):
    """Base class of every injected-fault effect."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self._context: List[str] = []

    def add_context(self, note: str) -> "FaultError":
        """Attach a breadcrumb (innermost first); returns self for chaining."""
        self._context.append(note)
        return self

    @property
    def context(self) -> Tuple[str, ...]:
        return tuple(self._context)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if not self._context:
            return base
        return base + " [" + "; ".join(self._context) + "]"


class NodeDown(FaultError):
    """An operation touched a crashed node."""

    def __init__(self, node: int, what: str = "operation") -> None:
        super().__init__(f"node {node} is down ({what})")
        self.node = node


class MessageLost(FaultError):
    """A message was dropped and every retry was exhausted."""

    def __init__(self, src: int, dst: int, attempts: int) -> None:
        super().__init__(
            f"message {src}->{dst} lost after {attempts} attempt(s)"
        )
        self.src = src
        self.dst = dst
        self.attempts = attempts


class ProbeFailure(FaultError):
    """An index/GI probe failed (transient device error) beyond its retries."""

    def __init__(self, node: int, what: str, attempts: int) -> None:
        super().__init__(
            f"probe of {what} failed at node {node} after {attempts} attempt(s)"
        )
        self.node = node
        self.attempts = attempts


class StatementAborted(FaultError):
    """A statement hit a fault and was rolled back (undo applied).

    Raised to the caller only when recovery queuing is disabled; with
    queuing on, the statement is parked for replay instead.
    """

    def __init__(self, description: str, cause: Optional[FaultError] = None) -> None:
        super().__init__(f"statement aborted and rolled back: {description}")
        self.cause = cause
