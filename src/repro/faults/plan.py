"""The fault-schedule DSL.

A :class:`FaultPlan` scripts *what goes wrong and when* against the
simulated cluster, deterministically.  Two trigger styles compose freely:

* **counted** faults fire on concrete occasions — "crash node 2 once the
  3rd message has crossed the interconnect", "drop the next message on
  link (0, 1)", "fail the next probe at node 1"; and
* **probabilistic** faults fire per occasion with a given probability,
  drawn from the injector's seeded RNG, so a whole lossy-interconnect run
  replays bit-identically from its seed.

The plan is pure data; the :class:`~repro.faults.injector.FaultInjector`
consumes it.  Plans are reusable: the injector copies the mutable
countdowns at attach time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple


class FaultKind(enum.Enum):
    """The injectable fault classes of the paper's missing fault model."""

    NODE_CRASH = "node_crash"
    NODE_RESTART = "node_restart"
    MESSAGE_DROP = "message_drop"
    MESSAGE_DUPLICATE = "message_duplicate"
    PROBE_FAILURE = "probe_failure"


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``after_messages`` gates crash/restart events on the interconnect
    message counter; ``link``/``node`` scope drop/duplicate/probe events;
    ``times`` is the number of occasions a counted event fires on;
    ``probability`` switches the event to probabilistic mode (``times`` is
    then ignored).
    """

    kind: FaultKind
    node: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    after_messages: int = 0
    times: int = 1
    probability: Optional[float] = None

    def matches_link(self, src: int, dst: int) -> bool:
        if self.link is not None and self.link != (src, dst):
            return False
        if self.node is not None and self.node not in (src, dst):
            return False
        return True

    def matches_node(self, node: int) -> bool:
        return self.node is None or self.node == node


@dataclass
class FaultPlan:
    """A scriptable schedule of faults (builder-style DSL).

    >>> plan = (FaultPlan()
    ...         .crash(node=2, after_messages=3)
    ...         .restart(node=2, after_messages=10)
    ...         .drop(times=1)
    ...         .duplicate(link=(0, 1))
    ...         .fail_probe(node=1))
    >>> len(plan.events)
    5
    """

    events: List[FaultEvent] = field(default_factory=list)

    # --------------------------------------------------------------- builder

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, node: int, after_messages: int = 0) -> "FaultPlan":
        """Crash ``node`` once ``after_messages`` messages have crossed
        the interconnect (0 = down from the start)."""
        return self._add(
            FaultEvent(FaultKind.NODE_CRASH, node=node, after_messages=after_messages)
        )

    def restart(self, node: int, after_messages: int) -> "FaultPlan":
        """Bring ``node`` back up at the given message count (self-healing
        schedules; explicit recovery uses the controller instead)."""
        return self._add(
            FaultEvent(FaultKind.NODE_RESTART, node=node, after_messages=after_messages)
        )

    def drop(
        self,
        times: int = 1,
        link: Optional[Tuple[int, int]] = None,
        node: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> "FaultPlan":
        """Drop the next ``times`` matching messages (or each matching
        message with ``probability``)."""
        return self._add(
            FaultEvent(
                FaultKind.MESSAGE_DROP,
                link=link, node=node, times=times, probability=probability,
            )
        )

    def duplicate(
        self,
        times: int = 1,
        link: Optional[Tuple[int, int]] = None,
        node: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> "FaultPlan":
        """Deliver the next ``times`` matching messages twice."""
        return self._add(
            FaultEvent(
                FaultKind.MESSAGE_DUPLICATE,
                link=link, node=node, times=times, probability=probability,
            )
        )

    def fail_probe(
        self,
        times: int = 1,
        node: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> "FaultPlan":
        """Make the next ``times`` matching index/GI probes fail once each."""
        return self._add(
            FaultEvent(
                FaultKind.PROBE_FAILURE,
                node=node, times=times, probability=probability,
            )
        )

    # --------------------------------------------------------------- queries

    def counted_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.probability is None]

    def is_empty(self) -> bool:
        return not self.events

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every probabilistic event's probability scaled."""
        scaled_events = [
            replace(e, probability=min(1.0, e.probability * factor))
            if e.probability is not None
            else e
            for e in self.events
        ]
        return FaultPlan(events=scaled_events)

    # ------------------------------------------------------------ schedules

    @classmethod
    def single_fault_schedules(
        cls,
        crash_node: int = 2,
        crash_after_messages: int = 2,
        probe_node: Optional[int] = None,
    ) -> Dict[str, "FaultPlan"]:
        """The canonical one-fault-per-run sweep used by the property test:
        every fault class exactly once, everything else fault-free."""
        return {
            "node_crash": cls().crash(
                node=crash_node, after_messages=crash_after_messages
            ),
            "message_drop": cls().drop(times=1),
            "message_duplication": cls().duplicate(times=1),
            "probe_failure": cls().fail_probe(times=1, node=probe_node),
        }
