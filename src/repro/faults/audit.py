"""The consistency auditor: recompute-and-diff after every fault run.

The materialized view, every auxiliary relation, and every global index
are *derived* state — each is a pure function of the base relations.  The
auditor recomputes those functions from scratch and diffs them against
what the cluster actually stores:

* **views** — bag-compare the materialized rows against a from-scratch
  evaluation of the view definition (deferred views are flushed first, so
  staleness-by-design is not reported as corruption);
* **auxiliary relations** — bag-compare each AR against the
  selection/projection image of its base, and check every stored AR row
  sits on the node its partitioning key hashes to;
* **global indexes** — rebuild the expected ``(home node, key, grid)``
  entry set from the base fragments (rid-lists must point at live rows
  with the right key, homed at the key's hash node) and compare; and
* **base relations** — check hash placement of every stored row.

Auditing is read-only and uncharged (it is the experimenter's oracle, not
part of the modeled system).  :meth:`ConsistencyAuditor.repair` is the
complementary *graceful degradation* path: rebuild all derived state from
the bases by naive recomputation — the fallback when undo/replay recovery
is unavailable or has been bypassed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


@dataclass
class Discrepancy:
    """One detected divergence between stored and recomputed state."""

    kind: str          # "view" | "auxiliary" | "global_index" | "placement"
    name: str
    missing: Counter   # expected but not stored
    unexpected: Counter  # stored but not expected
    detail: str = ""

    def describe(self) -> str:
        parts = [f"[{self.kind}] {self.name}:"]
        if self.missing:
            parts.append(f"missing {sum(self.missing.values())} "
                         f"(e.g. {next(iter(self.missing))!r})")
        if self.unexpected:
            parts.append(f"unexpected {sum(self.unexpected.values())} "
                         f"(e.g. {next(iter(self.unexpected))!r})")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class AuditReport:
    """The outcome of one full audit pass."""

    findings: List[Discrepancy] = field(default_factory=list)
    views_checked: int = 0
    auxiliaries_checked: int = 0
    global_indexes_checked: int = 0
    relations_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = (
            f"audited {self.views_checked} view(s), "
            f"{self.auxiliaries_checked} auxiliary relation(s), "
            f"{self.global_indexes_checked} global index(es), "
            f"{self.relations_checked} base relation(s): "
        )
        if self.ok:
            return head + "consistent"
        lines = [head + f"{len(self.findings)} discrepancy(ies)"]
        lines.extend("  " + finding.describe() for finding in self.findings)
        return "\n".join(lines)


@dataclass
class RepairReport:
    """What :meth:`ConsistencyAuditor.repair` rebuilt."""

    auxiliaries_rebuilt: List[str] = field(default_factory=list)
    global_indexes_rebuilt: List[str] = field(default_factory=list)
    views_rebuilt: List[str] = field(default_factory=list)


class ConsistencyAuditor:
    """Recomputes derived state from the bases and diffs it against storage."""

    def __init__(self, cluster: "Cluster", flush_deferred: bool = True) -> None:
        self.cluster = cluster
        self.flush_deferred = flush_deferred

    # ---------------------------------------------------------------- audit

    def audit(self) -> AuditReport:
        """One full pass over every derived structure and placement."""
        report = AuditReport()
        for name in list(self.cluster.catalog.views):
            report.findings.extend(self.audit_view(name))
            report.views_checked += 1
        for name in list(self.cluster.catalog.auxiliaries):
            report.findings.extend(self.audit_auxiliary(name))
            report.auxiliaries_checked += 1
        for name in list(self.cluster.catalog.global_indexes):
            report.findings.extend(self.audit_global_index(name))
            report.global_indexes_checked += 1
        for name in list(self.cluster.catalog.relations):
            report.findings.extend(self.audit_placement(name))
            report.relations_checked += 1
        report.findings.extend(self.audit_replicas())
        return report

    def audit_replicas(self) -> List[Discrepancy]:
        """Bag-compare every replica copy against its primary fragment.

        Replicas are derived state too: each bag must hold exactly the
        owner's live fragment contents.  Skipped (empty list) when
        replication is disabled.
        """
        replicator = getattr(self.cluster, "replicator", None)
        if replicator is None:
            return []
        findings: List[Discrepancy] = []
        for owner, target, name in replicator._desired_slots():
            expected = Counter(self.cluster.nodes[owner].scan(name))
            actual = Counter(
                dict(self.cluster.nodes[target].replica_bag(owner, name))
            )
            findings.extend(
                self._diff(
                    "replica", f"{name}@{target} (owner {owner})",
                    expected, actual,
                )
            )
        return findings

    def audit_view(self, name: str) -> List[Discrepancy]:
        from ..core.deferred import DeferredMaintainer
        from ..core.registry import recompute_view

        info = self.cluster.catalog.view(name)
        if self.flush_deferred and isinstance(info.maintainer, DeferredMaintainer):
            info.maintainer.flush_if_stale()
        expected = Counter(recompute_view(self.cluster, name))
        actual = Counter(self.cluster.view_rows(name))
        return self._diff("view", name, expected, actual)

    def audit_auxiliary(self, name: str) -> List[Discrepancy]:
        aux = self.cluster.catalog.auxiliary(name)
        expected: Counter = Counter()
        for base_row in self.cluster.scan_relation(aux.base):
            image = aux.image_of(base_row)
            if image is not None:
                expected[image] += 1
        actual: Counter = Counter()
        findings: List[Discrepancy] = []
        for node in self.cluster.nodes:
            if not node.has_fragment(name):
                continue
            misplaced = 0
            for row in node.scan(name):
                actual[row] += 1
                if aux.partitioner.node_of_row(row) != node.node_id:
                    misplaced += 1
            if misplaced:
                findings.append(
                    Discrepancy(
                        kind="placement", name=name,
                        missing=Counter(), unexpected=Counter(),
                        detail=f"{misplaced} row(s) at node {node.node_id} "
                               "hash elsewhere",
                    )
                )
        findings.extend(self._diff("auxiliary", name, expected, actual))
        return findings

    def audit_global_index(self, name: str) -> List[Discrepancy]:
        gi = self.cluster.catalog.global_index(name)
        expected: Counter = Counter()
        for node in self.cluster.nodes:
            if not node.has_fragment(gi.base):
                continue
            for rowid, row in node.fragment(gi.base).table.scan():
                key = row[gi.key_position]
                expected[(gi.home_node(key), key, (node.node_id, rowid))] += 1
        actual: Counter = Counter()
        for node in self.cluster.nodes:
            try:
                partition = node.gi_partition(name)
            except KeyError:
                continue
            for key, grid in partition.entries():
                actual[(node.node_id, key, (grid.node, grid.rowid))] += 1
        return self._diff("global_index", name, expected, actual)

    def audit_placement(self, name: str) -> List[Discrepancy]:
        """Hash-placement check of a base relation's stored rows."""
        info = self.cluster.catalog.relation(name)
        node_of_row = getattr(info.partitioner, "node_of_row", None)
        if node_of_row is None or info.partition_column is None:
            return []  # round-robin: any placement is legal
        findings: List[Discrepancy] = []
        for node in self.cluster.nodes:
            if not node.has_fragment(name):
                continue
            misplaced = sum(
                1 for row in node.scan(name) if node_of_row(row) != node.node_id
            )
            if misplaced:
                findings.append(
                    Discrepancy(
                        kind="placement", name=name,
                        missing=Counter(), unexpected=Counter(),
                        detail=f"{misplaced} row(s) at node {node.node_id} "
                               "hash elsewhere",
                    )
                )
        return findings

    @staticmethod
    def _diff(
        kind: str, name: str, expected: Counter, actual: Counter
    ) -> List[Discrepancy]:
        missing = expected - actual
        unexpected = actual - expected
        if not missing and not unexpected:
            return []
        return [Discrepancy(kind=kind, name=name, missing=missing,
                            unexpected=unexpected)]

    # --------------------------------------------------------------- repair

    def repair(self) -> RepairReport:  # repro: no-undo=repair IS the recovery path; it rebuilds derived state outside any undo scope
        """Naive-recomputation fallback: rebuild every derived structure
        from the base relations.

        This is the graceful-degradation endpoint of the fault model: when
        an AR/GI node came back with unknown state, or recovery was run
        with the undo log disabled, correctness is restored by paying the
        full recomputation the naive method would — an offline rebuild,
        uncharged like the catalog's initial backfills (DESIGN.md § Fault
        model and atomicity).
        """
        from ..core.deferred import DeferredMaintainer
        from ..core.registry import recompute_view
        from ..storage import GlobalRowId

        cluster = self.cluster
        # Repair rebuilds fragments in place, bypassing the superstep
        # engine: drain any worker pool so no replica survives the rebuild.
        cluster._drain_parallel()
        report = RepairReport()
        for name, aux in cluster.catalog.auxiliaries.items():
            for node in cluster.nodes:
                if node.has_fragment(name):
                    fragment = node.fragment(name)
                    for rowid, _ in list(fragment.table.scan()):
                        fragment.delete(rowid)
            for node in cluster.nodes:
                if not node.has_fragment(aux.base):
                    continue
                for row in node.scan(aux.base):
                    image = aux.image_of(row)
                    if image is None:
                        continue
                    dest = aux.partitioner.node_of_row(image)
                    cluster.nodes[dest].fragment(name).insert(image)
            report.auxiliaries_rebuilt.append(name)
        for name, gi in cluster.catalog.global_indexes.items():
            for node in cluster.nodes:
                try:
                    node.gi_partition(name).clear()
                except KeyError:
                    node.create_gi_partition(name, gi.base, gi.column)
            for node in cluster.nodes:
                if not node.has_fragment(gi.base):
                    continue
                for rowid, row in node.fragment(gi.base).table.scan():
                    key = row[gi.key_position]
                    cluster.nodes[gi.home_node(key)].gi_partition(name).insert(
                        key, GlobalRowId(node.node_id, rowid)
                    )
            report.global_indexes_rebuilt.append(name)
        for name, info in cluster.catalog.views.items():
            maintainer = info.maintainer
            if isinstance(maintainer, DeferredMaintainer):
                maintainer.discard_pending()
            for node in cluster.nodes:
                if node.has_fragment(name):
                    fragment = node.fragment(name)
                    for rowid, _ in list(fragment.table.scan()):
                        fragment.delete(rowid)
            info.row_count = 0
            contents = recompute_view(cluster, name)
            for row, multiplicity in contents.items():
                for _ in range(multiplicity):
                    dest = info.partitioner.node_of_row(row)
                    cluster.nodes[dest].fragment(name).insert(row)
                    info.row_count += 1
            report.views_rebuilt.append(name)
        # Rebuilt fragments bypassed the replication hooks: re-converge the
        # replica bags (uncharged, like the rebuild itself).
        cluster._sync_replicas()
        return report
