"""Fault injection, transactional recovery, and view-consistency auditing.

The paper evaluates its three maintenance methods on a fault-free
shared-nothing cluster.  This package drops that assumption:

* :class:`FaultPlan` / :class:`FaultInjector` — a deterministic,
  seed-driven schedule of node crashes/restarts, message drops, message
  duplication, and probe failures;
* :class:`RecoveryPolicy` / :class:`FaultController` /
  :func:`attach_faults` — retry-with-backoff (retries charged as extra
  SENDs), a physical :class:`UndoLog` giving statements all-or-nothing
  semantics across base fragments, auxiliary relations, GI partitions,
  and the view, queued replay of rolled-back statements, and graceful
  degradation to naive recomputation while an AR/GI node is down; and
* :class:`ConsistencyAuditor` — recomputes every derived structure from
  the base relations and diffs it against what the cluster stores.

With faults disabled (or none firing), every ledger charge is
bit-identical to the fault-free engine — the paper's Figure 7-14
reproductions are unchanged.  See DESIGN.md § Fault model and atomicity.
"""

from .errors import (
    FaultError,
    MessageLost,
    NodeDown,
    ProbeFailure,
    StatementAborted,
)
from .plan import FaultEvent, FaultKind, FaultPlan
from .injector import FaultInjector, InjectorStats, MessageFate
from .backoff import BackoffPolicy, BackoffState
from .undo import RollbackReport, UndoEntry, UndoLog
from .recovery import (
    ControllerStats,
    FaultController,
    QueuedStatement,
    RecoveryPolicy,
    ReplayReport,
    attach_faults,
    detach_faults,
)
from .audit import (
    AuditReport,
    ConsistencyAuditor,
    Discrepancy,
    RepairReport,
)

__all__ = [
    "FaultError",
    "MessageLost",
    "NodeDown",
    "ProbeFailure",
    "StatementAborted",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InjectorStats",
    "MessageFate",
    "BackoffPolicy",
    "BackoffState",
    "UndoLog",
    "UndoEntry",
    "RollbackReport",
    "RecoveryPolicy",
    "FaultController",
    "ControllerStats",
    "QueuedStatement",
    "ReplayReport",
    "attach_faults",
    "detach_faults",
    "AuditReport",
    "Discrepancy",
    "ConsistencyAuditor",
    "RepairReport",
]
