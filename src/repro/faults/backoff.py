"""Deterministic, seeded, capped exponential backoff with jitter.

The unreliable-network retry path used to retry immediately, tracking only a
latency statistic (``NetworkStats.backoff_slots``).  Real senders back off —
and a cost model that charges every SEND attempt should also account for the
slots a sender spends waiting, or fault runs under-report response time at
the hot link.  :class:`BackoffPolicy` is the declarative schedule; a
:class:`BackoffState` draws jitter from its own ``random.Random(seed)`` so
the slot sequence is a pure function of (policy, seed, retry sequence) and
ledger merges stay bit-stable across runs.

Slots for retry attempt *n* (1-based):

    ``raw = min(cap, base ** (n - 1))``
    ``slots = raw * (1 - jitter) + raw * jitter * rng.random()``

i.e. uniform in ``[raw * (1 - jitter), raw]`` — "equal jitter" truncated at
``cap`` so a long drop streak cannot explode the modeled wait.  Each slot is
charged as one :data:`Op.BACKOFF` at the sender (weight
``backoff_slot_ios``, 0.0 under the paper's weights, so TW figures are
unchanged unless a sensitivity study prices waiting).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["BackoffPolicy", "BackoffState"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Declarative retry-backoff schedule."""

    base: float = 2.0
    cap: float = 16.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base < 1.0:
            raise ValueError("backoff base must be >= 1")
        if self.cap < 1.0:
            raise ValueError("backoff cap must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class BackoffState:
    """A policy plus its seeded jitter stream (one per network)."""

    __slots__ = ("policy", "seed", "rng")

    def __init__(self, policy: BackoffPolicy | None = None, seed: int = 0) -> None:
        self.policy = policy or BackoffPolicy()
        self.seed = seed
        self.rng = random.Random(seed)

    def slots(self, attempt: int) -> float:
        """Backoff slots to wait after failed attempt ``attempt`` (1-based)."""
        policy = self.policy
        raw = min(policy.cap, policy.base ** max(0, attempt - 1))
        if policy.jitter == 0.0:
            return raw
        return raw * (1.0 - policy.jitter) + raw * policy.jitter * self.rng.random()

    def reset(self) -> None:
        """Rewind the jitter stream (used when fault state is re-armed)."""
        self.rng = random.Random(self.seed)
