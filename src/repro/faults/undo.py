"""The physical undo log.

Every mutation the cluster's update path performs — base-fragment writes,
auxiliary-relation co-updates, global-index entry changes, view writes,
catalog row counts, deferred-queue state — records an inverse operation
into the innermost active :class:`UndoLog`.  Rolling back replays the
inverses in reverse order, restoring the cluster to the exact state before
the scope opened, *including rowids* (GI rid-lists survive a rollback —
see :meth:`repro.storage.heap.HeapTable.restore`).

Undo closures operate on raw storage and deliberately bypass node
liveness guards: the physical analogue is a crashed node applying its
write-ahead undo records during local restart, which needs no
interconnect.

Cost attribution: recording is free (it models keeping undo images in the
log buffer, which the paper's I/O model does not price).  *Applying* undo
on rollback is real work; when a ledger is supplied each physical write
undone charges one write I/O at its node under the original statement
tag, so aborted work is visible in TW/RT exactly like completed work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING

from ..costs import CostLedger, Op, Tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


@dataclass
class UndoEntry:
    """One recorded inverse operation.

    ``writes`` is the number of physical write I/Os replaying the inverse
    costs (0 for pure bookkeeping such as row-count restores); ``node`` and
    ``tag`` say where/how to charge them.
    """

    undo: Callable[[], None]
    node: Optional[int] = None
    tag: Optional[Tag] = None
    writes: int = 0
    description: str = ""


@dataclass
class RollbackReport:
    """What one rollback physically did."""

    entries_undone: int = 0
    writes_charged: float = 0.0


@dataclass
class UndoLog:
    """An append-only log of inverse operations for one atomic scope."""

    entries: List[UndoEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def record(
        self,
        undo: Callable[[], None],
        node: Optional[int] = None,
        tag: Optional[Tag] = None,
        writes: int = 0,
        description: str = "",
    ) -> None:
        self.entries.append(
            UndoEntry(undo=undo, node=node, tag=tag, writes=writes,
                      description=description)
        )

    def rollback(
        self,
        ledger: Optional[CostLedger] = None,
        charge: bool = False,
    ) -> RollbackReport:
        """Replay every inverse in reverse order and empty the log.

        With ``charge=True`` and a ledger, each undone physical write bills
        one write I/O (:attr:`Op.INSERT` weight — the model prices all
        single-tuple mutations identically) at its node under the tag of
        the forward operation.
        """
        report = RollbackReport()
        while self.entries:
            entry = self.entries.pop()
            entry.undo()
            report.entries_undone += 1
            if (
                charge
                and ledger is not None
                and entry.writes
                and entry.node is not None
            ):
                tag = entry.tag if entry.tag is not None else Tag.MAINTAIN
                ledger.charge(entry.node, Op.INSERT, tag, count=entry.writes)
                report.writes_charged += entry.writes
        return report

    def merge_into(self, parent: "UndoLog") -> None:
        """Hand this scope's entries to the enclosing scope (savepoint
        release): a committed inner statement must still be undoable by an
        enclosing transaction rollback."""
        parent.entries.extend(self.entries)
        self.entries.clear()

    def discard(self) -> None:
        """Forget everything without undoing (outermost commit)."""
        self.entries.clear()
