"""Systematic model-vs-simulator validation.

The reproduction's central check: the executable parallel-RDBMS simulator,
run with per-operation accounting, must reproduce the paper's closed forms
— exactly for total workload (the model counts exactly the operations the
engine performs), and within distribution noise for response time (the
model idealizes per-node shares).  This module sweeps a (L, N, variant)
grid and reports worst-case agreement ratios, giving EXPERIMENTS.md a
single number per claim instead of anecdotes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..model import (
    ALL_VARIANTS,
    JoinRegime,
    MethodVariant,
    ModelParameters,
    response_time_ios,
    total_workload_ios,
)
from ..storage.pages import PageLayout
from ..workloads.uniform import UniformJoinWorkload, build_cluster
from .harness import ExperimentResult

_CONFIG: Dict[MethodVariant, Tuple[str, bool]] = {
    MethodVariant.NAIVE_NONCLUSTERED: ("naive", False),
    MethodVariant.NAIVE_CLUSTERED: ("naive", True),
    MethodVariant.AUXILIARY: ("auxiliary", False),
    MethodVariant.GI_NONCLUSTERED: ("global_index", False),
    MethodVariant.GI_CLUSTERED: ("global_index", True),
}


def _ratio(model: float, measured: float) -> float:
    if model == measured:
        return 1.0
    if model == 0 or measured == 0:
        return float("inf")
    ratio = measured / model
    return max(ratio, 1.0 / ratio)


def validation_grid(
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 48, 80),
    fanouts: Sequence[int] = (1, 4, 10),
    batch: int = 240,
) -> ExperimentResult:
    """Worst-case agreement per variant over the (L, N) grid.

    TW is checked per single-tuple insert (must be exact); response time
    per ``batch``-tuple transaction in the index regime (approximate: the
    model charges idealized per-node shares).
    """
    worst_tw: Dict[MethodVariant, float] = {v: 1.0 for v in ALL_VARIANTS}
    worst_response: Dict[MethodVariant, float] = {v: 1.0 for v in ALL_VARIANTS}
    points = 0
    for num_nodes in node_counts:
        for fanout in fanouts:
            params = ModelParameters(num_nodes=num_nodes, fanout=float(fanout))
            for variant in ALL_VARIANTS:
                method, clustered = _CONFIG[variant]
                # num_keys: a multiple of every node count keeps the batch
                # perfectly uniform, matching the model's assumption 9.
                workload = UniformJoinWorkload(
                    num_keys=240, fanout=fanout, clustered=clustered
                )
                cluster = build_cluster(
                    workload, num_nodes=num_nodes, method=method,
                    strategy="inl", layout=PageLayout(),
                )
                single = cluster.insert("A", [workload.a_row(0)])
                worst_tw[variant] = max(
                    worst_tw[variant],
                    _ratio(
                        total_workload_ios(variant, params),
                        single.maintenance_workload(),
                    ),
                )
                batch_snapshot = cluster.insert(
                    "A", workload.a_rows(batch, starting_at=1)
                )
                measured_response = max(
                    batch_snapshot.maintenance_response_time(), 1e-9
                )
                predicted = response_time_ios(
                    variant, batch, params, JoinRegime.INDEX_NESTED_LOOPS
                )
                worst_response[variant] = max(
                    worst_response[variant],
                    _ratio(predicted, measured_response),
                )
                points += 1
    rows: List[List[object]] = [
        [variant.value, worst_tw[variant], worst_response[variant]]
        for variant in ALL_VARIANTS
    ]
    return ExperimentResult(
        experiment="Validation grid",
        title=f"worst-case model/simulator agreement over "
              f"L∈{tuple(node_counts)}, N∈{tuple(fanouts)} ({points} runs)",
        headers=[
            "variant",
            "worst TW ratio (single tuple)",
            f"worst response ratio ({batch}-tuple txn)",
        ],
        rows=rows,
        notes=[
            "TW ratios are exactly 1.0: the ledger counts the very "
            "operations the closed forms count.",
            "response ratios are also exactly 1.0 here because the batch "
            "realizes assumption 9 perfectly (each key exactly once, key "
            "count a multiple of L); departures from that assumption - "
            "incommensurate batch sizes (Figure 9 at large L) or skew (the "
            "skew ablation) - are where model and engine part ways.",
        ],
    )
