"""One driver per paper experiment (Figures 7-14, Table 1, extensions).

Each function returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows mirror the paper's series.  Where feasible the simulator
*executes* the scenario and the measured numbers are reported next to the
closed-form model — the reproduction's core validation.
"""

from __future__ import annotations

import statistics as stats_module
from typing import Dict, List, Optional, Sequence, Tuple

from ..backends.sqlite_maintenance import TeradataStyleExperiment
from ..costs import Tag
from ..cluster.cluster import Cluster
from ..core import MethodAdvisor, BoundView
from ..model import (
    ALL_VARIANTS,
    JoinRegime,
    MethodVariant,
    ModelParameters,
    figure13_prediction,
    paper_scenario,
    response_time_ios,
    total_workload_ios,
)
from ..storage.pages import PageLayout
from ..workloads.tpcr import (
    TpcrGenerator,
    jv1_definition,
    jv2_definition,
    load_into,
)
from ..workloads.uniform import UniformJoinWorkload, build_cluster
from .harness import ExperimentResult

#: Paper sweep of node counts (Figures 7, 9, 10).
NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)

#: How each plotted variant maps onto an executable configuration.
_VARIANT_CONFIG: Dict[MethodVariant, Tuple[str, bool]] = {
    MethodVariant.NAIVE_NONCLUSTERED: ("naive", False),
    MethodVariant.NAIVE_CLUSTERED: ("naive", True),
    MethodVariant.AUXILIARY: ("auxiliary", False),
    MethodVariant.GI_NONCLUSTERED: ("global_index", False),
    MethodVariant.GI_CLUSTERED: ("global_index", True),
}

#: The synthetic scenario matching the model's defaults: N=10 matches per
#: key; 640 keys x 10 matches = 6,400 B tuples = |B| = 6,400 pages at one
#: tuple per page; M = 100.
_MODEL_LAYOUT = PageLayout(tuples_per_page=1, memory_pages=100)
_MODEL_KEYS = 640


def _simulate_workload(
    variant: MethodVariant,
    num_nodes: int,
    fanout: int,
    num_inserted: int,
    strategy: str,
    num_keys: int = _MODEL_KEYS,
    layout: PageLayout = _MODEL_LAYOUT,
):
    """Build the §3.1 scenario and run one insert transaction; returns the
    transaction's cost snapshot."""
    method, clustered = _VARIANT_CONFIG[variant]
    workload = UniformJoinWorkload(
        num_keys=num_keys, fanout=fanout, clustered=clustered
    )
    cluster = build_cluster(
        workload, num_nodes=num_nodes, method=method, strategy=strategy,
        layout=layout,
    )
    return cluster.insert("A", workload.a_rows(num_inserted))


# ------------------------------------------------------------- Figure 7/8


def figure7(
    node_counts: Sequence[int] = NODE_COUNTS,
    fanout: int = 10,
    measured: bool = True,
) -> ExperimentResult:
    """TW per single-tuple insert vs L, model and (optionally) measured."""
    headers = ["nodes"]
    for variant in ALL_VARIANTS:
        headers.append(f"{variant.value} [model]")
        if measured:
            headers.append(f"{variant.value} [measured]")
    rows: List[List[object]] = []
    for num_nodes in node_counts:
        params = paper_scenario(num_nodes).with_fanout(float(fanout))
        row: List[object] = [num_nodes]
        for variant in ALL_VARIANTS:
            row.append(total_workload_ios(variant, params))
            if measured:
                snapshot = _simulate_workload(
                    variant, num_nodes, fanout, num_inserted=1, strategy="inl",
                    num_keys=64, layout=PageLayout(),
                )
                row.append(snapshot.maintenance_workload())
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 7",
        title="TW for a single-tuple insert vs number of data server nodes",
        headers=headers,
        rows=rows,
        notes=[
            "AR is the constant 3 = INSERT(2)+SEARCH(1); naive grows with L; "
            "GI plateaus at 3+N once L > N.",
            "measured = the simulator executing the insert with per-op accounting.",
        ],
    )


def figure8(
    fanouts: Sequence[int] = (1, 2, 5, 10, 20, 50, 100),
    num_nodes: int = 32,
    measured: bool = True,
) -> ExperimentResult:
    """TW per single-tuple insert vs join fan-out N at L = 32."""
    headers = ["fanout"]
    for variant in ALL_VARIANTS:
        headers.append(f"{variant.value} [model]")
        if measured:
            headers.append(f"{variant.value} [measured]")
    rows: List[List[object]] = []
    for fanout in fanouts:
        params = paper_scenario(num_nodes).with_fanout(float(fanout))
        row: List[object] = [fanout]
        for variant in ALL_VARIANTS:
            row.append(total_workload_ios(variant, params))
            if measured:
                snapshot = _simulate_workload(
                    variant, num_nodes, fanout, num_inserted=1, strategy="inl",
                    num_keys=64, layout=PageLayout(),
                )
                row.append(snapshot.maintenance_workload())
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 8",
        title="TW for a single-tuple insert vs join fan-out N (L = 32)",
        headers=headers,
        rows=rows,
        notes=[
            "GI tracks AR for small N and the naive method for large N — "
            "the 'intermediate method' claim.",
        ],
    )


# ----------------------------------------------------------- Figure 9-12


def _response_figure(
    experiment: str,
    title: str,
    x_header: str,
    x_values: Sequence[int],
    regime: JoinRegime,
    num_inserted: Optional[int],
    num_nodes: Optional[int],
    measured_limit: int,
    notes: List[str],
) -> ExperimentResult:
    """Shared shape of Figures 9-12: response time per variant, model plus
    simulator-measured points up to ``measured_limit`` inserted tuples."""
    strategy = {
        JoinRegime.INDEX_NESTED_LOOPS: "inl",
        JoinRegime.SORT_MERGE: "sort_merge",
        JoinRegime.AUTO: "auto",
    }[regime]
    headers = [x_header]
    for variant in ALL_VARIANTS:
        headers.append(f"{variant.value} [model]")
        headers.append(f"{variant.value} [measured]")
    rows: List[List[object]] = []
    for x in x_values:
        if num_inserted is None:
            inserted, nodes = x, num_nodes
        else:
            inserted, nodes = num_inserted, x
        params = paper_scenario(nodes)
        row: List[object] = [x]
        for variant in ALL_VARIANTS:
            row.append(response_time_ios(variant, inserted, params, regime))
            if inserted <= measured_limit:
                snapshot = _simulate_workload(
                    variant, nodes, fanout=10, num_inserted=inserted,
                    strategy=strategy,
                )
                row.append(snapshot.maintenance_response_time())
            else:
                row.append(None)
        rows.append(row)
    return ExperimentResult(
        experiment=experiment, title=title, headers=headers, rows=rows, notes=notes
    )


def figure9(
    node_counts: Sequence[int] = NODE_COUNTS, num_inserted: int = 400
) -> ExperimentResult:
    """Response time of one 400-tuple transaction, index-join regime."""
    return _response_figure(
        "Figure 9",
        f"execution time of one transaction with {num_inserted} tuples (index join)",
        "nodes",
        list(node_counts),
        JoinRegime.INDEX_NESTED_LOOPS,
        num_inserted=num_inserted,
        num_nodes=None,
        measured_limit=10_000,
        notes=[
            "AR falls as 3*ceil(A/L); naive with a clustered index is flat at A.",
        ],
    )


def figure10(
    node_counts: Sequence[int] = NODE_COUNTS, num_inserted: int = 6_500
) -> ExperimentResult:
    """Response time of one 6,500-tuple transaction, sort-merge regime —
    where naive-with-clustered-index wins."""
    return _response_figure(
        "Figure 10",
        f"execution time of one transaction with {num_inserted} tuples (sort merge join)",
        "nodes",
        list(node_counts),
        JoinRegime.SORT_MERGE,
        num_inserted=num_inserted,
        num_nodes=None,
        measured_limit=10_000,
        notes=[
            "6,500 ~ pages(B): every node scans/sorts its B fragment, so the "
            "naive method with clustered base relations outperforms AR/GI, "
            "which still pay their structure updates.",
        ],
    )


def figure11(
    insert_counts: Sequence[int] = (1, 10, 50, 100, 500, 1_000, 2_000, 5_000,
                                    10_000, 20_000, 40_000, 70_000),
    num_nodes: int = 128,
    measured_limit: int = 2_000,
) -> ExperimentResult:
    """Response time vs inserted tuples at L = 128, cost-chosen regime."""
    return _response_figure(
        "Figure 11",
        "execution time vs number of inserted tuples (L = 128)",
        "inserted",
        list(insert_counts),
        JoinRegime.AUTO,
        num_inserted=None,
        num_nodes=num_nodes,
        measured_limit=measured_limit,
        notes=[
            "each curve flattens at its sort-merge plateau; naive flattens "
            "first, GI later, AR last (its crossover is near |B| pages).",
            f"measured points are reported up to {measured_limit} inserted "
            "tuples to keep the harness fast; the model covers the rest.",
        ],
    )


def figure12(
    insert_counts: Sequence[int] = tuple(range(1, 301, 7)),
    num_nodes: int = 128,
) -> ExperimentResult:
    """The 1..300-tuple detail: AR's step-wise ceil(A/L) response."""
    return _response_figure(
        "Figure 12",
        "execution time vs inserted tuples - detail (L = 128)",
        "inserted",
        list(insert_counts),
        JoinRegime.AUTO,
        num_inserted=None,
        num_nodes=num_nodes,
        measured_limit=10_000,
        notes=[
            "the AR curve steps at multiples of L = 128: the busiest node "
            "sees ceil(A/L) tuples.",
        ],
    )


# ------------------------------------------------------------- Figure 13


def _tpcr_cluster(num_nodes: int, scale: float) -> Tuple[Cluster, TpcrGenerator]:
    generator = TpcrGenerator(scale=scale)
    dataset = generator.generate()
    cluster = Cluster(num_nodes=num_nodes)
    load_into(cluster, dataset)
    return cluster, generator


def figure13(
    node_counts: Sequence[int] = (2, 4, 8),
    delta: int = 128,
    scale: float = 0.005,
    measured: bool = True,
) -> ExperimentResult:
    """Predicted JV1/JV2 maintenance time (units of 128 I/Os), model and
    simulator-measured on the TPC-R workload."""
    headers = ["nodes"]
    lines = [
        "AR method for JV1", "naive method for JV1",
        "AR method for JV2", "naive method for JV2",
    ]
    for line in lines:
        headers.append(f"{line} [model]")
        if measured:
            headers.append(f"{line} [measured]")
    configs = {
        "AR method for JV1": (jv1_definition, "auxiliary"),
        "naive method for JV1": (jv1_definition, "naive"),
        "AR method for JV2": (jv2_definition, "auxiliary"),
        "naive method for JV2": (jv2_definition, "naive"),
    }
    rows: List[List[object]] = []
    for num_nodes in node_counts:
        prediction = figure13_prediction(num_nodes, delta)
        row: List[object] = [num_nodes]
        for line in lines:
            row.append(prediction[line])
            if measured:
                definition_factory, method = configs[line]
                cluster, generator = _tpcr_cluster(num_nodes, scale)
                cluster.create_join_view(
                    definition_factory(), method=method, strategy="inl"
                )
                start = len(cluster.scan_relation("customer"))
                snapshot = cluster.insert(
                    "customer", generator.new_customers(delta, starting_at=start)
                )
                row.append(snapshot.maintenance_response_time() / delta)
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 13",
        title=f"predicted view maintenance time ({delta}-tuple insert, "
              f"time unit = {delta} I/Os)",
        headers=headers,
        rows=rows,
        notes=[
            "each delta customer matches 1 orders tuple; each orders tuple "
            "matches 4 lineitem tuples (paper section 3.3).",
            "the AR speedup over naive grows with the number of nodes.",
        ],
    )


# ------------------------------------------------------------- Figure 14


def figure14(
    node_counts: Sequence[int] = (2, 4, 8),
    delta: int = 1024,
    scale: float = 0.08,
    repeats: int = 7,
) -> ExperimentResult:
    """Real maintenance time on the SQLite parallel backend (the stand-in
    for the paper's Teradata measurement)."""
    headers = [
        "nodes",
        "AR method for JV1 [ms]", "naive method for JV1 [ms]",
        "AR method for JV2 [ms]", "naive method for JV2 [ms]",
    ]
    rows: List[List[object]] = []
    for num_nodes in node_counts:
        with TeradataStyleExperiment(num_nodes=num_nodes, scale=scale) as experiment:
            delta_rows = experiment.new_delta(delta)
            timings = {
                "ar_jv1": [], "naive_jv1": [], "ar_jv2": [], "naive_jv2": [],
            }
            for _ in range(repeats):
                timings["naive_jv1"].append(
                    experiment.naive_jv1(delta_rows).response_seconds
                )
                timings["ar_jv1"].append(
                    experiment.ar_jv1(delta_rows).response_seconds
                )
                timings["naive_jv2"].append(
                    experiment.naive_jv2(delta_rows).response_seconds
                )
                timings["ar_jv2"].append(
                    experiment.ar_jv2(delta_rows).response_seconds
                )
        # min over repeats: the noise-robust estimator for deterministic
        # work (scheduling noise only ever adds time).
        rows.append(
            [
                num_nodes,
                min(timings["ar_jv1"]) * 1e3,
                min(timings["naive_jv1"]) * 1e3,
                min(timings["ar_jv2"]) * 1e3,
                min(timings["naive_jv2"]) * 1e3,
            ]
        )
    return ExperimentResult(
        experiment="Figure 14",
        title=f"real view maintenance time (SQLite partitions, "
              f"{delta}-tuple insert, scale {scale}, milliseconds)",
        headers=headers,
        rows=rows,
        notes=[
            "response time = slowest node's join-step wall time, minimum of "
            f"{repeats} runs (scheduling noise only ever adds time).",
            "the naive method broadcasts the whole delta to every node; the "
            "AR method ships each tuple to one node - its per-node work "
            "falls with L while the naive method's stays flat.",
        ],
    )


# --------------------------------------------------------------- Table 1


def table1(scale: float = 0.01) -> ExperimentResult:
    """Test data set I: cardinalities and sizes, paper vs generated."""
    dataset = TpcrGenerator(scale=scale).generate()
    from ..workloads.tpcr import PAPER_ROWS, PAPER_SIZES_MB

    rows: List[List[object]] = []
    for name, tuples, size_mb in dataset.summary_rows():
        rows.append(
            [
                name,
                PAPER_ROWS[name],
                f"{PAPER_SIZES_MB[name]}MB",
                tuples,
                f"{size_mb:.2f}MB",
            ]
        )
    return ExperimentResult(
        experiment="Table 1",
        title=f"test data set I (scale factor {scale})",
        headers=[
            "relation", "paper tuples", "paper size",
            "generated tuples", "est. size",
        ],
        rows=rows,
        notes=[
            "each customer matches one orders tuple on custkey; each orders "
            "tuple matches 4 lineitem tuples on orderkey (paper section 3.3).",
        ],
    )


# ------------------------------------------------------------ Extensions


def ext_large_update(
    deltas: Sequence[int] = (128, 512, 2_048, 8_192),
    num_nodes: int = 4,
    scale: float = 0.02,
) -> ExperimentResult:
    """Paper §3.3's unplotted observation: with large update transactions
    the naive and AR methods grow comparable, which the authors attribute
    to buffering ("substantial fractions of the base and auxiliary
    relations end up getting cached in main memory")."""
    rows: List[List[object]] = []
    repeats = 5
    with TeradataStyleExperiment(num_nodes=num_nodes, scale=scale) as experiment:
        for delta in deltas:
            delta_rows = experiment.new_delta(delta)
            naive = stats_module.median(
                experiment.naive_jv1(delta_rows).response_seconds
                for _ in range(repeats)
            )
            ar = stats_module.median(
                experiment.ar_jv1(delta_rows).response_seconds
                for _ in range(repeats)
            )
            rows.append(
                [delta, naive * 1e3, ar * 1e3, naive / ar if ar else float("inf")]
            )
    return ExperimentResult(
        experiment="Extension (large updates)",
        title=f"naive vs AR join-step time as the delta grows (L={num_nodes})",
        headers=["delta tuples", "naive [ms]", "AR [ms]", "naive/AR ratio"],
        rows=rows,
        notes=[
            "the index-regime model predicts a ratio near L; the measured "
            "ratio sits far below it because the SQLite partitions are fully "
            "memory-resident - the buffering effect the paper blamed for its "
            "model's inaccuracy on large Teradata updates.",
        ],
    )


def ext_method_chooser(
    update_sizes: Sequence[int] = (1, 10, 100, 1_000, 10_000, 100_000),
    num_nodes: int = 32,
) -> ExperimentResult:
    """The §4 cost-model method chooser over a range of update activities."""
    workload = UniformJoinWorkload(num_keys=_MODEL_KEYS, fanout=10, clustered=True)
    cluster = build_cluster(
        workload, num_nodes=num_nodes, method="naive", layout=_MODEL_LAYOUT
    )
    bound = BoundView(
        workload.definition("advised"),
        {
            "A": cluster.catalog.relation("A").schema,
            "B": cluster.catalog.relation("B").schema,
        },
    )
    advisor = MethodAdvisor(cluster, bound)
    rows: List[List[object]] = []
    for update_size in update_sizes:
        verdict = advisor.recommend(
            update_size, clustered_base_indexes=True
        )
        rows.append(
            [
                update_size,
                verdict.method.value,
                verdict.predicted_response_ios,
                verdict.per_method_response["naive"],
                verdict.per_method_response["auxiliary"],
                verdict.per_method_response["global_index"],
                verdict.storage_overhead_tuples,
            ]
        )
    return ExperimentResult(
        experiment="Extension (method chooser)",
        title=f"cost-model method recommendation vs update size (L={num_nodes})",
        headers=[
            "update size", "recommended", "best [I/Os]",
            "naive [I/Os]", "auxiliary [I/Os]", "global_index [I/Os]",
            "extra storage [tuples]",
        ],
        rows=rows,
        notes=[
            "small updates favour AR; once the update approaches the pages "
            "of B, the naive method with clustered indexes takes over "
            "(the paper's conclusion).",
        ],
    )


def ext_cost_sensitivity(
    num_nodes: int = 32,
    fanout: int = 10,
) -> ExperimentResult:
    """The paper's robustness claim, §3.1.1: "we will assume that SEARCH
    takes one I/O, FETCH takes one I/O, and INSERT takes two I/Os.  Our
    conclusions would remain unchanged by small variations in these
    assumptions."  This experiment perturbs all four weights and checks the
    method ordering AR < GI < naive (per single-tuple TW) at every point.
    """
    from ..costs import CostParameters

    weight_sets = [
        ("paper (0/1/1/2)", CostParameters()),
        ("billed sends", CostParameters(send_ios=0.5)),
        ("expensive sends", CostParameters(send_ios=2.0)),
        ("cheap inserts", CostParameters(insert_ios=1.0)),
        ("expensive inserts", CostParameters(insert_ios=4.0)),
        ("expensive fetches", CostParameters(fetch_ios=3.0)),
        ("slow searches", CostParameters(search_ios=2.0)),
    ]
    rows: List[List[object]] = []
    for label, costs in weight_sets:
        params = ModelParameters(
            num_nodes=num_nodes, fanout=float(fanout), costs=costs
        )
        ar = total_workload_ios(MethodVariant.AUXILIARY, params)
        gi = total_workload_ios(MethodVariant.GI_NONCLUSTERED, params)
        naive = total_workload_ios(MethodVariant.NAIVE_NONCLUSTERED, params)
        rows.append([label, ar, gi, naive, "yes" if ar <= gi <= naive else "NO"])
    return ExperimentResult(
        experiment="Extension (cost sensitivity)",
        title=f"TW ordering under perturbed cost weights (L={num_nodes}, N={fanout})",
        headers=[
            "weights", "AR TW", "GI TW", "naive TW", "AR <= GI <= naive?",
        ],
        rows=rows,
        notes=[
            "the comparative conclusion survives every perturbation tried, "
            "as the paper asserts; only the gap sizes move.",
        ],
    )


def ext_aggregate_views(
    num_nodes: int = 8,
    num_inserted: int = 128,
    fanout: int = 10,
    num_groups: int = 16,
) -> ExperimentResult:
    """Extension: aggregate join views vs plain join views.

    Same join, same delta, same AR maintenance — but the aggregate view
    folds the N·A join tuples into at most ``num_groups`` group rows, so
    its view-side cost and storage collapse relative to materializing the
    raw join.
    """
    from ..core import (
        Aggregate,
        AggregateFunction,
        AggregateSpec,
        aggregate_rows,
        define_aggregate_join_view,
    )
    from ..core.view import two_way_view
    from ..workloads.uniform import UniformJoinWorkload, build_cluster

    workload = UniformJoinWorkload(num_keys=num_groups, fanout=fanout)
    plain = build_cluster(workload, num_nodes=num_nodes, method="auxiliary")
    plain_cost = plain.insert("A", workload.a_rows(num_inserted))

    from ..workloads.uniform import A_SCHEMA, B_SCHEMA

    agg_cluster = Cluster(num_nodes)
    agg_cluster.create_relation(A_SCHEMA, partitioned_on="a")
    agg_cluster.create_relation(B_SCHEMA, partitioned_on="b")
    agg_cluster.insert("B", workload.b_rows())
    spec = AggregateSpec(
        group_by=(("B", "d"),),
        aggregates=(
            Aggregate(AggregateFunction.COUNT, "n"),
            Aggregate(AggregateFunction.SUM, "total", source=("B", "f")),
        ),
    )
    define_aggregate_join_view(
        agg_cluster, two_way_view("AGG", "A", "c", "B", "d"), spec,
        method="auxiliary",
    )
    agg_cost = agg_cluster.insert("A", workload.a_rows(num_inserted))

    rows = [
        [
            "plain join view",
            plain_cost.maintenance_workload(),
            plain_cost.total_workload([Tag.VIEW]),
            len(plain.view_rows("JV")),
        ],
        [
            "aggregate view",
            agg_cost.maintenance_workload(),
            agg_cost.total_workload([Tag.VIEW]),
            len(aggregate_rows(agg_cluster, "AGG")),
        ],
    ]
    return ExperimentResult(
        experiment="Extension (aggregate views)",
        title=f"plain vs aggregate join view, {num_inserted}-tuple insert "
              f"(L={num_nodes}, N={fanout}, {num_groups} groups)",
        headers=[
            "view kind", "join TW [I/Os]", "view-side cost [I/Os]",
            "stored view rows",
        ],
        rows=rows,
        notes=[
            "the join-side work is identical; the aggregate view folds "
            f"{num_inserted * fanout} join tuples into at most "
            f"{num_groups} group rows.",
        ],
    )


def ext_view_placement(
    num_nodes: int = 16,
    num_changes: int = 64,
    fanout: int = 4,
) -> ExperimentResult:
    """The (a)/(b) split of the paper's Figures 1-6: a view partitioned on
    an attribute of A versus one with no exploitable placement.

    For inserts the difference is only routing (SENDs, free in the paper's
    weights).  For *deletes* it bites: a hash-placed view removes each
    derived tuple with one indexed probe at its home node, while a
    round-robin view must hunt it across the cluster.
    """
    from ..cluster.partitioning import RoundRobinPartitioning
    from ..core.view import two_way_view
    from ..workloads.uniform import UniformJoinWorkload, build_cluster

    rows: List[List[object]] = []
    for placed, label in ((True, "hash on A.e (variant a)"),
                          (False, "round-robin (variant b)")):
        workload = UniformJoinWorkload(
            num_keys=_MODEL_KEYS, fanout=fanout, view_partitioned=placed
        )
        cluster = build_cluster(
            workload, num_nodes=num_nodes, method="auxiliary", strategy="inl"
        )
        a_rows = workload.a_rows(num_changes)
        insert_cost = cluster.insert("A", a_rows)
        delete_cost = cluster.delete("A", a_rows)
        rows.append(
            [
                label,
                insert_cost.total_workload([Tag.VIEW]),
                delete_cost.total_workload([Tag.VIEW]),
                delete_cost.response_time([Tag.VIEW]),
            ]
        )
    return ExperimentResult(
        experiment="Extension (view placement)",
        title=f"view-side cost of inserts vs deletes by placement "
              f"(L={num_nodes}, {num_changes} tuples, N={fanout})",
        headers=[
            "view placement", "insert view-cost [I/Os]",
            "delete view-cost [I/Os]", "delete view-response [I/Os]",
        ],
        rows=rows,
        notes=[
            "hash placement deletes each derived tuple with one probe at "
            "its home node; round-robin placement must search node by node "
            "- the hidden price of the figures' (b) variants.",
        ],
    )


def ext_query_speedup(
    num_nodes: int = 8,
    scale: float = 0.01,
    lookups: int = 20,
) -> ExperimentResult:
    """The premise the whole paper rests on, measured: "materialized views
    are used to speed up query execution".

    Three plans for the same customer-orders join query: the parallel base
    join, a scan of the materialized JV1, and — when the query pins the
    view's partitioning attribute — a single-node view probe.
    """
    from ..core.view import JoinCondition
    from ..query import Comparison, Filter, Query, QueryEngine

    cluster, generator = _tpcr_cluster(num_nodes, scale)
    cluster.create_join_view(jv1_definition(), method="auxiliary")
    engine = QueryEngine(cluster)
    join_query = Query(
        relations=("customer", "orders"),
        select=(("customer", "custkey"), ("orders", "totalprice")),
        conditions=(JoinCondition("customer", "custkey", "orders", "custkey"),),
    )
    base = engine.answer_from_base(join_query)
    auto = engine.answer(join_query)
    probe_total = 0.0
    probe_response = 0.0
    num_customers = len(cluster.scan_relation("customer"))
    for custkey in range(0, lookups):
        lookup = Query(
            relations=("customer", "orders"),
            select=(("customer", "custkey"), ("orders", "totalprice")),
            conditions=(
                JoinCondition("customer", "custkey", "orders", "custkey"),
            ),
            filters=(
                Filter("customer", "custkey", Comparison.EQ,
                       custkey % num_customers),
            ),
        )
        result = engine.answer(lookup)
        assert "view probe" in result.plan
        probe_total += result.cost_ios
        probe_response += result.response_ios
    rows = [
        ["base join (full)", base.plan, base.cost_ios, base.response_ios],
        ["materialized view (full)", auto.plan, auto.cost_ios, auto.response_ios],
        [
            f"pinned lookups (avg of {lookups})",
            "view probe",
            probe_total / lookups,
            probe_response / lookups,
        ],
    ]
    return ExperimentResult(
        experiment="Extension (query speedup)",
        title=f"answering customer-orders joins with and without JV1 "
              f"(L={num_nodes}, scale {scale})",
        headers=["query", "plan", "total I/Os", "response I/Os"],
        rows=rows,
        notes=[
            "the view turns a two-relation repartition join into a scan, "
            "and a key lookup into a single SEARCH at one node - the very "
            "speed-up that makes view maintenance worth optimizing.",
        ],
    )


def ext_skew_sensitivity(
    skews: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    num_nodes: int = 32,
    num_inserted: int = 512,
) -> ExperimentResult:
    """Ablation of the model's assumption 9 (uniform insert keys).

    Under skew, a hot join value funnels its whole delta share through one
    node, so the AR method's measured response exceeds the uniform-model
    prediction 3·⌈A/L⌉; the naive method is unaffected (every node always
    sees the whole delta).
    """
    from ..workloads.skewed import SkewedJoinWorkload, build_skewed_cluster

    params = paper_scenario(num_nodes)
    model_ar = response_time_ios(
        MethodVariant.AUXILIARY, num_inserted, params,
        JoinRegime.INDEX_NESTED_LOOPS,
    )
    rows: List[List[object]] = []
    for skew in skews:
        workload = SkewedJoinWorkload(
            num_keys=_MODEL_KEYS, fanout=10, skew=skew
        )
        measured = {}
        for method in ("auxiliary", "naive"):
            cluster = build_skewed_cluster(
                workload, num_nodes=num_nodes, method=method, strategy="inl"
            )
            snapshot = cluster.insert("A", workload.a_rows(num_inserted))
            measured[method] = snapshot.maintenance_response_time()
        rows.append(
            [
                skew,
                workload.hot_key_share(),
                model_ar,
                measured["auxiliary"],
                measured["auxiliary"] / model_ar,
                measured["naive"],
            ]
        )
    return ExperimentResult(
        experiment="Extension (skew sensitivity)",
        title=f"AR response under Zipf insert keys "
              f"(L={num_nodes}, A={num_inserted})",
        headers=[
            "zipf skew", "hottest-key share",
            "AR model (uniform) [I/Os]", "AR measured [I/Os]",
            "AR inflation", "naive measured [I/Os]",
        ],
        rows=rows,
        notes=[
            "assumption 9 (uniform keys) is what keeps the AR busiest node "
            "at ceil(A/L); skew concentrates the delta and inflates the AR "
            "response while leaving the naive method's roughly unchanged.",
            "the skew=0 row isolates multinomial sampling noise: random "
            "uniform keys already exceed the model's perfectly-even "
            "ceil(A/L) by the balls-into-bins maximum.",
        ],
    )


def ext_storage_overhead(num_nodes: int = 8, fanout: int = 10) -> ExperimentResult:
    """Space ablation: what each method stores beyond the bases and the view,
    with and without §2.1.2 trimming.

    The view projects only A.e and B.f, so a trimmed AR_B keeps (d, f) —
    two of B's three columns; trimming shrinks *fields*, not tuple counts.
    GI entries are counted as (key, node, rowid) triples.
    """
    from ..cluster.partitioning import RoundRobinPartitioning
    from ..core.view import two_way_view
    from ..workloads.uniform import A_SCHEMA, B_SCHEMA

    rows: List[List[object]] = []
    for method, trim in (
        ("naive", False),
        ("global_index", False),
        ("auxiliary", False),
        ("auxiliary", True),
    ):
        workload = UniformJoinWorkload(num_keys=64, fanout=fanout)
        cluster = Cluster(num_nodes=num_nodes)
        cluster.create_relation(A_SCHEMA, partitioned_on="a")
        cluster.create_relation(B_SCHEMA, partitioned_on="b", indexes=[("d", False)])
        cluster.insert("B", workload.b_rows())
        definition = two_way_view(
            "JV", "A", "c", "B", "d",
            select=[("A", "e"), ("B", "f")],
            partitioning=RoundRobinPartitioning(),
        )
        cluster.create_join_view(definition, method=method, trim_auxiliaries=trim)
        extra_tuples = 0
        extra_fields = 0
        for name, info in cluster.catalog.auxiliaries.items():
            count = len(cluster.scan_relation(name))
            extra_tuples += count
            extra_fields += count * info.schema.arity
        for name in cluster.catalog.global_indexes:
            entries = sum(len(node.gi_partition(name)) for node in cluster.nodes)
            extra_tuples += entries
            extra_fields += entries * 3
        label = f"{method}{' (trimmed)' if trim else ''}"
        rows.append(
            [label, len(cluster.scan_relation("B")), extra_tuples, extra_fields]
        )
    return ExperimentResult(
        experiment="Extension (storage overhead)",
        title="extra storage per maintenance method (A empty, |B| = 640)",
        headers=["method", "B tuples", "extra tuples/entries", "extra fields"],
        rows=rows,
        notes=[
            "naive stores nothing extra; GI stores an entry per tuple; AR "
            "stores a copy per tuple, whose width projection trimming "
            "reduces (here 3 columns -> 2).",
        ],
    )


def ext_fault_overhead(
    num_nodes: int = 8,
    fanout: int = 5,
    transactions: int = 24,
    fault_probability: float = 0.15,
    seed: int = 11,
) -> ExperimentResult:
    """Extension: what fault tolerance costs each maintenance method.

    Replays one insert stream per (method, fault regime) pair and reports
    the maintenance workload (TW) relative to the fault-free run.  Send
    retries and duplicate copies are charged as extra SENDs, wasted probe
    attempts as extra SEARCHes, and rollback writes per undone write, so
    the overhead column is exactly the robustness premium under the
    paper's I/O model.  After each run the consistency auditor certifies
    that recovery left view, ARs, and GI rid-lists equal to a from-scratch
    recomputation.
    """
    from ..costs import CostParameters
    from ..faults import ConsistencyAuditor, FaultPlan, attach_faults

    def scenarios():
        return (
            ("fault-free", None),
            ("message drops", FaultPlan().drop(probability=fault_probability)),
            (
                "message duplication",
                FaultPlan().duplicate(probability=fault_probability),
            ),
            ("probe failures", FaultPlan().fail_probe(probability=fault_probability)),
            (
                "crash + recovery",
                FaultPlan().crash(node=1, after_messages=transactions),
            ),
        )

    rows: List[List[object]] = []
    for method in ("naive", "auxiliary", "global_index"):
        baseline: Optional[float] = None
        for label, plan in scenarios():
            # 63 keys (coprime to the node count): with 64, every A row's
            # partitioning value and join key are congruent mod L, the AR
            # hop never crosses the wire, and message faults cannot fire.
            workload = UniformJoinWorkload(num_keys=63, fanout=fanout)
            cluster = build_cluster(
                workload, num_nodes=num_nodes, method=method, strategy="inl"
            )
            # Price messages (the paper's default weights make SENDs
            # free, which would hide the retry/duplicate premium).
            cluster.ledger.params = CostParameters(send_ios=1.0)
            controller = (
                None if plan is None else attach_faults(cluster, plan=plan, seed=seed)
            )
            before = cluster.ledger.snapshot()
            # Serials far from the key space so a/c/e hash differently and
            # maintenance genuinely crosses the interconnect.
            for row in workload.a_rows(transactions, starting_at=1000):
                cluster.insert("A", [row])
            if controller is not None:
                controller.recover()
            tw = cluster.ledger.diff_since(before).maintenance_workload()
            if baseline is None:
                baseline = tw
            consistent = ConsistencyAuditor(cluster).audit().ok
            stats = cluster.network.stats
            rows.append(
                [
                    method,
                    label,
                    round(tw, 1),
                    round(tw / baseline, 3) if baseline else 1.0,
                    stats.retries,
                    stats.duplicates,
                    0 if controller is None else controller.stats.rollbacks,
                    "yes" if consistent else "NO",
                ]
            )
    return ExperimentResult(
        experiment="Extension (fault overhead)",
        title=(
            f"robustness premium per method ({num_nodes} nodes, "
            f"{transactions} single-insert transactions, "
            f"fault probability {fault_probability})"
        ),
        headers=[
            "method", "fault regime", "maintenance TW", "vs fault-free",
            "retries", "duplicates", "rollbacks", "consistent",
        ],
        rows=rows,
        notes=[
            "every run ends with recover() + a full consistency audit; "
            "'consistent' must be yes in all rows — faults never corrupt "
            "derived state under the protected recovery policy.",
            "the crash regime downs node 1 mid-stream; statements that "
            "touch it are rolled back, queued, and replayed by recover(), "
            "whose cost is the rollback/replay premium shown.",
        ],
    )


def ext_failover_overhead(
    num_nodes: int = 4,
    fanout: int = 5,
    transactions: int = 24,
    seed: int = 11,
) -> ExperimentResult:
    """Extension: the availability premium of K-replica partitions.

    Each maintenance method runs the same single-insert stream three ways:
    bare (no replicas — a node loss would be unrecoverable), with K=2
    replication quietly shipping every primary write to its ring
    successor, and with K=2 plus a mid-stream node crash that is healed by
    ``fail_over`` (promote the replica, migrate fragments off the dead
    node, replay the queued statements).  Replica upkeep is charged under
    ``Tag.REPLICA`` and failover migration under ``Tag.MIGRATE``, so the
    "vs bare" column is exactly what durability and the repair cost under
    the paper's I/O model.
    """
    from ..costs import CostParameters
    from ..faults import ConsistencyAuditor, FaultPlan, attach_faults

    def run(method: str, replicate: bool, crash: bool):
        workload = UniformJoinWorkload(num_keys=63, fanout=fanout)
        cluster = build_cluster(
            workload, num_nodes=num_nodes, method=method, strategy="inl"
        )
        cluster.ledger.params = CostParameters(send_ios=1.0)
        if replicate:
            cluster.enable_replication(k=2)
        controller = None
        if crash:
            controller = attach_faults(
                cluster,
                plan=FaultPlan().crash(node=1, after_messages=transactions),
                seed=seed,
            )
        before = cluster.ledger.snapshot()
        for row in workload.a_rows(transactions, starting_at=1000):
            cluster.insert("A", [row])
        report = cluster.fail_over(1) if crash else None
        snap = cluster.ledger.diff_since(before)
        consistent = ConsistencyAuditor(cluster).audit().ok
        return snap, report, controller, consistent

    rows: List[List[object]] = []
    for method in ("naive", "auxiliary", "global_index"):
        baseline: Optional[float] = None
        for label, replicate, crash in (
            ("bare", False, False),
            ("k=2 upkeep", True, False),
            ("k=2 + failover", True, True),
        ):
            snap, report, controller, consistent = run(method, replicate, crash)
            total = snap.total_workload()
            if baseline is None:
                baseline = total
            rows.append(
                [
                    method,
                    label,
                    round(total, 1),
                    round(total / baseline, 3) if baseline else 1.0,
                    round(snap.total_workload(tags=[Tag.REPLICA]), 1),
                    round(snap.total_workload(tags=[Tag.MIGRATE]), 1),
                    0 if report is None else report.replayed_statements,
                    "yes" if consistent else "NO",
                ]
            )
    return ExperimentResult(
        experiment="Extension (failover overhead)",
        title=(
            f"availability premium per method ({num_nodes} nodes, K=2 "
            f"replicas, {transactions} single-insert transactions, crash "
            f"mid-stream + fail_over)"
        ),
        headers=[
            "method", "scenario", "total TW", "vs bare", "replica TW",
            "migrate TW", "replayed", "consistent",
        ],
        rows=rows,
        notes=[
            "replica upkeep ships one SEND + one INSERT-weight write per "
            "primary write to the owner's ring successor (Tag.REPLICA); "
            "it scales with the write stream, not with the crash.",
            "failover promotes the dead node's replica, migrates its "
            "fragments to the survivors (Tag.MIGRATE), replays the queued "
            "statements, and must end with a clean consistency audit.",
        ],
    )
