"""Open-loop latency bench: percentiles, attribution, saturation knees.

``repro.bench.perf`` answers "how many tuples per second"; this module
answers "what does one statement *feel* like, and where does the feeling
break down".  For every maintenance method × eager/deferred × worker
count it:

1. executes one seeded mixed schedule of update statements and read
   queries (:func:`repro.obs.load.build_schedule`) against a skewed-key
   cluster, measuring per-operation wall-clock **service time** into the
   log-bucketed latency histogram;
2. folds the PR-4 statement-lifecycle spans into a per-phase
   **attribution** (plan_compile / base_writes / maintain / view_write /
   deferred_refresh / query) plus a tail ("where did the p99 go") cut;
3. replays the measured service times through the open-loop single-server
   queue at geometrically stepped arrival rates until the p99 blows past
   the knee detector, yielding the **saturation curve** and its knee.

The modeled ledgers never see any of this: measurement wraps the calls
(``tests/test_load_driver.py`` pins charges bit-identical with
measurement on or off), and the queue replay is pure arithmetic over the
measured seconds, so one execution prices every arrival rate.

Results land in ``BENCH_PERF.json``'s schema-v6 ``latency`` section
(assembled by ``repro.bench.perf``) or in a standalone report::

    PYTHONPATH=src python -m repro.bench.latency --smoke
    PYTHONPATH=src python -m repro.bench.latency --out bench-latency.json

``repro.bench.regress`` gates CI on these numbers against the committed
``BENCH_BASELINE.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.deferred import defer_view
from ..obs.attribution import attribute_roots, fold_phases, tail_attribution
from ..obs.collect import attach_observability
from ..obs.load import (
    build_schedule,
    execute_schedule,
    find_knee,
    latency_summary,
    open_loop_latencies,
)
from ..obs.metrics import MetricsRegistry
from ..workloads.skewed import SkewedJoinWorkload, build_skewed_cluster
from .harness import config_seed

__all__ = [
    "LatencyConfig",
    "run_config",
    "run_latency",
    "validate_latency_section",
    "render_latency",
]

METHODS = ("naive", "auxiliary", "global_index")
MODES = ("eager", "deferred")

#: A rate step whose p99 exceeds ``knee_factor`` × the base rate's p99 has
#: saturated: queueing delay dominates service time.  8× on geometric
#: (doubling) rate steps places the knee within one step of where the
#: curve turns vertical.
KNEE_FACTOR = 8.0
#: The sweep always records at least this many arrival rates (the
#: acceptance bar is three) and never more than ``MAX_RATE_STEPS``.
MIN_RATE_STEPS = 4
MAX_RATE_STEPS = 10
#: First arrival rate as a fraction of measured service capacity
#: (offered utilization ρ); 0.25 starts the curve well under the knee.
BASE_UTILIZATION = 0.25


@dataclass(frozen=True)
class LatencyConfig:
    """Sizing knobs for one latency-bench run."""

    num_nodes: int = 8
    num_keys: int = 64
    fanout: int = 4
    skew: float = 1.2
    ops: int = 240                  # scheduled operations per config
    statement_size: int = 8         # rows per update statement
    read_fraction: float = 0.25     # probability an op is a read query
    worker_counts: Tuple[int, ...] = (0, 2)  # 0 = serial execution
    knee_factor: float = KNEE_FACTOR

    @classmethod
    def smoke(cls) -> "LatencyConfig":
        return cls(
            num_nodes=4,
            num_keys=16,
            ops=36,
            worker_counts=(0,),
        )


def run_config(
    config: LatencyConfig, method: str, mode: str, workers: int
) -> Tuple[Dict[str, object], MetricsRegistry]:
    """One (method, mode, workers) cell: execute, attribute, sweep.

    Returns the report entry plus the live metrics registry (the
    ``repro_stmt_latency_seconds`` histogram, ``repro_load_ops_total``
    counters, and per-step ``repro_arrival_rate`` gauges) so tests can
    round-trip the Prometheus export.
    """
    name = f"{method}-{mode}-w{workers}"
    seed = config_seed(f"latency-{name}")
    workload = SkewedJoinWorkload(
        num_keys=config.num_keys,
        fanout=config.fanout,
        skew=config.skew,
        seed=seed,
    )
    cluster = build_skewed_cluster(
        workload, num_nodes=config.num_nodes, method=method, strategy="inl"
    )
    if workers:
        cluster.workers = workers
    obs = attach_observability(cluster)
    deferred = mode == "deferred"
    wrapper = (
        defer_view(cluster, "JV", flush_threshold=4 * config.statement_size)
        if deferred
        else None
    )
    schedule = build_schedule(
        workload,
        total_ops=config.ops,
        statement_size=config.statement_size,
        read_fraction=config.read_fraction,
        seed=seed,
        deferred=deferred,
    )
    try:
        timings = execute_schedule(
            cluster,
            schedule,
            refresh=wrapper.refresh if wrapper is not None else None,
            registry=obs.metrics,
            method=method,
            mode=mode,
            workers=workers,
        )
        roots = attribute_roots(obs.tracer)
    finally:
        cluster.close()

    service = [timing.seconds for timing in timings]
    summary = latency_summary(service)
    attribution = fold_phases(roots)
    attributed_total = sum(attribution.values())
    tail = tail_attribution(roots, summary["p99"])

    # Saturation sweep: replay the measured service times through the
    # open-loop queue at doubling arrival rates.  Pure arithmetic — every
    # rate prices the identical execution.
    mean = summary["mean"]
    base_rate = BASE_UTILIZATION / max(mean, 1e-9)
    arrival_gauge = obs.metrics.gauge(
        "repro_arrival_rate", "Offered open-loop arrival rate per sweep step"
    )
    rate = base_rate
    rates: List[float] = []
    p99s: List[float] = []
    rate_rows: List[Dict[str, float]] = []
    for step in range(MAX_RATE_STEPS):
        latencies = open_loop_latencies(service, rate, seed=seed + step)
        rate_summary = latency_summary(latencies)
        arrival_gauge.set(rate, config=name, step=step)
        rate_rows.append({"rate": rate, **rate_summary})
        rates.append(rate)
        p99s.append(rate_summary["p99"])
        blown = rate_summary["p99"] > config.knee_factor * p99s[0]
        if blown and step + 1 >= MIN_RATE_STEPS:
            break
        rate *= 2.0
    knee = find_knee(rates, p99s, config.knee_factor)

    entry: Dict[str, object] = {
        "name": name,
        "method": method,
        "mode": mode,
        "workers": workers,
        "seed": seed,
        "ops": len(schedule),
        "service": summary,
        "attribution": attribution,
        "attribution_share": {
            phase: seconds / attributed_total if attributed_total else 0.0
            for phase, seconds in attribution.items()
        },
        "tail_attribution": tail,
        "rates": rate_rows,
        "knee_rate": knee,
    }
    return entry, obs.metrics


def run_latency(config: LatencyConfig) -> Dict[str, object]:
    """The full method × mode × workers sweep (the schema-v6 section)."""
    entries: List[Dict[str, object]] = []
    for method in METHODS:
        for mode in MODES:
            for workers in config.worker_counts:
                entry, _registry = run_config(config, method, mode, workers)
                entries.append(entry)
    return {
        "knee_factor": config.knee_factor,
        "config": asdict(config),
        "configs": entries,
    }


_SUMMARY_KEYS = ("p50", "p95", "p99", "max", "mean")
_ENTRY_KEYS = {
    "name", "method", "mode", "workers", "seed", "ops", "service",
    "attribution", "attribution_share", "tail_attribution", "rates",
    "knee_rate",
}


def validate_latency_section(section: Dict[str, object]) -> List[str]:
    """Schema check for the ``latency`` section; returns problems found."""
    problems: List[str] = []
    if not isinstance(section, dict):
        return ["latency section is not an object"]
    for key in ("knee_factor", "config", "configs"):
        if key not in section:
            problems.append(f"latency section missing key {key!r}")
    entries = section.get("configs", [])
    if not isinstance(entries, list) or not entries:
        return problems + ["latency section has no configs"]
    worker_counts = tuple(section.get("config", {}).get("worker_counts", ()))
    expected = len(METHODS) * len(MODES) * max(1, len(worker_counts))
    if worker_counts and len(entries) != expected:
        problems.append(
            f"expected {expected} latency configs, got {len(entries)}"
        )
    for index, entry in enumerate(entries):
        missing = _ENTRY_KEYS - set(entry)
        if missing:
            problems.append(
                f"latency config {index} missing fields {sorted(missing)}"
            )
            continue
        label = entry["name"]
        service = entry["service"]
        for key in _SUMMARY_KEYS:
            if key not in service:
                problems.append(f"{label}: service summary missing {key!r}")
        quantiles = [service.get(q) for q in ("p50", "p95", "p99", "max")]
        if all(q is not None for q in quantiles) and quantiles != sorted(quantiles):
            problems.append(f"{label}: service quantiles are not monotone")
        rates = entry["rates"]
        if len(rates) < 3:
            problems.append(
                f"{label}: saturation sweep has {len(rates)} rates (< 3)"
            )
        last_rate = 0.0
        for position, row in enumerate(rates):
            for key in ("rate", *_SUMMARY_KEYS):
                if key not in row:
                    problems.append(
                        f"{label}: rate step {position} missing {key!r}"
                    )
            if row.get("rate", 0.0) <= last_rate:
                problems.append(
                    f"{label}: arrival rates not strictly increasing "
                    f"at step {position}"
                )
            last_rate = row.get("rate", last_rate)
        if entry["knee_rate"] is not None and rates:
            sweep_rates = [row["rate"] for row in rates if "rate" in row]
            if sweep_rates and entry["knee_rate"] not in sweep_rates:
                problems.append(
                    f"{label}: knee_rate is not one of the swept rates"
                )
        if not entry["attribution"]:
            problems.append(f"{label}: empty span attribution")
    return problems


def _top_phase(attribution: Dict[str, float]) -> str:
    if not attribution:
        return "n/a"
    phase = max(sorted(attribution), key=lambda key: attribution[key])
    total = sum(attribution.values())
    share = attribution[phase] / total if total else 0.0
    return f"{phase} {share * 100:.0f}%"


def render_latency(section: Dict[str, object]) -> str:
    lines = [
        "Open-loop latency (service-time percentiles, saturation knee, "
        f"p99 blow-up factor {section['knee_factor']:g})",
        "",
        f"{'config':<26} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
        f"{'knee ops/s':>11}  p99 tail phase",
    ]
    for entry in section["configs"]:
        service = entry["service"]
        knee = entry["knee_rate"]
        lines.append(
            f"{entry['name']:<26} "
            f"{service['p50'] * 1e3:>8.3f} {service['p95'] * 1e3:>8.3f} "
            f"{service['p99'] * 1e3:>8.3f} "
            f"{f'{knee:,.0f}' if knee is not None else 'n/a':>11}  "
            f"{_top_phase(entry['tail_attribution'])}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.latency",
        description="Open-loop latency percentiles, attribution, and "
        "saturation knees per maintenance method.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny configuration for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("bench-latency.json"),
        help="output JSON path (default: bench-latency.json)",
    )
    args = parser.parse_args(argv)
    config = LatencyConfig.smoke() if args.smoke else LatencyConfig()
    section = run_latency(config)
    problems = validate_latency_section(section)
    if problems:  # pragma: no cover - self-check of a freshly built report
        for problem in problems:
            print(f"schema problem: {problem}", file=sys.stderr)
        return 1
    from .perf import SCHEMA_VERSION  # lazy: perf imports this module

    report = {
        "schema_version": SCHEMA_VERSION,
        "smoke": args.smoke,
        "latency": section,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(render_latency(section))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
