"""Experiment harness: run one paper experiment, print its rows.

Every figure/table of the paper has an experiment function in
:mod:`repro.bench.experiments` returning an :class:`ExperimentResult`; the
``benchmarks/`` tree wraps them in pytest-benchmark targets, and
``python -m repro.bench`` prints any of them standalone.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..costs.report import ascii_table


def config_seed(name: str) -> int:
    """Deterministic RNG seed derived from a config/case name.

    CRC-32 keeps the mapping stable across Python versions and processes
    (unlike ``hash``), so any benchmark case can be re-run in isolation
    from its name alone.  Shared by the wall-clock (``repro.bench.perf``)
    and latency (``repro.bench.latency``) harnesses so their case seeds
    never collide by accident.
    """
    return zlib.crc32(name.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class ExperimentResult:
    """The rows one experiment reports, paper-style."""

    experiment: str          # e.g. "Figure 7"
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"{self.experiment}: {self.title}", ""]
        lines.append(ascii_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.headers, row)) for row in self.rows]


def agreement_ratio(model: Sequence[float], measured: Sequence[float]) -> float:
    """Worst-case measured/model ratio across a series (1.0 = exact).

    Used by validation notes and tests: the simulator executes the same
    primitive operations the closed forms count, so single-tuple TW ratios
    are exactly 1.0 and batch response ratios stay within distribution
    noise.
    """
    if len(model) != len(measured):
        raise ValueError("series lengths differ")
    worst = 1.0
    for predicted, observed in zip(model, measured):
        if predicted == 0 and observed == 0:
            continue
        if predicted == 0:
            return float("inf")
        ratio = observed / predicted
        worst = max(worst, ratio, 1.0 / ratio if ratio else float("inf"))
    return worst


def render_results(results: Sequence[ExperimentResult]) -> str:
    return "\n\n".join(result.render() for result in results)
