"""Latency regression gate: fail CI when percentiles drift past noise.

Compares a candidate latency report (``BENCH_PERF.json``'s ``latency``
section, or a standalone ``repro.bench.latency`` report) against the
committed ``BENCH_BASELINE.json``.  The threshold is noise-floor-aware in
two ways:

* **relative slack** — a quantile regresses only when it exceeds
  ``baseline × (1 + rel_threshold)``; wall-clock on shared runners jitters
  tens of percent, so the default slack is 50%;
* **absolute floor** — an extra ``noise_floor_seconds`` is always
  forgiven, so microsecond-scale configs cannot trip the relative gate on
  scheduler jitter alone.

Both knobs are frozen *into the baseline file* when it is written, so the
gate's sensitivity is reviewed in the same diff as the numbers it guards;
CLI flags override for local experiments.  The saturation knee (an
arrival rate — higher is better) is gated downward with the same relative
slack: the sweep steps rates geometrically, so losing more than a full
step is a real capacity regression, not measurement grain.

Usage::

    python -m repro.bench.regress                       # committed vs committed
    python -m repro.bench.regress --candidate fresh.json
    python -m repro.bench.regress --freeze BENCH_BASELINE.json
    python -m repro.bench.regress --self-test           # prove the gate bites

Exit codes: 0 clean, 1 regression found (or a toothless self-test),
2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "GATED_QUANTILES",
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_NOISE_FLOOR_SECONDS",
    "extract_configs",
    "compare",
    "inject_regression",
    "freeze_baseline",
    "default_baseline_path",
]

#: Service-time quantiles the gate enforces.  ``max`` is deliberately
#: excluded: a single descheduled statement moves it arbitrarily.
GATED_QUANTILES = ("p50", "p95", "p99")
DEFAULT_REL_THRESHOLD = 0.5
DEFAULT_NOISE_FLOOR_SECONDS = 0.002
#: The synthetic regression injected by ``--self-test`` — far past any
#: plausible threshold, so a passing self-test proves the gate has teeth.
SELF_TEST_FACTOR = 4.0
SELF_TEST_SEED = 2003

ConfigStats = Dict[str, Optional[float]]


def extract_configs(doc: Dict[str, object]) -> Dict[str, ConfigStats]:
    """Per-config gated stats from any of the three accepted shapes:
    a full ``BENCH_PERF.json`` report, a standalone latency report, or a
    frozen baseline file."""
    configs = doc.get("configs")
    if isinstance(configs, dict):  # a frozen baseline
        return {name: dict(stats) for name, stats in configs.items()}
    section = doc.get("latency", doc)
    entries = section.get("configs") if isinstance(section, dict) else None
    if not isinstance(entries, list):
        raise ValueError(
            "no latency configs found (expected a BENCH_PERF report with a "
            "'latency' section, a repro.bench.latency report, or a baseline)"
        )
    out: Dict[str, ConfigStats] = {}
    for entry in entries:
        service = entry["service"]
        out[entry["name"]] = {
            "p50": service["p50"],
            "p95": service["p95"],
            "p99": service["p99"],
            "max": service["max"],
            "mean": service["mean"],
            "knee_rate": entry.get("knee_rate"),
        }
    return out


def compare(
    baseline: Dict[str, ConfigStats],
    candidate: Dict[str, ConfigStats],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR_SECONDS,
) -> List[str]:
    """The regressions of ``candidate`` against ``baseline`` (empty = clean).

    A config present in the baseline but absent from the candidate is a
    regression (coverage must not silently shrink); the reverse is not
    (new configs enter the gate when the baseline is next frozen).
    """
    problems: List[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        cand = candidate.get(name)
        if cand is None:
            problems.append(f"{name}: config missing from candidate")
            continue
        for quantile in GATED_QUANTILES:
            base_value = base.get(quantile)
            cand_value = cand.get(quantile)
            if base_value is None or cand_value is None:
                continue
            budget = base_value * (1.0 + rel_threshold) + noise_floor
            if cand_value > budget:
                problems.append(
                    f"{name}: {quantile} {cand_value * 1e3:.3f}ms exceeds "
                    f"{base_value * 1e3:.3f}ms * {1.0 + rel_threshold:.2f} "
                    f"+ {noise_floor * 1e3:.1f}ms floor"
                )
        base_knee = base.get("knee_rate")
        cand_knee = cand.get("knee_rate")
        if base_knee and cand_knee and cand_knee < base_knee / (1.0 + rel_threshold):
            problems.append(
                f"{name}: saturation knee {cand_knee:,.0f} ops/s fell below "
                f"{base_knee:,.0f} / {1.0 + rel_threshold:.2f}"
            )
    return problems


def inject_regression(
    configs: Dict[str, ConfigStats],
    factor: float = SELF_TEST_FACTOR,
    seed: int = SELF_TEST_SEED,
) -> Dict[str, ConfigStats]:
    """A copy of ``configs`` with one seeded-chosen config regressed:
    gated quantiles multiplied by ``factor``, knee divided by it."""
    if not configs:
        raise ValueError("cannot inject a regression into an empty baseline")
    rng = random.Random(seed)
    victim = rng.choice(sorted(configs))
    out = {name: dict(stats) for name, stats in configs.items()}
    for quantile in GATED_QUANTILES:
        value = out[victim].get(quantile)
        if value is not None:
            out[victim][quantile] = value * factor
    knee = out[victim].get("knee_rate")
    if knee:
        out[victim]["knee_rate"] = knee / factor
    return out


def freeze_baseline(
    candidate_doc: Dict[str, object],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR_SECONDS,
) -> Dict[str, object]:
    """The baseline document for a candidate report (thresholds frozen in)."""
    return {
        "kind": "latency-baseline",
        "schema_version": candidate_doc.get("schema_version"),
        "rel_threshold": rel_threshold,
        "noise_floor_seconds": noise_floor,
        "configs": extract_configs(candidate_doc),
    }


def _repo_root() -> Path:
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src").is_dir():
        return candidate
    return Path.cwd()


def default_baseline_path() -> Path:
    return _repo_root() / "BENCH_BASELINE.json"


def default_candidate_path() -> Path:
    return _repo_root() / "BENCH_PERF.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Gate latency percentiles against the committed baseline.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON (default: BENCH_BASELINE.json at the repo root)",
    )
    parser.add_argument(
        "--candidate", type=Path, default=None,
        help="candidate report (default: BENCH_PERF.json at the repo root)",
    )
    parser.add_argument(
        "--rel-threshold", type=float, default=None,
        help="relative slack per quantile (default: frozen in the baseline)",
    )
    parser.add_argument(
        "--noise-floor", type=float, default=None,
        help="absolute slack in seconds (default: frozen in the baseline)",
    )
    parser.add_argument(
        "--freeze", type=Path, default=None, metavar="OUT",
        help="write a new baseline from the candidate and exit",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="inject a seeded synthetic regression into the candidate and "
        "verify the gate catches it",
    )
    args = parser.parse_args(argv)

    candidate_path = args.candidate or default_candidate_path()
    try:
        candidate_doc = json.loads(candidate_path.read_text())
    except OSError as error:
        print(f"cannot read candidate: {error}", file=sys.stderr)
        return 2

    if args.freeze is not None:
        baseline = freeze_baseline(
            candidate_doc,
            rel_threshold=(
                args.rel_threshold if args.rel_threshold is not None
                else DEFAULT_REL_THRESHOLD
            ),
            noise_floor=(
                args.noise_floor if args.noise_floor is not None
                else DEFAULT_NOISE_FLOOR_SECONDS
            ),
        )
        args.freeze.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"froze {len(baseline['configs'])} config(s) from "
            f"{candidate_path} into {args.freeze}"
        )
        return 0

    baseline_path = args.baseline or default_baseline_path()
    try:
        baseline_doc = json.loads(baseline_path.read_text())
    except OSError as error:
        print(f"cannot read baseline: {error}", file=sys.stderr)
        return 2
    rel_threshold = (
        args.rel_threshold if args.rel_threshold is not None
        else baseline_doc.get("rel_threshold", DEFAULT_REL_THRESHOLD)
    )
    noise_floor = (
        args.noise_floor if args.noise_floor is not None
        else baseline_doc.get("noise_floor_seconds", DEFAULT_NOISE_FLOOR_SECONDS)
    )
    baseline = extract_configs(baseline_doc)
    candidate = extract_configs(candidate_doc)

    if args.self_test:
        injected = inject_regression(candidate if candidate else baseline)
        caught = compare(
            baseline, injected,
            rel_threshold=rel_threshold, noise_floor=noise_floor,
        )
        if not caught:
            print(
                "self-test FAILED: the injected synthetic regression was "
                "not detected — the gate has no teeth",
                file=sys.stderr,
            )
            return 1
        print(
            f"self-test ok: injected regression detected "
            f"({len(caught)} finding(s), e.g. {caught[0]!r})"
        )
        return 0

    problems = compare(
        baseline, candidate,
        rel_threshold=rel_threshold, noise_floor=noise_floor,
    )
    if problems:
        for problem in problems:
            print(f"latency regression: {problem}", file=sys.stderr)
        print(
            f"{len(problems)} regression(s) vs {baseline_path} "
            f"(rel_threshold={rel_threshold:g}, "
            f"noise_floor={noise_floor:g}s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"latency gate clean: {len(baseline)} config(s) within "
        f"rel_threshold={rel_threshold:g} + noise_floor={noise_floor:g}s "
        f"of {baseline_path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
