"""Run paper experiments from the command line.

    python -m repro.bench              # list experiments
    python -m repro.bench fig7 fig14   # run and print selected ones
    python -m repro.bench all          # run everything
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from . import experiments
from .harness import ExperimentResult
from .validation import validation_grid

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig7": experiments.figure7,
    "fig8": experiments.figure8,
    "fig9": experiments.figure9,
    "fig10": experiments.figure10,
    "fig11": experiments.figure11,
    "fig12": experiments.figure12,
    "fig13": experiments.figure13,
    "fig14": experiments.figure14,
    "table1": experiments.table1,
    "ext-large-update": experiments.ext_large_update,
    "ext-method-chooser": experiments.ext_method_chooser,
    "ext-storage": experiments.ext_storage_overhead,
    "ext-skew": experiments.ext_skew_sensitivity,
    "ext-query-speedup": experiments.ext_query_speedup,
    "ext-view-placement": experiments.ext_view_placement,
    "ext-aggregates": experiments.ext_aggregate_views,
    "ext-cost-sensitivity": experiments.ext_cost_sensitivity,
    "ext-fault-overhead": experiments.ext_fault_overhead,
    "validation": validation_grid,
}


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python -m repro.bench <experiment ...|all>")
        print("experiments:", ", ".join(EXPERIMENTS))
        return 1
    names = list(EXPERIMENTS) if argv == ["all"] else argv
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}")
            return 1
        print(runner().render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
