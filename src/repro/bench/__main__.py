"""Run paper experiments from the command line.

    python -m repro.bench                        # list experiments
    python -m repro.bench fig7 fig14             # run and print selected ones
    python -m repro.bench all                    # run everything
    python -m repro.bench --profile fig7         # cProfile, top 25 by cumtime

``--profile`` wraps the selected experiments in :mod:`cProfile` and prints
the 25 hottest call sites by cumulative time — the view used to find the
batched engine's wins (see DESIGN.md and ``repro.bench.perf``).
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from typing import Callable, Dict

from . import experiments
from .harness import ExperimentResult
from .validation import validation_grid

PROFILE_TOP = 25

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig7": experiments.figure7,
    "fig8": experiments.figure8,
    "fig9": experiments.figure9,
    "fig10": experiments.figure10,
    "fig11": experiments.figure11,
    "fig12": experiments.figure12,
    "fig13": experiments.figure13,
    "fig14": experiments.figure14,
    "table1": experiments.table1,
    "ext-large-update": experiments.ext_large_update,
    "ext-method-chooser": experiments.ext_method_chooser,
    "ext-storage": experiments.ext_storage_overhead,
    "ext-skew": experiments.ext_skew_sensitivity,
    "ext-query-speedup": experiments.ext_query_speedup,
    "ext-view-placement": experiments.ext_view_placement,
    "ext-aggregates": experiments.ext_aggregate_views,
    "ext-cost-sensitivity": experiments.ext_cost_sensitivity,
    "ext-fault-overhead": experiments.ext_fault_overhead,
    "ext-failover-overhead": experiments.ext_failover_overhead,
    "validation": validation_grid,
}


def _run_experiments(names: list[str]) -> int:
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}")
            return 1
        print(runner().render())
        print()
    return 0


def main(argv: list[str]) -> int:
    profile = "--profile" in argv
    argv = [arg for arg in argv if arg != "--profile"]
    if not argv:
        print("usage: python -m repro.bench [--profile] <experiment ...|all>")
        print("experiments:", ", ".join(EXPERIMENTS))
        return 1
    names = list(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; choose from {list(EXPERIMENTS)}")
        return 1
    if not profile:
        return _run_experiments(names)
    profiler = cProfile.Profile()
    status = profiler.runcall(_run_experiments, names)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP)
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
