"""Wall-clock throughput harness for the batched delta-execution engine.

Every other bench in this package reports *modeled* costs (ledger charges,
I/Os, messages).  This one measures real wall-clock time: how many delta
tuples per second the Python engine sustains with the batched execution
paths on versus off, for all three maintenance methods, uniform and skewed
key distributions, and eager versus deferred application — plus a
worker-scaling sweep of the fork-based parallel node engine
(``Cluster(workers=N)``), a multi-view overlap sweep (V same-clause
views maintained by the shared delta-propagation DAG versus the
independent per-view loop), and a per-statement latency section
(percentiles, attribution, saturation knees — ``repro.bench.latency``).

The reference engine differs from the batched one only through
``Cluster.batch_execution``; both charge bit-identical ledger cells (see
``tests/test_batch_equivalence.py``), so the speedups reported here are
pure interpreter-overhead wins — plan compilation, probe memoization,
coalesced sends, and bulk fragment writes.  The parallel engine is pinned
the same way by ``tests/test_parallel_equivalence.py``, so its sweep
measures pure execution parallelism (plus probe-cache reuse) on identical
modeled work.  The report records ``cpus`` because the parallel numbers
are only meaningful relative to the cores actually available: on a
single-core container the workers time-share one CPU and the sweep
measures engine overhead, not speedup.

Workload RNG seeds are derived from the config name (CRC-32 of the case
label), so every case is reproducible from its name alone and no two
cases share a sampling stream by accident.

Usage::

    PYTHONPATH=src python -m repro.bench.perf            # full run
    PYTHONPATH=src python -m repro.bench.perf --smoke    # CI-sized
    PYTHONPATH=src python -m repro.bench.perf --out /tmp/p.json
    PYTHONPATH=src python -m repro.bench.perf --smoke --trace perf-traces

Writes ``BENCH_PERF.json`` at the repo root by default, plus a
``*.meta.json`` sidecar carrying the generation timestamp.  The report
itself contains no wall-clock-of-day fields, so re-running an identical
build produces an identical results document — regeneration diffs show
only real measurement drift, and ``repro.bench.regress`` can gate the
committed file byte-for-byte.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict, dataclass, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.deferred import defer_view
from ..workloads.skewed import SkewedJoinWorkload, build_skewed_cluster
from ..workloads.uniform import UniformJoinWorkload, build_cluster
from .harness import config_seed
from .latency import (
    LatencyConfig,
    render_latency,
    run_latency,
    validate_latency_section,
)

__all__ = ["SCHEMA_VERSION", "PerfConfig", "config_seed", "run", "main"]

SCHEMA_VERSION = 6
METHODS = ("naive", "auxiliary", "global_index")
WORKLOADS = ("uniform", "skewed")
MODES = ("eager", "deferred")
HEADLINE_TARGET_SPEEDUP = 3.0
#: Multi-view headline: five views sharing one A ⋈ B join clause (distinct
#: projections), Zipf keys, shared DAG vs the independent per-view loop.
#: The shared path runs the partition pass and probe rounds once per
#: statement instead of five times, so >= 2x is the acceptance bar.
HEADLINE_MULTI_VIEW_TARGET_SPEEDUP = 2.0
HEADLINE_MULTI_VIEW_COUNT = 5
#: Parallel headline: workers=4 on the skewed large transaction vs the
#: serial batched engine.  Only achievable with >= 4 real cores; the report
#: states ``met_target`` honestly and carries ``cpus`` as context.
HEADLINE_PARALLEL_TARGET_SPEEDUP = 2.0
#: Acceptance bound for the workers=1 pool (pure engine overhead).
PARALLEL_OVERHEAD_BUDGET = 0.10
#: Overheads below this fraction are indistinguishable from run-to-run
#: timing noise on a shared box; ``workers1_overhead`` is clamped at zero
#: and carries the raw signed measurement alongside, so CI asserts against
#: ``max(0, raw) <= budget`` instead of a noise sign-flip.
PARALLEL_OVERHEAD_NOISE_FLOOR = 0.02


@dataclass(frozen=True)
class PerfConfig:
    """Sizing knobs for one harness run."""

    num_nodes: int = 8
    num_keys: int = 64
    fanout: int = 4
    skew: float = 1.2
    total_rows: int = 1200          # rows per grid case
    statement_size: int = 20        # rows per eager statement
    headline_rows: int = 4800       # one large skewed transaction
    repeats: int = 3                # best-of timing repeats
    worker_counts: Tuple[int, ...] = (1, 2, 4)  # parallel sweep
    multi_view_counts: Tuple[int, ...] = (1, 2, 5, 10)  # overlap sweep
    # Latency section (repro.bench.latency): open-loop saturation sweep
    # sizing.  ``latency_worker_counts`` uses 0 for the inline engine.
    latency_ops: int = 240
    latency_statement_size: int = 8
    latency_read_fraction: float = 0.25
    latency_worker_counts: Tuple[int, ...] = (0, 2)

    @classmethod
    def smoke(cls) -> "PerfConfig":
        return cls(
            num_nodes=4,
            num_keys=16,
            fanout=4,
            total_rows=160,
            statement_size=16,
            headline_rows=240,
            repeats=1,
            worker_counts=(2,),
            multi_view_counts=(1, 5),
            latency_ops=36,
            latency_worker_counts=(0,),
        )

    def latency_config(self) -> LatencyConfig:
        """The latency-harness sizing derived from this run's knobs."""
        return LatencyConfig(
            num_nodes=self.num_nodes,
            num_keys=self.num_keys,
            fanout=self.fanout,
            skew=self.skew,
            ops=self.latency_ops,
            statement_size=self.latency_statement_size,
            read_fraction=self.latency_read_fraction,
            worker_counts=self.latency_worker_counts,
        )


@dataclass
class CaseResult:
    """One grid cell: a (method, workload, mode) pair timed both ways."""

    method: str
    workload: str
    mode: str
    rows: int
    reference_seconds: float
    batched_seconds: float
    seed: Optional[int] = None

    @property
    def reference_tps(self) -> float:
        return self.rows / self.reference_seconds

    @property
    def batched_tps(self) -> float:
        return self.rows / self.batched_seconds

    @property
    def speedup(self) -> float:
        return self.reference_seconds / self.batched_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "workload": self.workload,
            "mode": self.mode,
            "rows": self.rows,
            "seed": self.seed,
            "reference_seconds": round(self.reference_seconds, 6),
            "batched_seconds": round(self.batched_seconds, 6),
            "reference_tps": round(self.reference_tps, 1),
            "batched_tps": round(self.batched_tps, 1),
            "speedup": round(self.speedup, 2),
        }


@dataclass
class ScalingResult:
    """One worker-sweep cell: the parallel engine at ``workers`` versus the
    serial batched engine on the same statements (same modeled charges)."""

    method: str
    workload: str
    workers: int
    rows: int
    seed: Optional[int]
    serial_seconds: float
    parallel_seconds: float

    @property
    def serial_tps(self) -> float:
        return self.rows / self.serial_seconds

    @property
    def parallel_tps(self) -> float:
        return self.rows / self.parallel_seconds

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "workload": self.workload,
            "workers": self.workers,
            "rows": self.rows,
            "seed": self.seed,
            "serial_seconds": round(self.serial_seconds, 6),
            "parallel_seconds": round(self.parallel_seconds, 6),
            "serial_tps": round(self.serial_tps, 1),
            "parallel_tps": round(self.parallel_tps, 1),
            "speedup": round(self.speedup, 2),
        }


@dataclass
class MultiViewResult:
    """One overlap-sweep cell: V same-clause views maintained through the
    shared delta-propagation DAG versus the independent per-view loop.

    Both sides run the batched engine on identical statements; the modeled
    view contents are bit-identical (``tests/test_multiview_equivalence.py``),
    so the speedup is the join work the DAG avoided: V-1 of every partition
    pass and probe round per statement.  The shared-side counters come from
    ``cluster.multi_view_stats`` and prove the sharing actually engaged.
    """

    method: str
    views: int
    rows: int
    seed: Optional[int]
    independent_seconds: float
    shared_seconds: float
    partition_passes_per_statement: float
    probes_executed: int
    probes_deduped: int

    @property
    def independent_tps(self) -> float:
        return self.rows / self.independent_seconds

    @property
    def shared_tps(self) -> float:
        return self.rows / self.shared_seconds

    @property
    def speedup(self) -> float:
        return self.independent_seconds / self.shared_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "views": self.views,
            "rows": self.rows,
            "seed": self.seed,
            "independent_seconds": round(self.independent_seconds, 6),
            "shared_seconds": round(self.shared_seconds, 6),
            "independent_tps": round(self.independent_tps, 1),
            "shared_tps": round(self.shared_tps, 1),
            "speedup": round(self.speedup, 2),
            "partition_passes_per_statement": round(
                self.partition_passes_per_statement, 4
            ),
            "probes_executed": self.probes_executed,
            "probes_deduped": self.probes_deduped,
        }


#: Projection variants for the overlapping views; every view keeps
#: ``("A", "e")`` (the view partitioning attribute) and shares the same
#: A.c = B.d join clause, so all V group under one CompiledJoin.
MULTI_VIEW_SELECTS: Tuple[Tuple[Tuple[str, str], ...], ...] = (
    (("A", "a"), ("A", "e"), ("B", "b"), ("B", "f")),
    (("A", "e"), ("B", "f")),
    (("A", "c"), ("A", "e"), ("B", "d")),
    (("A", "a"), ("A", "c"), ("A", "e"), ("B", "b")),
    (("A", "e"), ("B", "b"), ("B", "d"), ("B", "f")),
)


def _make_cluster(
    config: PerfConfig,
    workload_kind: str,
    method: str,
    batched: bool,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
):
    """A fresh cluster for one timed run, with the engine mode set.

    ``build_cluster`` pre-loads B uncharged; the timed region is only the
    delta statements, matching what the modeled benches measure.  ``seed``
    (skewed cases only) comes from :func:`config_seed` so each case owns a
    reproducible sampling stream.  ``workers`` arms the fork-based parallel
    engine; callers must ``close()`` such clusters.
    """
    if workload_kind == "uniform":
        workload = UniformJoinWorkload(
            num_keys=config.num_keys, fanout=config.fanout
        )
        cluster = build_cluster(
            workload, num_nodes=config.num_nodes, method=method, strategy="inl"
        )
    else:
        workload = SkewedJoinWorkload(
            num_keys=config.num_keys, fanout=config.fanout, skew=config.skew
        )
        if seed is not None:
            workload = replace(workload, seed=seed)
        cluster = build_skewed_cluster(
            workload, num_nodes=config.num_nodes, method=method, strategy="inl"
        )
    cluster.batch_execution = batched
    if workers is not None:
        cluster.workers = workers  # armed lazily at the first statement
    return cluster, workload


def _timed(thunk: Callable[[], None], repeats: int) -> float:
    """Best-of-N wall-clock seconds (each repeat gets a fresh closure via
    the caller, so N=1 in smoke mode is just one run)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def _run_one(
    config: PerfConfig,
    workload_kind: str,
    method: str,
    mode: str,
    batched: bool,
) -> float:
    """Time ``total_rows`` of delta application on a fresh cluster.

    Eager mode applies ``statement_size``-row statements as they arrive;
    deferred mode queues everything behind ``defer_view`` and flushes with
    one refresh — both ends of the paper's immediate/deferred spectrum.
    """

    seed = config_seed(f"grid/{workload_kind}/{method}/{mode}")

    def once() -> float:
        cluster, workload = _make_cluster(
            config, workload_kind, method, batched, seed=seed
        )
        rows = workload.a_rows(config.total_rows)
        statements = [
            rows[i : i + config.statement_size]
            for i in range(0, len(rows), config.statement_size)
        ]
        if mode == "deferred":
            wrapper = defer_view(cluster, "JV", flush_threshold=None)
            start = time.perf_counter()
            for statement in statements:
                cluster.insert("A", statement)
            wrapper.refresh()
            return time.perf_counter() - start
        start = time.perf_counter()
        for statement in statements:
            cluster.insert("A", statement)
        return time.perf_counter() - start

    return min(once() for _ in range(config.repeats))


def run_grid(config: PerfConfig) -> List[CaseResult]:
    results: List[CaseResult] = []
    for method in METHODS:
        for workload_kind in WORKLOADS:
            for mode in MODES:
                reference = _run_one(config, workload_kind, method, mode, False)
                batched = _run_one(config, workload_kind, method, mode, True)
                results.append(
                    CaseResult(
                        method=method,
                        workload=workload_kind,
                        mode=mode,
                        rows=config.total_rows,
                        reference_seconds=reference,
                        batched_seconds=batched,
                        seed=config_seed(f"grid/{workload_kind}/{method}/{mode}"),
                    )
                )
    return results


def run_headline(config: PerfConfig) -> CaseResult:
    """The probe memo's target case: one large transaction whose Zipf keys
    repeat heavily, so the per-tuple engine probes the same B keys over and
    over while the batched engine probes each distinct key once."""
    seed = config_seed("headline/skewed/auxiliary/large_transaction")

    def once(batched: bool) -> float:
        cluster, workload = _make_cluster(
            config, "skewed", "auxiliary", batched, seed=seed
        )
        rows = workload.a_rows(config.headline_rows)
        start = time.perf_counter()
        cluster.insert("A", rows)
        return time.perf_counter() - start

    # Interleave the two engines (A/B style) so slow drift in machine load
    # hits both sides alike, and take the best of the extra repeats.
    repeats = max(config.repeats, 3) if config.repeats > 1 else 1
    reference, batched = float("inf"), float("inf")
    for _ in range(repeats):
        reference = min(reference, once(False))
        batched = min(batched, once(True))
    return CaseResult(
        method="auxiliary",
        workload="skewed",
        mode="large_transaction",
        rows=config.headline_rows,
        reference_seconds=reference,
        batched_seconds=batched,
        seed=seed,
    )


# ----------------------------------------------------- multi-view sweep


def _build_multiview_cluster(
    config: PerfConfig,
    method: str,
    num_views: int,
    shared: bool,
    workload: SkewedJoinWorkload,
):
    """A cluster with ``num_views`` views over one A ⋈ B join clause.

    The views differ only in projection (cycling :data:`MULTI_VIEW_SELECTS`),
    so they share one compiled join and — with ``shared`` — one
    delta-propagation DAG per statement.  B pre-loads uncharged exactly as
    :func:`repro.workloads.uniform.build_cluster` does, so the timed region
    is only the delta statements.
    """
    from ..cluster.cluster import Cluster
    from ..cluster.partitioning import HashPartitioning
    from ..core.view import two_way_view
    from ..workloads.uniform import A_SCHEMA, B_SCHEMA

    cluster = Cluster(num_nodes=config.num_nodes, shared_maintenance=shared)
    cluster.create_relation(A_SCHEMA, partitioned_on="a")
    cluster.create_relation(B_SCHEMA, partitioned_on="b", indexes=[("d", False)])
    b_info = cluster.catalog.relation("B")
    for row in workload.b_rows():
        node = b_info.partitioner.node_of_row(row)
        cluster.nodes[node].fragment("B").insert(row)
    b_info.row_count += workload.num_keys * workload.fanout
    for index in range(num_views):
        select = MULTI_VIEW_SELECTS[index % len(MULTI_VIEW_SELECTS)]
        cluster.create_join_view(
            two_way_view(
                f"JV{index}", "A", "c", "B", "d",
                select=list(select),
                partitioning=HashPartitioning("e"),
            ),
            method=method,
            strategy="inl",
        )
    return cluster


def _time_multiview(
    config: PerfConfig,
    method: str,
    num_views: int,
    shared: bool,
    seed: int,
):
    """Time ``total_rows`` of Zipf-keyed eager statements against
    ``num_views`` overlapping views; returns (seconds, shared-path stats)."""
    workload = SkewedJoinWorkload(
        num_keys=config.num_keys, fanout=config.fanout, skew=config.skew,
        seed=seed,
    )
    cluster = _build_multiview_cluster(config, method, num_views, shared, workload)
    rows = workload.a_rows(config.total_rows)
    statements = [
        rows[i : i + config.statement_size]
        for i in range(0, len(rows), config.statement_size)
    ]
    start = time.perf_counter()
    for statement in statements:
        cluster.insert("A", statement)
    return time.perf_counter() - start, cluster.multi_view_stats


def run_multi_view(config: PerfConfig) -> Dict[str, object]:
    """Overlap sweep (methods x V) plus the five-view headline.

    Each cell times the same Zipf statement stream twice — shared DAG off
    and on — A/B-interleaved per repeat so machine-load drift hits both
    sides alike.  ``partition_passes_per_statement`` is 1.0 whenever every
    view landed in one group and every statement took the shared path
    (V = 1 reports 0.0: the shared path never engages, by design).
    """
    sweep: List[MultiViewResult] = []
    for method in METHODS:
        for views in config.multi_view_counts:
            seed = config_seed(f"multi_view/{method}/v{views}")
            independent = shared = float("inf")
            stats = None
            for _ in range(config.repeats):
                elapsed, _unused = _time_multiview(
                    config, method, views, False, seed
                )
                independent = min(independent, elapsed)
                elapsed, run_stats = _time_multiview(
                    config, method, views, True, seed
                )
                if elapsed < shared:
                    shared, stats = elapsed, run_stats
            assert stats is not None
            sweep.append(
                MultiViewResult(
                    method=method,
                    views=views,
                    rows=config.total_rows,
                    seed=seed,
                    independent_seconds=independent,
                    shared_seconds=shared,
                    partition_passes_per_statement=(
                        stats.partition_passes_per_statement
                    ),
                    probes_executed=stats.probes_executed,
                    probes_deduped=stats.probes_deduped,
                )
            )
    headline = run_headline_multi_view(config)
    return {
        "sweep": [cell.as_dict() for cell in sweep],
        "headline": headline,
    }


def run_headline_multi_view(config: PerfConfig) -> Dict[str, object]:
    """The shared DAG's target case: five views, one join clause, Zipf keys.

    Independent maintenance pays five partition passes and five broadcast
    probe rounds per statement; the shared DAG pays one of each and fans
    the results out through five projections.  The naive method carries
    the headline because its broadcast probes are the costliest shareable
    work (auxiliary's one-node probes are small next to the per-view VIEW
    writes, which no scheme can share).  ``met_target`` reports the
    wall-clock honestly; the counters prove the sharing (one partition
    pass per statement, four probe executions deduped per probe run).
    """
    views = HEADLINE_MULTI_VIEW_COUNT
    seed = config_seed(f"headline_multi_view/skewed/naive/v{views}")
    repeats = max(config.repeats, 3) if config.repeats > 1 else 1
    independent = shared = float("inf")
    stats = None
    for _ in range(repeats):
        elapsed, _unused = _time_multiview(config, "naive", views, False, seed)
        independent = min(independent, elapsed)
        elapsed, run_stats = _time_multiview(config, "naive", views, True, seed)
        if elapsed < shared:
            shared, stats = elapsed, run_stats
    assert stats is not None
    speedup = independent / shared
    statements = max(1, stats.statements)
    return {
        "name": "five_view_shared_dag",
        "method": "naive",
        "views": views,
        "rows": config.total_rows,
        "seed": seed,
        "independent_seconds": round(independent, 6),
        "shared_seconds": round(shared, 6),
        "independent_tps": round(config.total_rows / independent, 1),
        "shared_tps": round(config.total_rows / shared, 1),
        "speedup": round(speedup, 2),
        "target_speedup": HEADLINE_MULTI_VIEW_TARGET_SPEEDUP,
        "met_target": speedup >= HEADLINE_MULTI_VIEW_TARGET_SPEEDUP,
        "statements": stats.statements,
        "partition_passes_per_statement": round(
            stats.partition_passes_per_statement, 4
        ),
        "probes_executed": stats.probes_executed,
        "probes_deduped": stats.probes_deduped,
        "probes_deduped_per_statement": round(
            stats.probes_deduped / statements, 4
        ),
    }


# ------------------------------------------------------- parallel sweep


def _time_statements(
    config: PerfConfig,
    workload_kind: str,
    method: str,
    workers: Optional[int],
    seed: int,
    rows_total: int,
    statement_size: Optional[int] = None,
    observer: Optional[Callable] = None,
) -> float:
    """Time ``rows_total`` rows of eager statements on a fresh cluster with
    the given worker count (``None`` = serial batched engine).

    ``observer(cluster, elapsed_seconds)``, if given, runs after the timed
    region but before the cluster closes — the hook the skew report uses to
    read per-worker busy time off the still-live engine."""
    cluster, workload = _make_cluster(
        config, workload_kind, method, True, workers=workers, seed=seed
    )
    rows = workload.a_rows(rows_total)
    size = statement_size or config.statement_size
    statements = [rows[i : i + size] for i in range(0, len(rows), size)]
    try:
        start = time.perf_counter()
        for statement in statements:
            cluster.insert("A", statement)
        elapsed = time.perf_counter() - start
        if observer is not None:
            observer(cluster, elapsed)
        return elapsed
    finally:
        cluster.close()


def run_scaling(config: PerfConfig) -> List[ScalingResult]:
    """Worker sweep: methods x workloads x ``config.worker_counts``.

    Both sides run the *batched* engine on identical statements; the only
    difference is where node-local work executes (coordinator vs forked
    shard workers), so speedup is pure execution parallelism minus
    superstep envelope overhead.
    """
    results: List[ScalingResult] = []
    for method in METHODS:
        for workload_kind in WORKLOADS:
            for workers in config.worker_counts:
                name = f"scaling/{workload_kind}/{method}/w{workers}"
                seed = config_seed(name)
                serial, parallel = float("inf"), float("inf")
                for _ in range(config.repeats):
                    serial = min(
                        serial,
                        _time_statements(
                            config, workload_kind, method, None, seed,
                            config.total_rows,
                        ),
                    )
                    parallel = min(
                        parallel,
                        _time_statements(
                            config, workload_kind, method, workers, seed,
                            config.total_rows,
                        ),
                    )
                results.append(
                    ScalingResult(
                        method=method,
                        workload=workload_kind,
                        workers=workers,
                        rows=config.total_rows,
                        seed=seed,
                        serial_seconds=serial,
                        parallel_seconds=parallel,
                    )
                )
    return results


def run_headline_parallel(config: PerfConfig) -> Dict[str, object]:
    """The parallel headline: the skewed large transaction at the sweep's
    top worker count versus the serial batched engine, plus the workers=1
    overhead measurement (the pure cost of the superstep machinery).

    ``met_target`` is reported honestly against the wall clock; on hosts
    with fewer cores than workers the target is physically unreachable
    (workers time-share the CPU) — ``cpus`` in the report carries that
    context.
    """
    workers = max(config.worker_counts)
    seed = config_seed(f"headline_parallel/skewed/auxiliary/w{workers}")
    #: Engine telemetry snapshots (busy ns, supersteps, statements, per-
    #: worker IPC bytes, per-worker envelopes); the timing runs record one
    #: per repeat, and a dedicated statement-stream run (below) records the
    #: snapshot the transport/skew fields are built from.
    parallel_runs: List[Tuple[List[int], int, int, List[int], List[int]]] = []

    def observe(cluster, _elapsed: float) -> None:
        engine = cluster._parallel_engine
        if engine is not None:
            parallel_runs.append((
                list(engine.worker_busy_ns),
                engine.supersteps,
                engine.statements,
                [
                    tx + rx
                    for tx, rx in zip(engine.ipc_tx_bytes, engine.ipc_rx_bytes)
                ],
                list(engine.envelopes),
            ))

    def once(w: Optional[int]) -> float:
        return _time_statements(
            config, "skewed", "auxiliary", w, seed,
            config.headline_rows, statement_size=config.headline_rows,
        )

    repeats = max(config.repeats, 3) if config.repeats > 1 else 1
    serial = parallel = one_worker = float("inf")
    for _ in range(repeats):
        serial = min(serial, once(None))
        parallel = min(parallel, once(workers))
        one_worker = min(one_worker, once(1))
    # Transport + skew measurement: the same workload as a *stream* of
    # ``statement_size``-row statements.  One giant statement finishes in a
    # single superstep whose per-worker CPU time is microseconds — pure
    # timer noise; the stream accumulates hundreds of supersteps of sticky-
    # routed probes, which is what the skew-aware router actually balances,
    # and gives the per-statement envelope/barrier normalization meaning.
    _time_statements(
        config, "skewed", "auxiliary", workers, seed,
        config.headline_rows, observer=observe,
    )
    speedup = serial / parallel
    raw_overhead = one_worker / serial - 1.0
    # A negative measured overhead means the workers=1 engine timed *under*
    # serial — pure noise (it runs a strict superset of the serial work).
    # Report max(0, raw) so CI can assert against the budget meaningfully,
    # with the signed raw value and the noise floor alongside.
    overhead = max(0.0, raw_overhead)
    # Per-worker busy-CPU variance of the statement-stream run: slot-sticky
    # skew-aware routing spreads Zipf-hot keys by observed match counts, so
    # the max/min busy ratio measures how well that worked (the
    # skew-diagnosis report names the keys responsible).
    if parallel_runs:
        busy_ns, supersteps, statements, ipc_bytes, envelopes = parallel_runs[-1]
    else:  # pragma: no cover - engine never armed (fork unavailable)
        busy_ns, supersteps, statements, ipc_bytes, envelopes = [], 0, 0, [], []
    busy_seconds = [round(ns / 1e9, 6) for ns in busy_ns]
    min_busy = min(busy_ns) if busy_ns else 0
    worker_skew = round(max(busy_ns) / min_busy, 4) if min_busy > 0 else None
    return {
        "name": "skewed_large_transaction_parallel",
        "method": "auxiliary",
        "workload": "skewed",
        "workers": workers,
        "rows": config.headline_rows,
        "seed": seed,
        "serial_seconds": round(serial, 6),
        "parallel_seconds": round(parallel, 6),
        "serial_tps": round(config.headline_rows / serial, 1),
        "parallel_tps": round(config.headline_rows / parallel, 1),
        "speedup": round(speedup, 2),
        "target_speedup": HEADLINE_PARALLEL_TARGET_SPEEDUP,
        "met_target": speedup >= HEADLINE_PARALLEL_TARGET_SPEEDUP,
        "workers1_seconds": round(one_worker, 6),
        "workers1_overhead": round(overhead, 4),
        "workers1_overhead_raw": round(raw_overhead, 4),
        "noise_floor": PARALLEL_OVERHEAD_NOISE_FLOOR,
        "workers1_overhead_budget": PARALLEL_OVERHEAD_BUDGET,
        "workers1_within_budget": overhead <= PARALLEL_OVERHEAD_BUDGET,
        # Transport/skew fields below come from the statement-stream
        # measurement run (this size), not the single-statement timing runs.
        "measurement_statement_size": config.statement_size,
        "supersteps": supersteps,
        "statements": statements,
        # Framed step-envelope bytes (tx+rx) per worker over the whole
        # measurement stream — the wire no longer carries mutations or view
        # rows.
        "ipc_bytes_per_worker": ipc_bytes,
        # Envelopes per statement across the pool; <= workers means at most
        # one envelope per worker per transaction statement.
        "envelopes_per_statement": (
            round(sum(envelopes) / statements, 4) if statements else None
        ),
        # Reply barriers per transaction statement (was 3 pre-refactor:
        # fused mutations, probe hop, view writes — now just the read hop).
        "barriers_per_transaction": (
            round(supersteps / statements, 4) if statements else None
        ),
        "worker_busy_seconds": busy_seconds,
        "worker_skew": worker_skew,
    }


# ---------------------------------------------------------- traced runs


def run_traced(config: PerfConfig, out_dir: Path) -> Dict[str, object]:
    """``--trace``: per-method traced runs of the skewed workload.

    For every maintenance method, runs the skewed headline workload on the
    parallel engine with observability attached and writes

    * ``trace-<method>.json`` — Chrome-trace/Perfetto span export,
    * ``metrics-<method>.prom`` — the Prometheus metrics of that run,
    * ``skew_report.json`` — the skew diagnosis: per-worker probe-cache
      counters plus the heavy-hitter join keys each worker promoted to
      residency (hot keys are *why* one worker's supersteps run long).

    Tracing never perturbs modeled costs (the equivalence suites pin
    that), so these artifacts describe exactly the run the untraced bench
    times.
    """
    from ..obs.collect import attach_observability, collect_cluster_metrics
    from ..obs.export import to_chrome_trace

    out_dir.mkdir(parents=True, exist_ok=True)
    workers = max(config.worker_counts)
    artifacts: List[str] = []
    skew_report: Dict[str, object] = {
        "workers": workers,
        "rows": config.headline_rows,
        "statement_size": config.statement_size,
        "methods": {},
    }
    for method in METHODS:
        seed = config_seed(f"trace/skewed/{method}/w{workers}")
        cluster, workload = _make_cluster(
            config, "skewed", method, True, workers=workers, seed=seed
        )
        obs = attach_observability(cluster)
        rows = workload.a_rows(config.headline_rows)
        size = config.statement_size
        try:
            for start in range(0, len(rows), size):
                cluster.insert("A", rows[start : start + size])
            engine = cluster._parallel_engine
            heavy = engine.heavy_hitters() if engine is not None else []
            cache_stats = engine.probe_cache_stats() if engine is not None else []
            busy_ns = list(engine.worker_busy_ns) if engine is not None else []
            registry = collect_cluster_metrics(cluster)
        finally:
            cluster.close()
        trace_path = out_dir / f"trace-{method}.json"
        trace_path.write_text(
            json.dumps(
                to_chrome_trace(obs.tracer, process_name=f"repro.perf/{method}")
            )
            + "\n"
        )
        prom_path = out_dir / f"metrics-{method}.prom"
        prom_path.write_text(registry.to_prometheus())
        artifacts.extend([trace_path.name, prom_path.name])
        # Hottest keys across all workers, largest match sets first.
        hot = sorted(
            (entry for per_worker in heavy for entry in per_worker),
            key=lambda entry: (-entry[4], entry),
        )[:20]
        skew_report["methods"][method] = {
            "seed": seed,
            "spans": obs.tracer.span_count(),
            "worker_busy_seconds": [round(ns / 1e9, 6) for ns in busy_ns],
            "probe_cache": [dict(stats) for stats in cache_stats],
            "heavy_hitters": [
                {
                    "kind": kind,
                    "node": node,
                    "structure": structure,
                    "key": key_repr,
                    "matches": matches,
                }
                for kind, node, structure, key_repr, matches in hot
            ],
        }
    skew_path = out_dir / "skew_report.json"
    skew_path.write_text(json.dumps(skew_report, indent=2, sort_keys=True) + "\n")
    artifacts.append(skew_path.name)
    return {"out_dir": str(out_dir), "artifacts": artifacts}


def run(config: PerfConfig, smoke: bool = False) -> Dict[str, object]:
    grid = run_grid(config)
    headline = run_headline(config)
    scaling = run_scaling(config)
    headline_parallel = run_headline_parallel(config)
    multi_view = run_multi_view(config)
    latency = run_latency(config.latency_config())
    # No generated_at here: timestamps live in the *.meta.json sidecar so
    # the results document stays byte-stable across identical re-runs.
    return {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "cpus": os.cpu_count(),
        "config": asdict(config),
        "results": [case.as_dict() for case in grid],
        "headline": {
            **headline.as_dict(),
            "name": "skewed_large_transaction",
            "target_speedup": HEADLINE_TARGET_SPEEDUP,
            "met_target": headline.speedup >= HEADLINE_TARGET_SPEEDUP,
        },
        "scaling": [case.as_dict() for case in scaling],
        "headline_parallel": headline_parallel,
        "multi_view": multi_view,
        "latency": latency,
    }


def validate_report(report: Dict[str, object]) -> List[str]:
    """Schema check used by the CI perf-smoke job; returns problems found."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append("schema_version mismatch")
    for key in (
        "cpus", "config", "results", "headline",
        "scaling", "headline_parallel", "multi_view", "latency",
    ):
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if "generated_at" in report:
        problems.append(
            "generated_at does not belong in the report (timestamps live in "
            "the *.meta.json sidecar so the results stay byte-stable)"
        )
    results = report.get("results", [])
    expected = len(METHODS) * len(WORKLOADS) * len(MODES)
    if len(results) != expected:
        problems.append(f"expected {expected} grid results, got {len(results)}")
    required = {
        "method", "workload", "mode", "rows", "seed",
        "reference_seconds", "batched_seconds",
        "reference_tps", "batched_tps", "speedup",
    }
    for index, case in enumerate(results):
        missing = required - set(case)
        if missing:
            problems.append(f"result {index} missing fields {sorted(missing)}")
            continue
        if case["reference_tps"] <= 0 or case["batched_tps"] <= 0:
            problems.append(f"result {index} has non-positive throughput")
    headline = report.get("headline", {})
    for key in required | {"name", "target_speedup", "met_target"}:
        if key not in headline:
            problems.append(f"headline missing field {key!r}")
    scaling = report.get("scaling", [])
    worker_counts = tuple(report.get("config", {}).get("worker_counts", ()))
    expected_scaling = len(METHODS) * len(WORKLOADS) * len(worker_counts)
    if len(scaling) != expected_scaling:
        problems.append(
            f"expected {expected_scaling} scaling results, got {len(scaling)}"
        )
    scaling_required = {
        "method", "workload", "workers", "rows", "seed",
        "serial_seconds", "parallel_seconds",
        "serial_tps", "parallel_tps", "speedup",
    }
    for index, case in enumerate(scaling):
        missing = scaling_required - set(case)
        if missing:
            problems.append(
                f"scaling result {index} missing fields {sorted(missing)}"
            )
            continue
        if case["serial_tps"] <= 0 or case["parallel_tps"] <= 0:
            problems.append(f"scaling result {index} has non-positive throughput")
    parallel = report.get("headline_parallel", {})
    for key in scaling_required | {
        "name", "target_speedup", "met_target",
        "workers1_seconds", "workers1_overhead", "workers1_overhead_raw",
        "noise_floor", "workers1_overhead_budget", "workers1_within_budget",
        "measurement_statement_size", "supersteps", "statements",
        "ipc_bytes_per_worker",
        "envelopes_per_statement", "barriers_per_transaction",
        "worker_busy_seconds", "worker_skew",
    }:
        if key not in parallel:
            problems.append(f"headline_parallel missing field {key!r}")
    busy = parallel.get("worker_busy_seconds")
    if busy is not None and len(busy) != parallel.get("workers"):
        problems.append(
            "headline_parallel worker_busy_seconds length != workers"
        )
    ipc = parallel.get("ipc_bytes_per_worker")
    if ipc is not None and len(ipc) != parallel.get("workers"):
        problems.append(
            "headline_parallel ipc_bytes_per_worker length != workers"
        )
    overhead = parallel.get("workers1_overhead")
    if overhead is not None and overhead < 0:
        problems.append("workers1_overhead must be clamped at zero")
    multi_view = report.get("multi_view", {})
    sweep = multi_view.get("sweep", [])
    view_counts = tuple(report.get("config", {}).get("multi_view_counts", ()))
    expected_multi = len(METHODS) * len(view_counts)
    if len(sweep) != expected_multi:
        problems.append(
            f"expected {expected_multi} multi_view sweep cells, got {len(sweep)}"
        )
    multi_required = {
        "method", "views", "rows", "seed",
        "independent_seconds", "shared_seconds",
        "independent_tps", "shared_tps", "speedup",
        "partition_passes_per_statement", "probes_executed", "probes_deduped",
    }
    for index, cell in enumerate(sweep):
        missing = multi_required - set(cell)
        if missing:
            problems.append(
                f"multi_view cell {index} missing fields {sorted(missing)}"
            )
            continue
        if cell["independent_tps"] <= 0 or cell["shared_tps"] <= 0:
            problems.append(f"multi_view cell {index} has non-positive throughput")
        if cell["views"] >= 2 and cell["partition_passes_per_statement"] <= 0:
            problems.append(
                f"multi_view cell {index} (V={cell['views']}) never took "
                "the shared path"
            )
    multi_headline = multi_view.get("headline", {})
    for key in multi_required | {
        "name", "target_speedup", "met_target", "statements",
        "probes_deduped_per_statement",
    }:
        if key not in multi_headline:
            problems.append(f"multi_view headline missing field {key!r}")
    if multi_headline.get("views") != HEADLINE_MULTI_VIEW_COUNT:
        problems.append(
            f"multi_view headline must run V={HEADLINE_MULTI_VIEW_COUNT}"
        )
    latency = report.get("latency")
    if isinstance(latency, dict):
        problems.extend(
            f"latency: {problem}"
            for problem in validate_latency_section(latency)
        )
    return problems


def default_output_path() -> Path:
    """BENCH_PERF.json at the repo root (three levels above this file's
    ``src/repro/bench`` package), falling back to the working directory."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src").is_dir():
        return candidate / "BENCH_PERF.json"
    return Path.cwd() / "BENCH_PERF.json"


def render(report: Dict[str, object]) -> str:
    lines = [
        "Batched engine wall-clock throughput "
        f"({'smoke' if report['smoke'] else 'full'} config)",
        "",
        f"{'method':<13} {'workload':<9} {'mode':<9} "
        f"{'ref tup/s':>11} {'batch tup/s':>12} {'speedup':>8}",
    ]
    for case in report["results"]:
        lines.append(
            f"{case['method']:<13} {case['workload']:<9} {case['mode']:<9} "
            f"{case['reference_tps']:>11,.0f} {case['batched_tps']:>12,.0f} "
            f"{case['speedup']:>7.2f}x"
        )
    headline = report["headline"]
    lines.append("")
    lines.append(
        f"headline ({headline['name']}, {headline['rows']} rows, "
        f"method={headline['method']}): "
        f"{headline['reference_tps']:,.0f} -> {headline['batched_tps']:,.0f} "
        f"tuples/s, {headline['speedup']:.2f}x "
        f"(target {headline['target_speedup']:.1f}x, "
        f"{'met' if headline['met_target'] else 'MISSED'})"
    )
    lines.append("")
    lines.append(
        f"Parallel worker sweep ({report['cpus']} CPU core(s) available)"
    )
    lines.append(
        f"{'method':<13} {'workload':<9} {'workers':>7} "
        f"{'serial tup/s':>13} {'par tup/s':>10} {'speedup':>8}"
    )
    for case in report["scaling"]:
        lines.append(
            f"{case['method']:<13} {case['workload']:<9} {case['workers']:>7} "
            f"{case['serial_tps']:>13,.0f} {case['parallel_tps']:>10,.0f} "
            f"{case['speedup']:>7.2f}x"
        )
    parallel = report["headline_parallel"]
    lines.append("")
    lines.append(
        f"parallel headline ({parallel['name']}, {parallel['rows']} rows, "
        f"workers={parallel['workers']}): "
        f"{parallel['serial_tps']:,.0f} -> {parallel['parallel_tps']:,.0f} "
        f"tuples/s, {parallel['speedup']:.2f}x "
        f"(target {parallel['target_speedup']:.1f}x, "
        f"{'met' if parallel['met_target'] else 'MISSED'}); "
        f"workers=1 overhead {parallel['workers1_overhead'] * 100:+.1f}% "
        f"(budget {parallel['workers1_overhead_budget'] * 100:.0f}%, "
        f"{'within' if parallel['workers1_within_budget'] else 'OVER'})"
    )
    skew = parallel.get("worker_skew")
    busy = ", ".join(f"{s:.3f}s" for s in parallel.get("worker_busy_seconds", []))
    lines.append(
        f"  worker busy CPU time [{busy}] over {parallel.get('supersteps', 0)} "
        f"supersteps, max/min skew "
        f"{f'{skew:.2f}x' if skew is not None else 'n/a'}"
    )
    envelopes = parallel.get("envelopes_per_statement")
    barriers = parallel.get("barriers_per_transaction")
    ipc = parallel.get("ipc_bytes_per_worker") or []
    lines.append(
        f"  transport: {parallel.get('statements', 0)} statement(s), "
        f"{f'{envelopes:.1f}' if envelopes is not None else 'n/a'} "
        f"envelope(s)/statement across the pool, "
        f"{f'{barriers:.1f}' if barriers is not None else 'n/a'} "
        f"barrier(s)/transaction, "
        f"{sum(ipc):,} framed IPC byte(s) total"
    )
    multi = report["multi_view"]
    lines.append("")
    lines.append("Shared multi-view maintenance (V same-clause views, Zipf keys)")
    lines.append(
        f"{'method':<13} {'views':>5} {'indep tup/s':>12} "
        f"{'shared tup/s':>13} {'speedup':>8} {'passes/stmt':>12}"
    )
    for cell in multi["sweep"]:
        lines.append(
            f"{cell['method']:<13} {cell['views']:>5} "
            f"{cell['independent_tps']:>12,.0f} {cell['shared_tps']:>13,.0f} "
            f"{cell['speedup']:>7.2f}x "
            f"{cell['partition_passes_per_statement']:>12.2f}"
        )
    mv_headline = multi["headline"]
    lines.append("")
    lines.append(
        f"multi-view headline ({mv_headline['name']}, V={mv_headline['views']}, "
        f"{mv_headline['rows']} rows, method={mv_headline['method']}): "
        f"{mv_headline['independent_tps']:,.0f} -> "
        f"{mv_headline['shared_tps']:,.0f} tuples/s, "
        f"{mv_headline['speedup']:.2f}x "
        f"(target {mv_headline['target_speedup']:.1f}x, "
        f"{'met' if mv_headline['met_target'] else 'MISSED'}); "
        f"{mv_headline['partition_passes_per_statement']:.2f} partition "
        f"pass(es)/statement, "
        f"{mv_headline['probes_deduped']} probe execution(s) deduped"
    )
    lines.append("")
    lines.append(render_latency(report["latency"]))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Measure wall-clock tuples/sec, batched engine vs reference.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny configuration for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: BENCH_PERF.json at the repo root)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="perf-traces", default=None, metavar="DIR",
        help="also write per-method Chrome-trace + Prometheus artifacts and "
        "a heavy-hitter skew-diagnosis report into DIR "
        "(default: perf-traces/)",
    )
    args = parser.parse_args(argv)
    config = PerfConfig.smoke() if args.smoke else PerfConfig()
    report = run(config, smoke=args.smoke)
    if args.trace is not None:
        report["trace"] = run_traced(config, Path(args.trace))
    problems = validate_report(report)
    if problems:  # pragma: no cover - self-check of freshly built report
        for problem in problems:
            print(f"schema problem: {problem}", file=sys.stderr)
        return 1
    out_path = args.out or default_output_path()
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    # The timestamp rides in a sidecar, not the report, so identical re-runs
    # of the same build leave BENCH_PERF.json byte-for-byte unchanged.
    meta_path = out_path.with_suffix(".meta.json")
    meta_path.write_text(
        json.dumps(
            {
                "generated_at": datetime.now(timezone.utc).isoformat(),
                "report": out_path.name,
                "schema_version": SCHEMA_VERSION,
            },
            indent=2,
        )
        + "\n"
    )
    print(render(report))
    print(f"\nwrote {out_path} (+ {meta_path.name})")
    if args.trace is not None:
        trace_info = report["trace"]
        print(
            f"wrote {len(trace_info['artifacts'])} trace artifact(s) "
            f"to {trace_info['out_dir']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
