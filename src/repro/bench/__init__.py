"""Benchmark harness: experiment drivers for every table and figure."""

from .harness import ExperimentResult, agreement_ratio, render_results
from .validation import validation_grid
from . import experiments

__all__ = [
    "ExperimentResult",
    "agreement_ratio",
    "render_results",
    "validation_grid",
    "experiments",
]
