"""TPC-R-style workload — the paper's validation schema (§3.3, Table 1).

Three relations following the standard TPC-R benchmark shapes::

    customer (custkey, acctbal, ...)        partitioned on custkey
    orders   (orderkey, custkey, totalprice, ...)  partitioned on orderkey
    lineitem (orderkey, partkey, suppkey, extendedprice, discount, ...)

and the paper's join behaviour: **each customer tuple matches exactly one
orders tuple on custkey** and **each orders tuple matches four lineitem
tuples on orderkey**.  Together with Table 1's cardinalities (0.15M /
1.5M / 6M at scale 1.0) this means order *i* gets custkey *i* — customers
cover custkeys 0..0.15M-1, so exactly one order per customer and the other
90% of orders dangle, which is the only reading consistent with both
statements in the paper.

Partitioning note: the paper's experiment builds ``orders_1`` partitioned
on custkey and ``lineitem_1`` partitioned on orderkey as auxiliary
relations, so the base orders/lineitem cannot be partitioned on those join
attributes; we partition orders on orderkey and lineitem on its unique
``linekey`` (Teradata's (orderkey, linenumber) primary index stands in the
original; any non-join attribute preserves the behaviour under study).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..storage.schema import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster

CUSTOMER_SCHEMA = Schema.of(
    "customer", "custkey", "acctbal", "name", "nationkey",
    kinds=(int, float, str, int),
)
ORDERS_SCHEMA = Schema.of(
    "orders", "orderkey", "custkey", "totalprice", "orderstatus",
    kinds=(int, int, float, str),
)
LINEITEM_SCHEMA = Schema.of(
    "lineitem", "linekey", "orderkey", "partkey", "suppkey",
    "extendedprice", "discount",
    kinds=(int, int, int, int, float, float),
)

#: Table 1 cardinalities at scale factor 1.0.
BASE_CUSTOMERS = 150_000
ORDERS_PER_CUSTOMER_RANGE = 10     # orders = 10 x customers (Table 1 ratio)
LINEITEMS_PER_ORDER = 4            # "each orders tuple matches 4 lineitem tuples"

#: Table 1 reports these total sizes (MB) at scale 1.0; used to extrapolate
#: the size column of the reproduced table.
PAPER_SIZES_MB = {"customer": 25, "orders": 178, "lineitem": 764}
PAPER_ROWS = {"customer": 150_000, "orders": 1_500_000, "lineitem": 6_000_000}


@dataclass
class TpcrDataset:
    """Generated rows for all three relations."""

    scale: float
    customers: List[Row] = field(default_factory=list)
    orders: List[Row] = field(default_factory=list)
    lineitems: List[Row] = field(default_factory=list)

    @property
    def num_customers(self) -> int:
        return len(self.customers)

    def summary_rows(self) -> List[Tuple[str, int, float]]:
        """(relation, tuples, estimated size MB) — the reproduced Table 1,
        with sizes extrapolated from the paper's bytes-per-row."""
        out = []
        for name, rows in (
            ("customer", self.customers),
            ("orders", self.orders),
            ("lineitem", self.lineitems),
        ):
            bytes_per_row = PAPER_SIZES_MB[name] * 1e6 / PAPER_ROWS[name]
            out.append((name, len(rows), len(rows) * bytes_per_row / 1e6))
        return out


class TpcrGenerator:
    """Deterministic generator of the paper's test data set."""

    def __init__(self, scale: float = 0.001, seed: int = 2003) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    def generate(self) -> TpcrDataset:
        rng = random.Random(self.seed)
        num_customers = max(1, int(BASE_CUSTOMERS * self.scale))
        num_orders = num_customers * ORDERS_PER_CUSTOMER_RANGE
        dataset = TpcrDataset(scale=self.scale)
        for custkey in range(num_customers):
            dataset.customers.append(
                (
                    custkey,
                    round(rng.uniform(-999.99, 9999.99), 2),
                    f"Customer#{custkey:09d}",
                    rng.randrange(25),
                )
            )
        linekey = 0
        for orderkey in range(num_orders):
            # Order i carries custkey i: each customer (custkey < customers)
            # matches exactly one order; the rest dangle.
            dataset.orders.append(
                (
                    orderkey,
                    orderkey,
                    round(rng.uniform(850.0, 560000.0), 2),
                    rng.choice("OFP"),
                )
            )
            for _ in range(LINEITEMS_PER_ORDER):
                dataset.lineitems.append(
                    (
                        linekey,
                        orderkey,
                        rng.randrange(200_000),
                        rng.randrange(10_000),
                        round(rng.uniform(900.0, 105_000.0), 2),
                        round(rng.uniform(0.0, 0.10), 2),
                    )
                )
                linekey += 1
        return dataset

    def new_customers(self, count: int, starting_at: int) -> List[Row]:
        """Delta customers whose custkeys match existing dangling orders —
        the paper's 128-tuple insert, each with exactly one matching order.

        ``starting_at`` must be at least the current number of customers and
        below the number of orders for the one-match property to hold.
        """
        rng = random.Random(self.seed + starting_at)
        return [
            (
                custkey,
                round(rng.uniform(-999.99, 9999.99), 2),
                f"Customer#{custkey:09d}",
                rng.randrange(25),
            )
            for custkey in range(starting_at, starting_at + count)
        ]


def load_into(cluster: "Cluster", dataset: TpcrDataset) -> None:
    """Create and bulk-load the three relations into a simulator cluster.

    Loading goes straight into fragments (uncharged), matching the paper's
    pre-loaded warehouse; the measured work is the later delta maintenance.
    """
    cluster.create_relation(CUSTOMER_SCHEMA, partitioned_on="custkey")
    cluster.create_relation(ORDERS_SCHEMA, partitioned_on="orderkey")
    cluster.create_relation(LINEITEM_SCHEMA, partitioned_on="linekey")
    for schema, rows in (
        (CUSTOMER_SCHEMA, dataset.customers),
        (ORDERS_SCHEMA, dataset.orders),
        (LINEITEM_SCHEMA, dataset.lineitems),
    ):
        info = cluster.catalog.relation(schema.name)
        for row in rows:
            node = info.partitioner.node_of_row(row)
            cluster.nodes[node].fragment(schema.name).insert(row)
        info.row_count += len(rows)


def jv1_definition(partitioned: bool = True):
    """JV1: customer ⋈ orders on custkey (paper §3.3)."""
    from ..cluster.partitioning import HashPartitioning, RoundRobinPartitioning
    from ..core.view import JoinCondition, JoinViewDefinition

    return JoinViewDefinition(
        name="JV1",
        relations=("customer", "orders"),
        conditions=(JoinCondition("customer", "custkey", "orders", "custkey"),),
        select=(
            ("customer", "custkey"),
            ("customer", "acctbal"),
            ("orders", "orderkey"),
            ("orders", "totalprice"),
        ),
        # custkey collides between customer and orders, so the output
        # column is qualified to customer_custkey.
        partitioning=(
            HashPartitioning("customer_custkey")
            if partitioned
            else RoundRobinPartitioning()
        ),
    )


def jv2_definition(partitioned: bool = True):
    """JV2: customer ⋈ orders ⋈ lineitem on custkey and orderkey (§3.3)."""
    from ..cluster.partitioning import HashPartitioning, RoundRobinPartitioning
    from ..core.view import JoinCondition, JoinViewDefinition

    return JoinViewDefinition(
        name="JV2",
        relations=("customer", "orders", "lineitem"),
        conditions=(
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("orders", "orderkey", "lineitem", "orderkey"),
        ),
        select=(
            ("customer", "custkey"),
            ("customer", "acctbal"),
            ("orders", "orderkey"),
            ("orders", "totalprice"),
            ("lineitem", "discount"),
            ("lineitem", "extendedprice"),
        ),
        partitioning=(
            HashPartitioning("customer_custkey")
            if partitioned
            else RoundRobinPartitioning()
        ),
    )
