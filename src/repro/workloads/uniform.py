"""The analytical model's synthetic workload: a view JV = A ⋈ B.

Builds exactly the situation of §3.1's assumptions: neither A nor B is
partitioned on the join attribute; B holds N matching tuples per join key,
spread over min(N, L) nodes; inserted A tuples are uniformly distributed on
the join attribute.  Used by the simulation side of every Figure 7-12
bench to check the executable engine against the closed forms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

from ..cluster.partitioning import HashPartitioning, RoundRobinPartitioning
from ..storage.schema import Row, Schema
from ..core.view import JoinViewDefinition, two_way_view

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster

A_SCHEMA = Schema.of("A", "a", "c", "e", kinds=(int, int, int))
B_SCHEMA = Schema.of("B", "b", "d", "f", kinds=(int, int, int))


@dataclass(frozen=True)
class UniformJoinWorkload:
    """Parameters of the synthetic A ⋈ B scenario.

    ``num_keys`` distinct join-attribute values exist; B holds ``fanout``
    tuples per key (the model's N).  ``clustered`` declares B's local index
    on the join attribute clustered (the J_B-clustered scenarios).
    """

    num_keys: int = 64
    fanout: int = 10
    clustered: bool = False
    view_partitioned: bool = True

    def b_rows(self) -> List[Row]:
        """B: ``fanout`` matches per key.  The matches of one key carry
        consecutive partitioning values ``key*fanout + i``, so they hash to
        exactly min(N, L) distinct nodes — the model's assumption 11."""
        rows: List[Row] = []
        payload = 0
        for key in range(self.num_keys):
            for match in range(self.fanout):
                rows.append((key * self.fanout + match, key, payload))
                payload += 1
        return rows

    def a_row(self, serial: int) -> Row:
        """The ``serial``-th inserted A tuple; join keys cycle through the
        key space, giving the uniform distribution of assumption 9."""
        return (serial, serial % self.num_keys, serial)

    def a_rows(self, count: int, starting_at: int = 0) -> List[Row]:
        return [self.a_row(serial) for serial in range(starting_at, starting_at + count)]

    def a_stream(self, starting_at: int = 0) -> Iterator[Row]:
        return (self.a_row(serial) for serial in itertools.count(starting_at))

    def definition(self, name: str = "JV") -> JoinViewDefinition:
        partitioning = (
            HashPartitioning("e") if self.view_partitioned else RoundRobinPartitioning()
        )
        return two_way_view(name, "A", "c", "B", "d", partitioning=partitioning)


def build_cluster(
    workload: UniformJoinWorkload,
    num_nodes: int,
    method: str,
    strategy: str = "auto",
    layout: Optional[object] = None,
) -> "Cluster":
    """A ready cluster: A and B created (B pre-loaded), the view defined.

    A is partitioned on ``a`` and B on ``b`` — neither on the join
    attribute, the paper's §3.1 premise.  B's pre-load goes straight into
    fragments (uncharged), so the first measured statement is the delta.
    """
    from ..cluster.cluster import Cluster
    from ..storage.pages import DEFAULT_LAYOUT

    cluster = Cluster(num_nodes=num_nodes, layout=layout or DEFAULT_LAYOUT)
    cluster.create_relation(A_SCHEMA, partitioned_on="a")
    cluster.create_relation(
        B_SCHEMA, partitioned_on="b", indexes=[("d", workload.clustered)]
    )
    b_info = cluster.catalog.relation("B")
    for row in workload.b_rows():
        node = b_info.partitioner.node_of_row(row)
        cluster.nodes[node].fragment("B").insert(row)
    b_info.row_count += workload.num_keys * workload.fanout
    cluster.create_join_view(workload.definition(), method=method, strategy=strategy)
    return cluster
