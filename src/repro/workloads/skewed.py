"""Skewed workloads: stress-testing the paper's uniformity assumptions.

The analytical model assumes inserted tuples are "uniformly distributed on
the join attribute" (assumption 9), which is what makes the AR method's
busiest node see only ⌈A/L⌉ tuples.  Under skew — some join-attribute
values far more popular than others — all of a hot value's delta lands on
one node and the AR response degrades towards serial execution.  This
module provides a Zipf-distributed variant of the uniform workload so the
degradation can be measured (the skew-sensitivity ablation bench).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List

from ..storage.schema import Row
from .uniform import UniformJoinWorkload


def zipf_weights(num_keys: int, skew: float) -> List[float]:
    """Normalized Zipf(s) probabilities over ranks 1..num_keys.

    ``skew = 0`` is uniform; larger values concentrate mass on low ranks.
    """
    if num_keys < 1:
        raise ValueError("num_keys must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    raw = [1.0 / math.pow(rank, skew) for rank in range(1, num_keys + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class SkewedJoinWorkload:
    """The uniform A ⋈ B scenario with Zipf-distributed insert keys.

    B is identical to :class:`UniformJoinWorkload`'s (``fanout`` matches
    per key, spread over min(N, L) nodes); only the delta's key choice is
    skewed, isolating the placement effect the model's assumption 9 hides.
    """

    num_keys: int = 64
    fanout: int = 10
    skew: float = 1.0
    clustered: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        zipf_weights(self.num_keys, self.skew)  # validate parameters

    @property
    def uniform_twin(self) -> UniformJoinWorkload:
        """The same scenario with uniform keys (the control)."""
        return UniformJoinWorkload(
            num_keys=self.num_keys,
            fanout=self.fanout,
            clustered=self.clustered,
        )

    def b_rows(self) -> List[Row]:
        return self.uniform_twin.b_rows()

    def a_rows(self, count: int, starting_at: int = 0) -> List[Row]:
        """``count`` delta tuples with Zipf-sampled join keys.

        Deterministic in (seed, starting_at); the key ranks are shuffled
        once so the hot keys are not systematically the low hash values.
        """
        rng = random.Random(self.seed)
        ranked_keys = list(range(self.num_keys))
        rng.shuffle(ranked_keys)
        weights = zipf_weights(self.num_keys, self.skew)
        sampler = random.Random(self.seed + starting_at)
        keys = sampler.choices(ranked_keys, weights=weights, k=count)
        return [
            (starting_at + offset, key, starting_at + offset)
            for offset, key in enumerate(keys)
        ]

    def definition(self, name: str = "JV"):
        return self.uniform_twin.definition(name)

    def hot_key_share(self, count: int = 10_000) -> float:
        """Fraction of sampled inserts hitting the single hottest key —
        a quick skew diagnostic for reports."""
        rows = self.a_rows(count)
        from collections import Counter

        popularity = Counter(row[1] for row in rows)
        return popularity.most_common(1)[0][1] / count


def build_skewed_cluster(
    workload: SkewedJoinWorkload,
    num_nodes: int,
    method: str,
    strategy: str = "inl",
):
    """A ready cluster for the skewed scenario (same shape as
    :func:`repro.workloads.uniform.build_cluster`)."""
    from .uniform import build_cluster

    cluster = build_cluster(
        workload.uniform_twin, num_nodes=num_nodes, method=method,
        strategy=strategy,
    )
    return cluster
