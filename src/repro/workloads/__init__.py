"""Workload generators: the paper's TPC-R-style data and the model's
synthetic uniform A ⋈ B scenario."""

from .tpcr import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    LINEITEMS_PER_ORDER,
    ORDERS_SCHEMA,
    TpcrDataset,
    TpcrGenerator,
    jv1_definition,
    jv2_definition,
    load_into,
)
from .uniform import A_SCHEMA, B_SCHEMA, UniformJoinWorkload, build_cluster
from .skewed import SkewedJoinWorkload, build_skewed_cluster, zipf_weights
from .updates import OpKind, UpdateOp, UpdateStream, batch_sizes_sweep

__all__ = [
    "CUSTOMER_SCHEMA",
    "ORDERS_SCHEMA",
    "LINEITEM_SCHEMA",
    "LINEITEMS_PER_ORDER",
    "TpcrGenerator",
    "TpcrDataset",
    "load_into",
    "jv1_definition",
    "jv2_definition",
    "A_SCHEMA",
    "B_SCHEMA",
    "UniformJoinWorkload",
    "build_cluster",
    "SkewedJoinWorkload",
    "build_skewed_cluster",
    "zipf_weights",
    "OpKind",
    "UpdateOp",
    "UpdateStream",
    "batch_sizes_sweep",
]
