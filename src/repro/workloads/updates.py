"""Update-stream generators.

The motivating workload of the paper's introduction: "a stream of updates
to these relations ... each transaction updates one base relation and each
update is localized to one data server node".  These generators produce
such streams — inserts, deletes, and updates, in configurable mixes and
batch sizes — for the throughput examples and the failure-injection tests.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..storage.schema import Row


class OpKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class UpdateOp:
    """One statement of a stream: rows to insert / delete / update."""

    kind: OpKind
    relation: str
    rows: Tuple[Row, ...] = ()
    changes: Tuple[Tuple[Row, Row], ...] = ()

    def apply_to(self, cluster) -> object:
        """Execute against a :class:`repro.Cluster`; returns its snapshot."""
        if self.kind is OpKind.INSERT:
            return cluster.insert(self.relation, list(self.rows))
        if self.kind is OpKind.DELETE:
            return cluster.delete(self.relation, list(self.rows))
        return cluster.update(self.relation, list(self.changes))


class UpdateStream:
    """A reproducible mixed stream over one relation's row factory.

    ``row_factory(serial)`` must yield the serial-th fresh row.  Deletes and
    updates pick victims among rows the stream itself inserted, so a stream
    applied from an empty start is always consistent.
    """

    def __init__(
        self,
        relation: str,
        row_factory,
        batch_size: int = 1,
        mix: Tuple[float, float, float] = (1.0, 0.0, 0.0),
        seed: int = 7,
        update_row: Optional[object] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if len(mix) != 3 or abs(sum(mix) - 1.0) > 1e-9 or min(mix) < 0:
            raise ValueError("mix must be (insert, delete, update) summing to 1")
        self.relation = relation
        self.row_factory = row_factory
        self.batch_size = batch_size
        self.mix = mix
        self.seed = seed
        self.update_row = update_row or (lambda row, serial: row)

    def ops(self, count: int) -> Iterator[UpdateOp]:
        """Yield ``count`` statements."""
        rng = random.Random(self.seed)
        live: List[Row] = []
        serial = 0
        produced = 0
        while produced < count:
            kinds = [OpKind.INSERT, OpKind.DELETE, OpKind.UPDATE]
            kind = rng.choices(kinds, weights=self.mix)[0]
            if kind is not OpKind.INSERT and len(live) < self.batch_size:
                kind = OpKind.INSERT
            if kind is OpKind.INSERT:
                rows = []
                for _ in range(self.batch_size):
                    row = self.row_factory(serial)
                    serial += 1
                    rows.append(row)
                live.extend(rows)
                yield UpdateOp(OpKind.INSERT, self.relation, rows=tuple(rows))
            elif kind is OpKind.DELETE:
                victims = [
                    live.pop(rng.randrange(len(live)))
                    for _ in range(self.batch_size)
                ]
                yield UpdateOp(OpKind.DELETE, self.relation, rows=tuple(victims))
            else:
                changes = []
                for _ in range(self.batch_size):
                    index = rng.randrange(len(live))
                    old = live[index]
                    new = self.update_row(old, serial)
                    serial += 1
                    live[index] = new
                    changes.append((old, new))
                yield UpdateOp(OpKind.UPDATE, self.relation, changes=tuple(changes))
            produced += 1


def batch_sizes_sweep(
    smallest: int = 1, largest: int = 4096, steps_per_decade: int = 3
) -> List[int]:
    """A log-spaced sweep of transaction sizes for the Figure 11 regime."""
    sizes: List[int] = []
    value = float(smallest)
    ratio = 10 ** (1.0 / steps_per_decade)
    while value <= largest:
        size = int(round(value))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        value *= ratio
    if sizes[-1] != largest:
        sizes.append(largest)
    return sizes
