"""The paper's §3.3 validation experiment, on the SQLite parallel backend.

Mirrors the Teradata methodology step by step:

1. non-clustered indexes on ``orders.custkey`` and ``lineitem.orderkey``;
2. a ``delta_customer`` relation with customer's schema and partitioning;
3. delta tuples inserted into it (each matching one orders tuple);
4. auxiliary relations ``orders_1`` (partitioned+clustered on custkey) and
   ``lineitem_1`` (partitioned+clustered on orderkey) with the same content
   as the base relations;
5. the *join step* of view maintenance timed as SQL — against orders /
   lineitem for the naive method, against orders_1 / lineitem_1 for the AR
   method.  (The base-relation update and the view update are identical
   across methods and excluded, as in the paper.)

The naive method ships the whole delta to every node (broadcast), the AR
method ships each delta tuple to the single node its join key hashes to.
Because Teradata could not run the global-index method, the paper stops
there; this backend additionally emulates GI with a rowid-mapping table —
the extension experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..storage.schema import Row, Schema
from ..workloads.tpcr import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    TpcrDataset,
    TpcrGenerator,
)
from .sqlite_cluster import ParallelResult, SQLiteCluster

JV1_SELECT = "c.custkey, c.acctbal, o.orderkey, o.totalprice"
JV2_SELECT = (
    "c.custkey, c.acctbal, o.orderkey, o.totalprice, l.discount, l.extendedprice"
)


@dataclass
class StepTiming:
    """Timing of one maintenance join step (possibly multi-phase)."""

    method: str
    view: str
    response_seconds: float
    total_seconds: float
    result_rows: int


class TeradataStyleExperiment:
    """The Figure 14 measurement rig."""

    def __init__(
        self,
        num_nodes: int,
        scale: float = 0.002,
        seed: int = 2003,
        with_global_indexes: bool = False,
        dataset: Optional[TpcrDataset] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.generator = TpcrGenerator(scale=scale, seed=seed)
        self.dataset = dataset or self.generator.generate()
        self.cluster = SQLiteCluster(num_nodes)
        self.with_global_indexes = with_global_indexes
        self._next_custkey = len(self.dataset.customers)
        self._build()

    def close(self) -> None:
        self.cluster.close()

    def __enter__(self) -> "TeradataStyleExperiment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- setup

    def _build(self) -> None:
        cluster = self.cluster
        cluster.create_table(CUSTOMER_SCHEMA, partitioned_on="custkey")
        cluster.create_table(
            ORDERS_SCHEMA, partitioned_on="orderkey", indexes=["custkey"]
        )
        cluster.create_table(
            LINEITEM_SCHEMA, partitioned_on="linekey", indexes=["orderkey"]
        )
        cluster.load("customer", self.dataset.customers)
        cluster.load("orders", self.dataset.orders)
        cluster.load("lineitem", self.dataset.lineitems)
        # Auxiliary relations: same schema/content, repartitioned on the
        # join attribute, clustered (Teradata builds the clustered index on
        # the partitioning attribute automatically).
        cluster.create_table(
            ORDERS_SCHEMA.rename("orders_1"), partitioned_on="custkey", clustered=True
        )
        cluster.create_table(
            LINEITEM_SCHEMA.rename("lineitem_1"),
            partitioned_on="orderkey",
            clustered=True,
        )
        cluster.load("orders_1", self.dataset.orders)
        cluster.load("lineitem_1", self.dataset.lineitems)
        if self.with_global_indexes:
            self._build_global_indexes()

    def _build_global_indexes(self) -> None:
        """GI emulation: (key, node, rowid) tables partitioned on the key."""
        cluster = self.cluster
        cluster.create_table(
            Schema.of("gi_orders_custkey", "custkey", "node", "ref",
                      kinds=(int, int, int)),
            partitioned_on="custkey",
        )
        cluster.create_index("gi_orders_custkey", "custkey")
        entries: List[Row] = []
        for node in cluster.nodes:
            for custkey, ref in node.query("SELECT custkey, rowid FROM orders"):
                entries.append((custkey, node.node_id, ref))
        cluster.load("gi_orders_custkey", entries)

    # --------------------------------------------------------------- delta

    def new_delta(self, count: int) -> List[Row]:
        """Fresh customer tuples, each matching exactly one orders tuple."""
        delta = self.generator.new_customers(count, starting_at=self._next_custkey)
        self._next_custkey += count
        return delta

    def _stage_delta(
        self, per_node_rows: Dict[int, List[Row]], schema: Schema
    ) -> None:
        """(Re)create the delta_customer staging table on every node and
        place each node's slice — the network shipping the timed join step
        then reads locally, as on the real system."""
        columns = ", ".join(
            f"{column.name} {'INTEGER' if column.kind is int else 'REAL' if column.kind is float else 'TEXT'}"
            for column in schema.columns
        )
        placeholders = ", ".join("?" * schema.arity)
        for node in self.cluster.nodes:
            node.execute("DROP TABLE IF EXISTS delta_customer")
            node.execute(f"CREATE TABLE delta_customer ({columns})")
            rows = per_node_rows.get(node.node_id, [])
            if rows:
                node.executemany(
                    f"INSERT INTO delta_customer VALUES ({placeholders})", rows
                )

    def _broadcast_delta(self, delta: Sequence[Row]) -> None:
        self._stage_delta(
            {node.node_id: list(delta) for node in self.cluster.nodes},
            CUSTOMER_SCHEMA,
        )

    def _scatter_delta(self, delta: Sequence[Row]) -> None:
        key_position = CUSTOMER_SCHEMA.index_of("custkey")
        self._stage_delta(
            self.cluster.scatter(delta, key_position), CUSTOMER_SCHEMA
        )

    # ------------------------------------------------------------ JV1 step

    def naive_jv1(self, delta: Sequence[Row]) -> StepTiming:
        """Naive: broadcast the delta; every node probes its orders fragment
        through the non-clustered custkey index."""
        self._broadcast_delta(delta)
        result = self.cluster.run_on_all(
            lambda node: node.query(
                f"SELECT {JV1_SELECT} FROM delta_customer c "
                "JOIN orders o ON c.custkey = o.custkey"
            )
        )
        return _timing("naive", "JV1", result)

    def ar_jv1(self, delta: Sequence[Row]) -> StepTiming:
        """AR: scatter the delta by custkey; each node joins its slice with
        its clustered orders_1 fragment."""
        self._scatter_delta(delta)
        result = self.cluster.run_on_all(
            lambda node: node.query(
                f"SELECT {JV1_SELECT} FROM delta_customer c "
                "JOIN orders_1 o ON c.custkey = o.custkey"
            )
        )
        return _timing("auxiliary", "JV1", result)

    def gi_jv1(self, delta: Sequence[Row]) -> StepTiming:
        """GI (extension): probe the custkey→(node, rowid) map at each key's
        home node, then fetch matching orders rows only at owning nodes."""
        if not self.with_global_indexes:
            raise RuntimeError("experiment built without global indexes")
        key_position = CUSTOMER_SCHEMA.index_of("custkey")
        slices = self.cluster.scatter(delta, key_position)
        start = time.perf_counter()
        per_node_seconds: List[float] = []
        # Phase 1: GI probes at each key's home node.
        fetch_lists: Dict[int, List[Tuple[Row, int]]] = {}
        for node in self.cluster.nodes:
            phase_start = time.perf_counter()
            for row in slices.get(node.node_id, []):
                for _, owner, ref in node.query(
                    "SELECT custkey, node, ref FROM gi_orders_custkey "
                    "WHERE custkey = ?",
                    (row[key_position],),
                ):
                    fetch_lists.setdefault(owner, []).append((row, ref))
            per_node_seconds.append(time.perf_counter() - phase_start)
        probe_response = max(per_node_seconds, default=0.0)
        # Phase 2: rowid fetches at the owning nodes.
        rows_out = 0
        per_node_seconds = []
        for node in self.cluster.nodes:
            phase_start = time.perf_counter()
            for customer_row, ref in fetch_lists.get(node.node_id, []):
                matches = node.query(
                    "SELECT orderkey, totalprice FROM orders WHERE rowid = ?",
                    (ref,),
                )
                rows_out += len(matches)
            per_node_seconds.append(time.perf_counter() - phase_start)
        fetch_response = max(per_node_seconds, default=0.0)
        total = time.perf_counter() - start
        return StepTiming(
            method="global_index",
            view="JV1",
            response_seconds=probe_response + fetch_response,
            total_seconds=total,
            result_rows=rows_out,
        )

    # ------------------------------------------------------------ JV2 step

    def naive_jv2(self, delta: Sequence[Row]) -> StepTiming:
        """Naive JV2: broadcast the delta, join orders everywhere, then
        broadcast the intermediate result and join lineitem everywhere."""
        self._broadcast_delta(delta)
        phase1 = self.cluster.run_on_all(
            lambda node: node.query(
                "SELECT c.custkey, c.acctbal, o.orderkey, o.totalprice "
                "FROM delta_customer c JOIN orders o ON c.custkey = o.custkey"
            )
        )
        intermediate = phase1.rows
        self._stage_intermediate(
            {node.node_id: intermediate for node in self.cluster.nodes}
        )
        phase2 = self.cluster.run_on_all(
            lambda node: node.query(
                "SELECT i.custkey, i.acctbal, i.orderkey, i.totalprice, "
                "l.discount, l.extendedprice "
                "FROM delta_co i JOIN lineitem l ON i.orderkey = l.orderkey"
            )
        )
        return _timing_two_phase("naive", "JV2", phase1, phase2)

    def ar_jv2(self, delta: Sequence[Row]) -> StepTiming:
        """AR JV2: scatter the delta by custkey (co-located with orders_1),
        then scatter the intermediate by orderkey (co-located with
        lineitem_1)."""
        self._scatter_delta(delta)
        phase1 = self.cluster.run_on_all(
            lambda node: node.query(
                "SELECT c.custkey, c.acctbal, o.orderkey, o.totalprice "
                "FROM delta_customer c JOIN orders_1 o ON c.custkey = o.custkey"
            )
        )
        orderkey_position = 2
        self._stage_intermediate(
            self.cluster.scatter(
                [tuple(r) for r in phase1.rows], orderkey_position
            )
        )
        phase2 = self.cluster.run_on_all(
            lambda node: node.query(
                "SELECT i.custkey, i.acctbal, i.orderkey, i.totalprice, "
                "l.discount, l.extendedprice "
                "FROM delta_co i JOIN lineitem_1 l ON i.orderkey = l.orderkey"
            )
        )
        return _timing_two_phase("auxiliary", "JV2", phase1, phase2)

    def _stage_intermediate(self, per_node_rows: Dict[int, List[Tuple]]) -> None:
        for node in self.cluster.nodes:
            node.execute("DROP TABLE IF EXISTS delta_co")
            node.execute(
                "CREATE TABLE delta_co "
                "(custkey INTEGER, acctbal REAL, orderkey INTEGER, totalprice REAL)"
            )
            rows = per_node_rows.get(node.node_id, [])
            if rows:
                node.executemany(
                    "INSERT INTO delta_co VALUES (?, ?, ?, ?)", rows
                )

    # --------------------------------------------- full view maintenance

    def materialize_jv1(self) -> None:
        """Create and load the jv1 table from the current base contents."""
        self.cluster.create_table(
            Schema.of("jv1", "custkey", "acctbal", "orderkey", "totalprice",
                      kinds=(int, float, int, float)),
            partitioned_on="custkey",
        )
        rows: List[Row] = []
        for node in self.cluster.nodes:
            rows.extend(
                tuple(r)
                for r in node.query(
                    f"SELECT {JV1_SELECT} FROM customer c "
                    "JOIN orders_1 o ON c.custkey = o.custkey"
                )
            )
        self.cluster.load("jv1", rows)

    def maintain_jv1_insert(self, delta: Sequence[Row], method: str) -> StepTiming:
        """Full maintenance: compute the join step with ``method``, apply
        the base insert, and install the delta into jv1.

        The base insert and the multi-row view-delta application run in one
        atomic scope: every node commits once at the end (instead of once
        per bulk write), and a failure rolls the whole statement back — the
        paper's transaction sketch, on SQLite.
        """
        if method == "naive":
            timing = self.naive_jv1(delta)
            joined = self._collect_naive_jv1()
        elif method == "auxiliary":
            timing = self.ar_jv1(delta)
            joined = self._collect_ar_jv1()
        else:
            raise ValueError(f"unsupported method {method!r}")
        with self.cluster.atomic():
            self.cluster.insert("customer", delta)
            self.cluster.load("jv1", joined)
        return timing

    def _collect_naive_jv1(self) -> List[Row]:
        rows: List[Row] = []
        seen_nodes = set()
        for node in self.cluster.nodes:
            for row in node.query(
                f"SELECT {JV1_SELECT} FROM delta_customer c "
                "JOIN orders o ON c.custkey = o.custkey"
            ):
                rows.append(tuple(row))
            seen_nodes.add(node.node_id)
        return rows

    def _collect_ar_jv1(self) -> List[Row]:
        rows: List[Row] = []
        for node in self.cluster.nodes:
            for row in node.query(
                f"SELECT {JV1_SELECT} FROM delta_customer c "
                "JOIN orders_1 o ON c.custkey = o.custkey"
            ):
                rows.append(tuple(row))
        return rows


def _timing(method: str, view: str, result: ParallelResult) -> StepTiming:
    return StepTiming(
        method=method,
        view=view,
        response_seconds=result.response_seconds,
        total_seconds=result.total_seconds,
        result_rows=len(result.rows),
    )


def _timing_two_phase(
    method: str, view: str, phase1: ParallelResult, phase2: ParallelResult
) -> StepTiming:
    return StepTiming(
        method=method,
        view=view,
        response_seconds=phase1.response_seconds + phase2.response_seconds,
        total_seconds=phase1.total_seconds + phase2.total_seconds,
        result_rows=len(phase2.rows),
    )
