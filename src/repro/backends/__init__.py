"""SQLite-partition backend: the stand-in for the paper's commercial
parallel RDBMS (NCR Teradata)."""

from .sqlite_cluster import (
    ParallelResult,
    SQLiteCluster,
    SQLiteNode,
    SQLiteTableInfo,
)
from .sqlite_maintenance import (
    JV1_SELECT,
    JV2_SELECT,
    StepTiming,
    TeradataStyleExperiment,
)
from .loader import batched, load_batched, verify_partitioning

__all__ = [
    "SQLiteCluster",
    "SQLiteNode",
    "SQLiteTableInfo",
    "ParallelResult",
    "TeradataStyleExperiment",
    "StepTiming",
    "JV1_SELECT",
    "JV2_SELECT",
    "batched",
    "load_batched",
    "verify_partitioning",
]
