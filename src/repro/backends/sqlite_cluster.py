"""A parallel RDBMS emulated with SQLite partitions.

The paper validates its model on NCR Teradata with 2/4/8 data servers.
Standing in for that commercial system, this backend runs one SQLite
database per data-server node, hash-partitions tables across them with the
same stable hash as the simulator, and measures per-node wall-clock time —
response time being the slowest node, exactly the paper's metric.

Clustered indexes are realized the way Teradata realizes them on the
partitioning attribute: the table is physically ordered on the key, here
via a ``WITHOUT ROWID`` table whose primary key leads with the clustered
column (a hidden ``_seq`` column breaks ties, since join attributes are not
unique).
"""

from __future__ import annotations

import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..cluster.partitioning import stable_hash
from ..storage.schema import Row, Schema

_AFFINITY = {int: "INTEGER", float: "REAL", str: "TEXT"}


def _affinity(kind: type) -> str:
    return _AFFINITY.get(kind, "BLOB")


def _column_defs(schema: Schema) -> str:
    return ", ".join(
        f"{column.name} {_affinity(column.kind)}" for column in schema.columns
    )


@dataclass
class SQLiteTableInfo:
    """Catalog entry of one partitioned table in the SQLite cluster."""

    schema: Schema
    partition_column: str
    clustered: bool
    key_position: int
    indexes: List[str] = field(default_factory=list)
    next_seq: int = 0


class SQLiteNode:
    """One data-server node: a private SQLite database."""

    def __init__(self, node_id: int, path: Optional[Path] = None) -> None:
        self.node_id = node_id
        target = ":memory:" if path is None else str(path)
        self.connection = sqlite3.connect(target)
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        #: When True, per-statement commits are held back: the enclosing
        #: :meth:`SQLiteCluster.atomic` scope commits (or rolls back) all
        #: nodes together.
        self.defer_commits = False

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, params)

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        self.connection.executemany(sql, rows)
        if not self.defer_commits:
            self.connection.commit()

    def query(self, sql: str, params: Sequence = ()) -> List[Tuple]:
        return self.connection.execute(sql, params).fetchall()

    def timed_query(self, sql: str, params: Sequence = ()) -> Tuple[List[Tuple], float]:
        """Run a query and return (rows, elapsed seconds)."""
        start = time.perf_counter()
        rows = self.connection.execute(sql, params).fetchall()
        return rows, time.perf_counter() - start

    def close(self) -> None:
        self.connection.close()


class SQLiteCluster:
    """L SQLite databases acting as one shared-nothing parallel RDBMS."""

    def __init__(self, num_nodes: int, directory: Optional[Path] = None) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.nodes = [
            SQLiteNode(
                node_id,
                None if directory is None else Path(directory) / f"node{node_id}.db",
            )
            for node_id in range(num_nodes)
        ]
        self.tables: Dict[str, SQLiteTableInfo] = {}

    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "SQLiteCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------------------- DDL

    def create_table(
        self,
        schema: Schema,
        partitioned_on: str,
        clustered: bool = False,
        indexes: Sequence[str] = (),
    ) -> SQLiteTableInfo:
        """Create a hash-partitioned table on every node.

        ``clustered=True`` physically orders each fragment on the
        partitioning column (Teradata's automatic clustered primary index);
        ``indexes`` adds non-clustered secondary indexes.
        """
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        key_position = schema.index_of(partitioned_on)
        info = SQLiteTableInfo(
            schema=schema,
            partition_column=partitioned_on,
            clustered=clustered,
            key_position=key_position,
        )
        if clustered:
            ddl = (
                f"CREATE TABLE {schema.name} ({_column_defs(schema)}, "
                f"_seq INTEGER, PRIMARY KEY ({partitioned_on}, _seq)) "
                "WITHOUT ROWID"
            )
        else:
            ddl = f"CREATE TABLE {schema.name} ({_column_defs(schema)})"
        for node in self.nodes:
            node.execute(ddl)
        for column in indexes:
            self.create_index(schema.name, column)
        self.tables[schema.name] = info
        return info

    def create_index(self, table: str, column: str) -> None:
        """A non-clustered secondary index on every fragment."""
        name = f"ix_{table}_{column}"
        for node in self.nodes:
            node.execute(f"CREATE INDEX IF NOT EXISTS {name} ON {table} ({column})")
        if table in self.tables and column not in self.tables[table].indexes:
            self.tables[table].indexes.append(column)

    # -------------------------------------------------------- transactions

    @contextmanager
    def atomic(self) -> Iterator["SQLiteCluster"]:
        """All-or-nothing across every node's database.

        The SQLite analogue of the simulator's undo scopes: per-statement
        commits are suppressed while the scope is open, so a base write,
        its AR co-updates, and the view delta land on their (different)
        nodes inside one open transaction each.  On success every node
        commits; on any exception every node rolls back — no partition is
        left with a half-applied statement.  (A coordinator-side one-phase
        commit: adequate here because all "nodes" share one process and
        cannot fail independently.)
        """
        if any(node.defer_commits for node in self.nodes):
            raise RuntimeError("an atomic scope is already active")
        for node in self.nodes:
            node.defer_commits = True
        try:
            yield self
        except BaseException:
            for node in self.nodes:
                node.connection.rollback()
            raise
        else:
            for node in self.nodes:
                node.connection.commit()
        finally:
            for node in self.nodes:
                node.defer_commits = False

    # ----------------------------------------------------------------- DML

    def node_of_key(self, key: object) -> int:
        return stable_hash(key) % self.num_nodes

    def scatter(self, rows: Iterable[Row], key_position: int) -> Dict[int, List[Row]]:
        """Group rows by the node their key hashes to — one message per
        group in a real interconnect."""
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_key(row[key_position]), []).append(row)
        return by_node

    def load(self, table: str, rows: Iterable[Row]) -> None:
        """Partitioned bulk load."""
        info = self._info(table)
        by_node = self.scatter(rows, info.key_position)
        for node_id, node_rows in by_node.items():
            self._insert_local(info, node_id, node_rows)

    def insert(self, table: str, rows: Iterable[Row]) -> None:
        self.load(table, rows)

    def delete(self, table: str, rows: Iterable[Row]) -> None:
        """Delete one stored instance of each given row.

        Batched: rows are grouped by home node, victims are claimed per
        distinct row (so duplicated delete requests consume distinct stored
        copies, as the per-row loop did), and each node issues one
        ``executemany`` — one commit per fragment instead of one per row.
        All victims are located before any are deleted, so an unsatisfiable
        request fails before this statement removes anything.
        """
        info = self._info(table)
        predicate = " AND ".join(f"{c.name} = ?" for c in info.schema.columns)
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_key(row[info.key_position]), []).append(row)
        key_sql = "_seq" if info.clustered else "rowid"
        staged: List[Tuple[SQLiteNode, List[Tuple]]] = []
        for node_id, node_rows in by_node.items():
            node = self.nodes[node_id]
            pools: Dict[Row, List] = {}
            victims: List[Tuple] = []
            for row in node_rows:
                pool = pools.get(row)
                if pool is None:
                    pool = [
                        r[0]
                        for r in node.query(
                            f"SELECT {key_sql} FROM {table} WHERE {predicate}", row
                        )
                    ]
                    pools[row] = pool
                if not pool:
                    raise KeyError(f"{table!r} holds no row {row!r}")
                victim = pool.pop(0)
                if info.clustered:
                    victims.append((row[info.key_position], victim))
                else:
                    victims.append((victim,))
            staged.append((node, victims))
        delete_sql = (
            f"DELETE FROM {table} WHERE {info.partition_column} = ? AND _seq = ?"
            if info.clustered
            else f"DELETE FROM {table} WHERE rowid = ?"
        )
        for node, victims in staged:
            if victims:
                node.executemany(delete_sql, victims)

    def _insert_local(self, info: SQLiteTableInfo, node_id: int, rows: List[Row]) -> None:
        table = info.schema.name
        if info.clustered:
            placeholders = ", ".join("?" * (info.schema.arity + 1))
            seq_rows = []
            for row in rows:
                seq_rows.append(tuple(row) + (info.next_seq,))
                info.next_seq += 1
            self.nodes[node_id].executemany(
                f"INSERT INTO {table} VALUES ({placeholders})", seq_rows
            )
        else:
            placeholders = ", ".join("?" * info.schema.arity)
            self.nodes[node_id].executemany(
                f"INSERT INTO {table} VALUES ({placeholders})", rows
            )

    # --------------------------------------------------------------- reads

    def _info(self, table: str) -> SQLiteTableInfo:
        try:
            return self.tables[table]
        except KeyError:
            raise KeyError(f"unknown table {table!r}") from None

    def select_list(self, table: str) -> str:
        """Column list excluding the clustered tables' hidden ``_seq``."""
        return ", ".join(self._info(table).schema.column_names)

    def all_rows(self, table: str) -> List[Row]:
        info = self._info(table)
        columns = self.select_list(table)
        rows: List[Row] = []
        for node in self.nodes:
            rows.extend(tuple(r) for r in node.query(f"SELECT {columns} FROM {table}"))
        return rows

    def count(self, table: str) -> int:
        return sum(
            node.query(f"SELECT COUNT(*) FROM {table}")[0][0] for node in self.nodes
        )

    def fragment_counts(self, table: str) -> List[int]:
        return [
            node.query(f"SELECT COUNT(*) FROM {table}")[0][0] for node in self.nodes
        ]

    # ------------------------------------------------- parallel execution

    def run_on_all(
        self, work: Callable[[SQLiteNode], List[Tuple]]
    ) -> "ParallelResult":
        """Execute ``work`` at every node, timing each: the basic parallel
        step.  Nodes run sequentially in this process, but each node's time
        is measured separately, so response time = max is exactly what a
        truly parallel execution would report."""
        per_node_rows: List[List[Tuple]] = []
        per_node_seconds: List[float] = []
        for node in self.nodes:
            start = time.perf_counter()
            rows = work(node)
            per_node_seconds.append(time.perf_counter() - start)
            per_node_rows.append(rows)
        return ParallelResult(per_node_rows, per_node_seconds)


@dataclass
class ParallelResult:
    """Rows and wall time of one parallel step, per node."""

    per_node_rows: List[List[Tuple]]
    per_node_seconds: List[float]

    @property
    def rows(self) -> List[Tuple]:
        return [row for rows in self.per_node_rows for row in rows]

    @property
    def response_seconds(self) -> float:
        """The slowest node: the paper's response-time metric."""
        return max(self.per_node_seconds) if self.per_node_seconds else 0.0

    @property
    def total_seconds(self) -> float:
        """Summed work: the wall-clock analogue of TW."""
        return sum(self.per_node_seconds)
