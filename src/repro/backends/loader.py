"""Bulk-loading helpers for the SQLite parallel backend."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, TypeVar

from ..storage.schema import Row
from .sqlite_cluster import SQLiteCluster

T = TypeVar("T")


def batched(items: Iterable[T], batch_size: int) -> Iterator[List[T]]:
    """Yield successive lists of up to ``batch_size`` items."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: List[T] = []
    for item in items:
        batch.append(item)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def load_batched(
    cluster: SQLiteCluster,
    table: str,
    rows: Iterable[Row],
    batch_size: int = 10_000,
) -> int:
    """Load rows in batches; returns the number loaded.

    Batching keeps per-statement memory bounded when loading the larger
    scale factors of the TPC-R dataset.
    """
    loaded = 0
    for batch in batched(rows, batch_size):
        cluster.load(table, batch)
        loaded += len(batch)
    return loaded


def verify_partitioning(cluster: SQLiteCluster, table: str) -> bool:
    """Every stored row must live on the node its key hashes to."""
    info = cluster.tables[table]
    columns = cluster.select_list(table)
    for node in cluster.nodes:
        for row in node.query(f"SELECT {columns} FROM {table}"):
            if cluster.node_of_key(row[info.key_position]) != node.node_id:
                return False
    return True
