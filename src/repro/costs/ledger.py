"""Per-node cost ledgers.

Every accounted operation is charged to a ``(node, Op, Tag)`` cell.  From
the cells the two metrics of the paper derive directly:

* **total workload (TW)** — the sum of weighted work over all nodes
  (paper §3.1.1); and
* **response time** — the maximum weighted work at any single node
  (paper §3.1.2), since nodes execute in parallel.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .model import CostParameters, Op, PAPER_COSTS, Tag

_Cell = Tuple[int, Op, Tag]


@dataclass
class CostSnapshot:
    """An immutable summary of charged work, queryable by op/tag/node."""

    params: CostParameters
    cells: Dict[_Cell, float] = field(default_factory=dict)

    def _selected(
        self, tags: Optional[Iterable[Tag]], ops: Optional[Iterable[Op]]
    ) -> Iterator[Tuple[int, Op, Tag, float]]:
        tag_set = set(tags) if tags is not None else None
        op_set = set(ops) if ops is not None else None
        for (node, op, tag), count in self.cells.items():
            if tag_set is not None and tag not in tag_set:
                continue
            if op_set is not None and op not in op_set:
                continue
            yield node, op, tag, count

    def op_count(self, op: Op, tags: Optional[Iterable[Tag]] = None) -> float:
        """Total number of ``op`` operations charged (optionally per tags)."""
        return sum(c for _, o, _, c in self._selected(tags, [op]) if o is op)

    def per_node_ios(self, tags: Optional[Iterable[Tag]] = None) -> Dict[int, float]:
        """Weighted I/Os charged at each node."""
        by_node: Dict[int, float] = defaultdict(float)
        for node, op, _, count in self._selected(tags, None):
            by_node[node] += count * self.params.weight(op)
        return dict(by_node)

    def total_workload(self, tags: Optional[Iterable[Tag]] = None) -> float:
        """TW: weighted I/Os summed over all nodes."""
        return sum(self.per_node_ios(tags).values())

    def response_time(self, tags: Optional[Iterable[Tag]] = None) -> float:
        """Response time: weighted I/Os at the busiest node."""
        per_node = self.per_node_ios(tags)
        return max(per_node.values()) if per_node else 0.0

    def maintenance_workload(self) -> float:
        """The paper's TW: differential maintenance work only."""
        return self.total_workload(tags=[Tag.MAINTAIN])

    def maintenance_response_time(self) -> float:
        return self.response_time(tags=[Tag.MAINTAIN])

    def op_breakdown(self, tags: Optional[Iterable[Tag]] = None) -> Dict[Op, float]:
        """Operation counts (not weighted) summed over nodes."""
        by_op: Dict[Op, float] = defaultdict(float)
        for _, op, _, count in self._selected(tags, None):
            by_op[op] += count
        return dict(by_op)

    def diff(self, other: "CostSnapshot") -> Dict[_Cell, float]:
        """Per-``(node, op, tag)`` cell deltas (``self - other``).

        Cells equal on both sides are omitted, so an empty dict means the
        snapshots are identical — the equivalence suites assert exactly
        that and print :func:`format_cell_diff` of the result when not.

        Iteration runs in sorted ``(node, op, tag)`` order: set order is
        hash-salted per process, so an unsorted walk would make the
        *insertion order* of the returned dict differ between runs —
        breaking byte-identical failure reports and any consumer that
        serializes the dict as-is (REP002).
        """
        cells: Dict[_Cell, float] = {}
        universe = set(self.cells) | set(other.cells)
        for cell in sorted(universe, key=lambda c: (c[0], c[1].name, c[2].name)):
            delta = self.cells.get(cell, 0.0) - other.cells.get(cell, 0.0)
            if delta:
                cells[cell] = delta
        return cells


class CostLedger:
    """Mutable accumulator of charged operations for one cluster."""

    def __init__(self, params: CostParameters = PAPER_COSTS) -> None:
        self.params = params
        self._cells: Dict[_Cell, float] = defaultdict(float)

    def charge(self, node: int, op: Op, tag: Tag, count: float = 1.0) -> None:
        """Charge ``count`` operations of kind ``op`` at ``node`` under ``tag``."""
        if count < 0:
            raise ValueError("cannot charge a negative operation count")
        if count:
            self._cells[(node, op, tag)] += count

    def absorb(self, deltas: "Iterable[Dict[_Cell, float]]") -> None:
        """Fold worker-ledger cell deltas into this ledger.

        Cells are commutative sums, so any fold order yields the same
        totals — the deterministic ``(node, op, tag)`` order is enforced
        anyway so that a divergence reproduces byte-for-byte run-to-run.
        """
        merged: Dict[_Cell, float] = {}
        for cells in deltas:
            for cell, count in cells.items():
                merged[cell] = merged.get(cell, 0.0) + count
        target = self._cells
        for cell in sorted(merged, key=lambda c: (c[0], c[1].name, c[2].name)):
            target[cell] += merged[cell]

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(self.params, dict(self._cells))

    def reset(self) -> None:
        self._cells.clear()

    def diff(self, other: "CostLedger | CostSnapshot") -> Dict[_Cell, float]:
        """Per-``(node, op, tag)`` cell deltas between two ledgers.

        ``self - other``; an empty dict means bit-identical charging.  Use
        :func:`format_cell_diff` to turn the result into an actionable
        failure message (which cell, whose side, how far off).
        """
        snapshot = other if isinstance(other, CostSnapshot) else other.snapshot()
        return self.snapshot().diff(snapshot)

    def diff_since(self, before: CostSnapshot) -> CostSnapshot:
        """The work charged since ``before`` was taken."""
        cells: Dict[_Cell, float] = {}
        for cell, count in self._cells.items():
            delta = count - before.cells.get(cell, 0.0)
            if delta > 1e-12:
                cells[cell] = delta
        return CostSnapshot(self.params, cells)

    @contextmanager
    def measure(self) -> Iterator["_Measurement"]:
        """Context manager yielding a snapshot holder for the enclosed work.

        >>> ledger = CostLedger()
        >>> with ledger.measure() as measured:
        ...     ledger.charge(0, Op.SEARCH, Tag.MAINTAIN)
        >>> measured.snapshot.total_workload()
        1.0
        """
        holder = _Measurement()
        before = self.snapshot()
        try:
            yield holder
        finally:
            holder.snapshot = self.diff_since(before)


class _Measurement:
    """Mutable holder filled by :meth:`CostLedger.measure` on exit."""

    snapshot: CostSnapshot

    def __init__(self) -> None:
        self.snapshot = CostSnapshot(PAPER_COSTS, {})


def format_cell_diff(diff: Dict[_Cell, float], limit: int = 40) -> str:
    """Human-readable per-cell delta listing for equivalence failures.

    Positive deltas mean the *left* ledger charged more.  Sorted by
    (node, op, tag) so two runs of the same failure print identically.
    """
    if not diff:
        return "ledgers identical"
    lines: List[str] = []
    ordered = sorted(
        diff.items(), key=lambda kv: (kv[0][0], kv[0][1].name, kv[0][2].name)
    )
    for (node, op, tag), delta in ordered[:limit]:
        lines.append(
            f"  node={node} op={op.value} tag={tag.value}: {delta:+g}"
        )
    if len(ordered) > limit:
        lines.append(f"  ... ({len(ordered) - limit} more cells)")
    return "\n".join(lines)
