"""The paper's cost units.

Section 3.1.1 models maintenance cost with four primitive operations:

* ``SEND``   — one network message, node to node, size-independent;
* ``SEARCH`` — one index probe at one node;
* ``FETCH``  — fetching one tuple reached through a non-clustered access
  path (clustered accesses find all matches on the landing page, free);
* ``INSERT`` — inserting a tuple into any table.

For the I/O-based figures the paper fixes SEARCH = 1 I/O, FETCH = 1 I/O,
INSERT = 2 I/Os and treats SEND as negligible against I/O ("the time spent
on SEND is much smaller").  Those are the defaults here; every figure can be
re-run under different weights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Primitive accounted operations."""

    SEND = "send"
    SEARCH = "search"
    FETCH = "fetch"
    INSERT = "insert"
    SCAN_PAGE = "scan_page"  # one page of a sequential scan (sort-merge regime)
    SORT_PAGE = "sort_page"  # one page-I/O of external sorting
    BACKOFF = "backoff"  # one retry backoff slot waited at the sender


class Tag(enum.Enum):
    """Who an operation is charged to.

    The paper's TW deliberately *omits* costs common to all three methods —
    updating the base relation and inserting the final tuples into the view —
    and counts only the differential maintenance work.  Tagging lets the
    ledger report either.
    """

    BASE = "base"          # updating the base relation itself
    MAINTAIN = "maintain"  # the differential work the paper's TW measures
    VIEW = "view"          # applying the computed delta to the view
    QUERY = "query"        # ad-hoc reads outside maintenance
    MIGRATE = "migrate"    # topology-change data movement (join/leave/failover)
    REPLICA = "replica"    # keeping K-1 fragment replicas in sync


@dataclass(frozen=True)
class CostParameters:
    """I/O weight of each primitive operation."""

    send_ios: float = 0.0
    search_ios: float = 1.0
    fetch_ios: float = 1.0
    insert_ios: float = 2.0
    scan_page_ios: float = 1.0
    sort_page_ios: float = 1.0
    backoff_slot_ios: float = 0.0

    def weight(self, op: Op) -> float:
        return {
            Op.SEND: self.send_ios,
            Op.SEARCH: self.search_ios,
            Op.FETCH: self.fetch_ios,
            Op.INSERT: self.insert_ios,
            Op.SCAN_PAGE: self.scan_page_ios,
            Op.SORT_PAGE: self.sort_page_ios,
            Op.BACKOFF: self.backoff_slot_ios,
        }[op]


#: The weights under which the paper draws Figures 7-13.
PAPER_COSTS = CostParameters()

#: Weights that also bill network messages, for sensitivity studies.
NETWORK_AWARE_COSTS = CostParameters(send_ios=0.1)
