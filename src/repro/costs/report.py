"""Human-readable cost reports and plain-text tables for the bench harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .ledger import CostSnapshot
from .model import Op, Tag


def format_snapshot(snapshot: CostSnapshot, title: str = "cost report") -> str:
    """A compact multi-line report of a cost snapshot."""
    lines = [title, "-" * len(title)]
    breakdown = snapshot.op_breakdown()
    for op in Op:
        if op in breakdown:
            lines.append(f"  {op.value:>9}: {breakdown[op]:,.0f}")
    lines.append(f"  TW (all tags)      : {snapshot.total_workload():,.1f} I/Os")
    lines.append(f"  TW (maintenance)   : {snapshot.maintenance_workload():,.1f} I/Os")
    lines.append(f"  response (all tags): {snapshot.response_time():,.1f} I/Os")
    lines.append(
        f"  response (maint.)  : {snapshot.maintenance_response_time():,.1f} I/Os"
    )
    return "\n".join(lines)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width plain-text table.

    Used by the benchmark harness to print each figure/table's series the
    way the paper reports them.
    """
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append([_format_cell(cell) for cell in row])
    widths = [
        max(len(line[i]) for line in materialized)
        for i in range(len(materialized[0]))
    ]
    out_lines: List[str] = []
    for line_no, line in enumerate(materialized):
        out_lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if line_no == 0:
            out_lines.append("  ".join("-" * width for width in widths))
    return "\n".join(out_lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    return str(cell)


def tags_legend() -> str:
    """Explanation of tags, for report footers."""
    return (
        "tags: "
        + ", ".join(f"{t.value}" for t in Tag)
        + "  (the paper's TW counts only 'maintain')"
    )
