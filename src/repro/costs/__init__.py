"""Cost accounting in the paper's units (SEND/SEARCH/FETCH/INSERT)."""

from .model import CostParameters, NETWORK_AWARE_COSTS, Op, PAPER_COSTS, Tag
from .ledger import CostLedger, CostSnapshot
from .report import ascii_table, format_snapshot, tags_legend

__all__ = [
    "CostParameters",
    "Op",
    "Tag",
    "PAPER_COSTS",
    "NETWORK_AWARE_COSTS",
    "CostLedger",
    "CostSnapshot",
    "ascii_table",
    "format_snapshot",
    "tags_legend",
]
