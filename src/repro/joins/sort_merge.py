"""Sort-merge join — the large-delta regime's algorithm.

Both inputs are sorted on the join key and merged; with duplicate keys on
both sides the merge emits the cross product per key group.  The paper's
cost approximation: sorting a fragment of ``p`` pages costs
``p · log_M p`` I/Os (a single scan if already clustered on the key or if
it fits in the ``M``-page memory).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from ..storage.pages import PageLayout
from ..storage.schema import Row


def sort_merge_join(
    left: Iterable[Row],
    left_key: Callable[[Row], object],
    right: Iterable[Row],
    right_key: Callable[[Row], object],
) -> List[Tuple[Row, Row]]:
    """Merge-join two row collections on their key callables.

    Keys must be mutually comparable (the usual sort-merge requirement).
    Duplicates on both sides produce the full per-key cross product.
    """
    left_sorted = sorted(left, key=left_key)
    right_sorted = sorted(right, key=right_key)
    results: List[Tuple[Row, Row]] = []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        lkey = left_key(left_sorted[i])
        rkey = right_key(right_sorted[j])
        if lkey < rkey:  # type: ignore[operator]
            i += 1
        elif rkey < lkey:  # type: ignore[operator]
            j += 1
        else:
            # Gather both key groups, emit their cross product.
            i_end = i
            while i_end < len(left_sorted) and left_key(left_sorted[i_end]) == lkey:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and right_key(right_sorted[j_end]) == rkey:
                j_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    results.append((left_sorted[li], right_sorted[rj]))
            i, j = i_end, j_end
    return results


def estimate_cost_ios(
    fragment_pages: int,
    layout: PageLayout,
    clustered: bool,
    delta_fits_memory: bool = True,
) -> float:
    """Predicted I/Os for merging a delta against one fragment.

    The delta side is assumed in-memory (the paper's assumption 3:
    ``|A_i|`` fits); the fragment side costs a scan when clustered on the
    join key and an external sort otherwise.
    """
    if not delta_fits_memory:
        raise NotImplementedError(
            "the paper's model assumes the per-node delta fits in memory"
        )
    if clustered:
        return layout.scan_cost_pages(fragment_pages)
    return layout.sort_cost_pages(fragment_pages)
