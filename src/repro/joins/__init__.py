"""Single-node join algorithms and the regime chooser."""

from .nested_loops import index_nested_loops_join
from .sort_merge import sort_merge_join
from .hash_join import hash_join
from .chooser import JoinChoice, JoinSituation, choose, crossover_outer_rows
from . import nested_loops, sort_merge, hash_join as hash_join_module

__all__ = [
    "index_nested_loops_join",
    "sort_merge_join",
    "hash_join",
    "JoinSituation",
    "JoinChoice",
    "choose",
    "crossover_outer_rows",
    "nested_loops",
    "sort_merge",
    "hash_join_module",
]
